"""Tests for the query-answering layer."""

import numpy as np
import pytest

from repro.core.approxrank import approxrank
from repro.exceptions import DatasetError, MetricError, SubgraphError
from repro.generators.datasets import make_tiny_web
from repro.pagerank.globalrank import global_pagerank
from repro.pagerank.solver import PowerIterationSettings
from repro.search.engine import (
    SubgraphSearchEngine,
    answer_overlap,
    compare_engines,
    reference_engine_scores,
)
from repro.search.lexicon import SyntheticLexicon

SETTINGS = PowerIterationSettings(tolerance=1e-8)


@pytest.fixture(scope="module")
def web():
    return make_tiny_web(num_pages=500, num_groups=4, seed=21)


@pytest.fixture(scope="module")
def lexicon(web):
    return SyntheticLexicon(
        web.graph,
        group_of=web.labels["domain"],
        num_terms=200,
        terms_per_page=6.0,
        seed=3,
    )


@pytest.fixture(scope="module")
def domain_scores(web):
    nodes = web.pages_with_label("domain", "site0.example")
    return approxrank(web.graph, nodes, SETTINGS)


class TestLexicon:
    def test_every_page_has_terms(self, web, lexicon):
        for page in range(0, web.graph.num_nodes, 37):
            assert lexicon.terms_of(page).size >= 1

    def test_postings_consistent_with_terms(self, lexicon):
        terms = lexicon.terms_of(10)
        for term in terms:
            assert 10 in lexicon.pages_with_term(int(term))

    def test_deterministic(self, web):
        a = SyntheticLexicon(web.graph, num_terms=50, seed=5)
        b = SyntheticLexicon(web.graph, num_terms=50, seed=5)
        for page in (0, 7, 99):
            assert a.terms_of(page).tolist() == b.terms_of(page).tolist()

    def test_zipfian_popularity(self, lexicon):
        top = lexicon.popular_terms(5)
        top_df = lexicon.document_frequency(int(top[0]))
        # The most popular term must dwarf a random mid-vocabulary one.
        mid_df = lexicon.document_frequency(150)
        assert top_df > max(mid_df, 1) * 3

    def test_conjunctive_subset_of_disjunctive(self, lexicon):
        top = lexicon.popular_terms(2)
        conj = lexicon.pages_matching(top, mode="all")
        disj = lexicon.pages_matching(top, mode="any")
        assert np.isin(conj, disj).all()
        assert disj.size >= conj.size

    def test_group_coherence(self, web):
        coherent = SyntheticLexicon(
            web.graph, group_of=web.labels["domain"],
            num_terms=200, coherence=0.95, seed=4,
        )
        domain0 = web.pages_with_label("domain", "site0.example")
        domain3 = web.pages_with_label("domain", "site3.example")

        def mean_jaccard(pages_a, pages_b, lex, samples=40):
            rng = np.random.default_rng(0)
            total = 0.0
            for __ in range(samples):
                a = lex.terms_of(int(rng.choice(pages_a)))
                b = lex.terms_of(int(rng.choice(pages_b)))
                union = np.union1d(a, b).size
                total += (
                    np.intersect1d(a, b).size / union if union else 0.0
                )
            return total / samples

        within = mean_jaccard(domain0, domain0, coherent)
        across = mean_jaccard(domain0, domain3, coherent)
        assert within > across

    def test_validation(self, web):
        with pytest.raises(DatasetError, match="num_terms"):
            SyntheticLexicon(web.graph, num_terms=0)
        with pytest.raises(DatasetError, match="coherence"):
            SyntheticLexicon(web.graph, coherence=1.5)
        with pytest.raises(DatasetError, match="group_of"):
            SyntheticLexicon(web.graph, group_of=np.zeros(3))

    def test_query_validation(self, lexicon):
        with pytest.raises(DatasetError, match="at least one term"):
            lexicon.pages_matching([])
        with pytest.raises(DatasetError, match="mode"):
            lexicon.pages_matching([1], mode="some")
        with pytest.raises(DatasetError, match="vocabulary"):
            lexicon.pages_with_term(10_000)


class TestLexiconEdgeCases:
    """Degenerate-but-legal parameter corners must build cleanly.

    Pins the regressions where a one-term vocabulary, an all-global
    or all-group coherence, and groups drawing zero in-group terms
    each raised from the assignment loop.
    """

    def test_single_term_vocabulary(self, web):
        lexicon = SyntheticLexicon(web.graph, num_terms=1, seed=1)
        assert lexicon.num_terms == 1
        for page in range(0, web.graph.num_nodes, 61):
            assert lexicon.terms_of(page).tolist() == [0]
        assert (
            lexicon.pages_with_term(0).size == web.graph.num_nodes
        )

    def test_coherence_zero_draws_only_global_terms(self, web):
        lexicon = SyntheticLexicon(
            web.graph,
            group_of=web.labels["domain"],
            num_terms=50,
            coherence=0.0,
            seed=2,
        )
        assert lexicon.num_pages == web.graph.num_nodes
        assert all(
            lexicon.terms_of(p).size >= 1
            for p in range(0, web.graph.num_nodes, 61)
        )

    def test_coherence_one_draws_only_group_terms(self, web):
        lexicon = SyntheticLexicon(
            web.graph,
            group_of=web.labels["domain"],
            num_terms=50,
            coherence=1.0,
            seed=2,
        )
        # Every page's terms sit inside one contiguous group slice.
        slice_size = max(50 // 4, 1)
        for page in range(0, web.graph.num_nodes, 61):
            terms = lexicon.terms_of(page)
            assert terms.size >= 1
            assert terms.max() - terms.min() < slice_size

    def test_more_groups_than_terms(self, web):
        # slice_size clamps to 1: every group still gets terms.
        lexicon = SyntheticLexicon(
            web.graph,
            group_of=web.labels["domain"],
            num_terms=2,
            coherence=1.0,
            seed=4,
        )
        for page in range(0, web.graph.num_nodes, 61):
            assert lexicon.terms_of(page).size >= 1

    def test_empty_graph_is_a_typed_error(self):
        from repro.graph.builder import graph_from_edges

        with pytest.raises(DatasetError, match="empty graph"):
            SyntheticLexicon(graph_from_edges(0, []))

    def test_num_pages_property_matches_graph(self, web, lexicon):
        assert lexicon.num_pages == web.graph.num_nodes


class TestEngine:
    def test_hits_ordered_and_in_subgraph(
        self, web, lexicon, domain_scores
    ):
        engine = SubgraphSearchEngine(domain_scores, lexicon)
        top_term = int(lexicon.popular_terms(1)[0])
        hits = engine.search([top_term], k=5)
        assert len(hits) >= 1
        pages = set(domain_scores.local_nodes.tolist())
        ranks = [hit.rank for hit in hits]
        for hit in hits:
            assert hit.page in pages
        assert ranks == sorted(ranks)

    def test_k_limits_answers(self, web, lexicon, domain_scores):
        engine = SubgraphSearchEngine(domain_scores, lexicon)
        top_term = int(lexicon.popular_terms(1)[0])
        assert len(engine.search([top_term], k=2)) <= 2

    def test_unmatched_query_returns_empty(
        self, web, lexicon, domain_scores
    ):
        engine = SubgraphSearchEngine(domain_scores, lexicon)
        # Find a term with empty postings within the subgraph by
        # taking a rare term unlikely to land in 125 pages; verify.
        rare_candidates = [
            t for t in range(lexicon.num_terms - 1, 0, -1)
            if lexicon.document_frequency(t) == 0
        ][:1]
        if rare_candidates:
            assert engine.search(rare_candidates, k=5) == []

    def test_rejects_bad_k(self, web, lexicon, domain_scores):
        engine = SubgraphSearchEngine(domain_scores, lexicon)
        with pytest.raises(SubgraphError, match="k must be"):
            engine.search([0], k=0)

    def test_k_beyond_indexed_pages_returns_all_matches(
        self, web, lexicon, domain_scores
    ):
        # Asking for more answers than the engine indexes is not an
        # error: it returns every matching page, exactly once.
        engine = SubgraphSearchEngine(domain_scores, lexicon)
        top_term = int(lexicon.popular_terms(1)[0])
        everything = engine.search(
            [top_term], k=engine.num_indexed + 100
        )
        exact = engine.search([top_term], k=engine.num_indexed)
        assert len(everything) <= engine.num_indexed
        assert [h.page for h in everything] == [h.page for h in exact]
        assert len({h.page for h in everything}) == len(everything)

    def test_term_matching_nothing_in_subgraph_is_empty(self, web):
        # A lexicon whose postings all live outside the subgraph: the
        # engine has matching pages in the corpus but none locally.
        nodes = web.pages_with_label("domain", "site2.example")[:5]
        scores = approxrank(web.graph, nodes, SETTINGS)
        skewed = SyntheticLexicon(web.graph, num_terms=40, seed=9)
        engine = SubgraphSearchEngine(scores, skewed)
        # Find a term whose postings avoid the subgraph entirely.
        for term in range(skewed.num_terms):
            postings = skewed.pages_with_term(term)
            if postings.size and not np.isin(postings, nodes).any():
                assert engine.search([term], k=5) == []
                break
        else:
            pytest.skip("every term of the lexicon hits the subgraph")

    def test_tied_scores_order_by_ascending_page_id(self, web, lexicon):
        # All-equal scores: the ranking must fall back to global id,
        # so repeated queries are reproducible across runs.
        from repro.pagerank.result import SubgraphScores

        nodes = web.pages_with_label("domain", "site0.example")
        flat = SubgraphScores(
            local_nodes=nodes.copy(),
            scores=np.full(nodes.size, 0.5),
            method="flat",
            iterations=0,
            residual=0.0,
            converged=True,
            runtime_seconds=0.0,
        )
        engine = SubgraphSearchEngine(flat, lexicon)
        top_term = int(lexicon.popular_terms(1)[0])
        hits = engine.search([top_term], k=10)
        assert len(hits) >= 2, "need ties to exercise the rule"
        pages = [hit.page for hit in hits]
        assert pages == sorted(pages)
        # And the tie order is stable across engine rebuilds.
        again = SubgraphSearchEngine(flat, lexicon).search(
            [top_term], k=10
        )
        assert [hit.page for hit in again] == pages


class TestCompareEngines:
    def test_identical_rankings_full_overlap(
        self, web, lexicon, domain_scores
    ):
        queries = [[int(t)] for t in lexicon.popular_terms(5)]
        assert compare_engines(
            domain_scores, domain_scores, lexicon, queries
        ) == 1.0

    def test_better_ranking_higher_overlap(self, web, lexicon):
        """ApproxRank's answers agree with the gold engine more than
        a deliberately scrambled ranking does."""
        truth = global_pagerank(web.graph, SETTINGS)
        nodes = web.pages_with_label("domain", "site1.example")
        estimate = approxrank(web.graph, nodes, SETTINGS)
        reference = reference_engine_scores(truth.scores, nodes)

        rng = np.random.default_rng(1)
        from repro.pagerank.result import SubgraphScores

        scrambled = SubgraphScores(
            local_nodes=nodes.copy(),
            scores=rng.permutation(estimate.scores),
            method="scrambled",
            iterations=0,
            residual=0.0,
            converged=True,
            runtime_seconds=0.0,
        )
        queries = [[int(t)] for t in lexicon.popular_terms(8)]
        good = compare_engines(
            estimate, reference, lexicon, queries, k=10
        )
        bad = compare_engines(
            scrambled, reference, lexicon, queries, k=10
        )
        assert good > bad

    def test_rejects_mismatched_subgraphs(self, web, lexicon):
        nodes_a = web.pages_with_label("domain", "site0.example")
        nodes_b = web.pages_with_label("domain", "site1.example")
        a = approxrank(web.graph, nodes_a, SETTINGS)
        b = approxrank(web.graph, nodes_b, SETTINGS)
        with pytest.raises(MetricError, match="same subgraph"):
            compare_engines(a, b, lexicon, [[0]])

    def test_rejects_empty_queries(self, web, lexicon, domain_scores):
        with pytest.raises(MetricError, match="at least one query"):
            compare_engines(
                domain_scores, domain_scores, lexicon, []
            )


class TestAnswerOverlap:
    def test_both_empty(self):
        assert answer_overlap([], []) == 1.0

    def test_one_empty(self, web, lexicon, domain_scores):
        from repro.search.engine import SearchHit

        hit = SearchHit(page=1, score=0.5, rank=1)
        assert answer_overlap([hit], []) == 0.0

    def test_partial(self):
        from repro.search.engine import SearchHit

        a = [SearchHit(1, 0.5, 1), SearchHit(2, 0.4, 2)]
        b = [SearchHit(2, 0.6, 1), SearchHit(3, 0.2, 2)]
        assert answer_overlap(a, b) == 0.5
