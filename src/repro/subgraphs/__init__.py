"""Subgraph extractors for the evaluation families.

* **TS** — topic-specific subgraphs: a topic's category pages plus a
  focused crawl within three links (§V-C).
* **DS** — domain-specific subgraphs: all pages of one domain (§V-D).
* **BFS** — breadth-first crawls from a seed page up to a target
  fraction of the global graph (§V-E).
* **FS** — dangling-frontier subgraphs.
* **semantic** — query-derived neighborhoods (cosine seeds plus a
  hop-bounded closure; see :mod:`repro.semantic.subgraph`).
"""

from repro.subgraphs.bfs import bfs_subgraph, default_bfs_seed
from repro.subgraphs.domain import domain_subgraph
from repro.subgraphs.frontier import dangling_frontier_subgraph
from repro.subgraphs.topic import focused_crawl, topic_subgraph

__all__ = [
    "bfs_subgraph",
    "default_bfs_seed",
    "dangling_frontier_subgraph",
    "domain_subgraph",
    "focused_crawl",
    "semantic_subgraph",
    "topic_subgraph",
]


def __getattr__(name: str):
    # The semantic family lives in repro.semantic (it needs the
    # embedding stack); re-exported lazily so importing the
    # topology-only extractors never pulls it in — and so
    # repro.semantic.subgraph can import focused_crawl from this
    # package without a cycle.
    if name == "semantic_subgraph":
        from repro.semantic.subgraph import semantic_subgraph

        return semantic_subgraph
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
