"""Unit tests for the power-iteration solver."""

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import ConvergenceError
from repro.pagerank.solver import (
    DEFAULT_DAMPING,
    PowerIterationSettings,
    power_iteration,
    uniform_teleport,
)


def two_node_transition_t():
    # 0 <-> 1: transition matrix is the swap; transpose equals itself.
    matrix = sparse.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
    return matrix


class TestSettings:
    def test_defaults_match_paper(self):
        settings = PowerIterationSettings()
        assert settings.damping == 0.85
        assert settings.tolerance == 1e-5

    @pytest.mark.parametrize("damping", [0.0, 1.0, -0.1, 1.5])
    def test_damping_bounds(self, damping):
        with pytest.raises(ValueError, match="damping"):
            PowerIterationSettings(damping=damping)

    def test_tolerance_positive(self):
        with pytest.raises(ValueError, match="tolerance"):
            PowerIterationSettings(tolerance=0.0)

    def test_max_iterations_positive(self):
        with pytest.raises(ValueError, match="max_iterations"):
            PowerIterationSettings(max_iterations=0)


class TestUniformTeleport:
    def test_sums_to_one(self):
        assert uniform_teleport(7).sum() == pytest.approx(1.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            uniform_teleport(0)


class TestPowerIteration:
    def test_symmetric_two_nodes(self, tight_settings):
        outcome = power_iteration(
            two_node_transition_t(),
            teleport=uniform_teleport(2),
            settings=tight_settings,
        )
        assert outcome.converged
        assert outcome.scores.tolist() == pytest.approx([0.5, 0.5])

    def test_scores_sum_to_one(self, tight_settings, messy_graph):
        from repro.pagerank.transition import transition_matrix_transpose

        transition_t, dangling = transition_matrix_transpose(messy_graph)
        outcome = power_iteration(
            transition_t,
            teleport=uniform_teleport(messy_graph.num_nodes),
            dangling_mask=dangling,
            settings=tight_settings,
        )
        assert outcome.scores.sum() == pytest.approx(1.0, abs=1e-12)
        assert np.all(outcome.scores > 0)

    def test_initial_vector_does_not_change_fixed_point(
        self, tight_settings
    ):
        transition_t = two_node_transition_t()
        teleport = np.array([0.3, 0.7])
        a = power_iteration(
            transition_t, teleport, settings=tight_settings
        )
        b = power_iteration(
            transition_t, teleport,
            settings=tight_settings,
            initial=np.array([0.99, 0.01]),
        )
        assert a.scores == pytest.approx(b.scores, abs=1e-9)

    def test_dangling_mass_goes_to_dangling_dist(self, tight_settings):
        # 0 -> 1, node 1 dangling.  With dangling_dist pinned on node 0
        # the chain keeps all mass cycling 0 -> 1 -> 0.
        transition = sparse.csr_matrix(
            np.array([[0.0, 1.0], [0.0, 0.0]])
        )
        outcome = power_iteration(
            transition.T.tocsr(),
            teleport=np.array([1.0, 0.0]),
            dangling_mask=np.array([False, True]),
            dangling_dist=np.array([1.0, 0.0]),
            settings=tight_settings,
        )
        # Stationarity: x0 = 0.85 * x1 + 0.15, x1 = 0.85 * x0
        x0 = outcome.scores[0]
        assert x0 == pytest.approx(0.15 / (1 - 0.85**2), rel=1e-6)

    def test_divergence_returns_unconverged(self):
        settings = PowerIterationSettings(
            tolerance=1e-15, max_iterations=3
        )
        outcome = power_iteration(
            two_node_transition_t(),
            teleport=np.array([0.9, 0.1]),
            settings=settings,
        )
        assert not outcome.converged
        assert outcome.iterations == 3

    def test_divergence_raises_when_requested(self):
        settings = PowerIterationSettings(
            tolerance=1e-15, max_iterations=3, raise_on_divergence=True
        )
        with pytest.raises(ConvergenceError) as excinfo:
            power_iteration(
                two_node_transition_t(),
                teleport=np.array([0.9, 0.1]),
                settings=settings,
            )
        assert excinfo.value.iterations == 3
        assert excinfo.value.residual > 0


class TestValidation:
    def test_rejects_non_square(self):
        matrix = sparse.csr_matrix(np.ones((2, 3)))
        with pytest.raises(ValueError, match="square"):
            power_iteration(matrix, teleport=uniform_teleport(2))

    def test_rejects_empty(self):
        matrix = sparse.csr_matrix((0, 0))
        with pytest.raises(ValueError, match="empty"):
            power_iteration(matrix, teleport=np.empty(0))

    def test_rejects_teleport_not_summing_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            power_iteration(
                two_node_transition_t(), teleport=np.array([0.5, 0.6])
            )

    def test_rejects_negative_teleport(self):
        with pytest.raises(ValueError, match="non-negative"):
            power_iteration(
                two_node_transition_t(), teleport=np.array([-0.5, 1.5])
            )

    def test_rejects_bad_dangling_mask_shape(self):
        with pytest.raises(ValueError, match="dangling_mask"):
            power_iteration(
                two_node_transition_t(),
                teleport=uniform_teleport(2),
                dangling_mask=np.array([True]),
            )

    def test_rejects_zero_mass_initial(self):
        with pytest.raises(ValueError, match="positive mass"):
            power_iteration(
                two_node_transition_t(),
                teleport=uniform_teleport(2),
                initial=np.zeros(2),
            )

    def test_rejects_bad_initial_shape(self):
        with pytest.raises(ValueError, match="initial"):
            power_iteration(
                two_node_transition_t(),
                teleport=uniform_teleport(2),
                initial=np.ones(3),
            )


class TestDampingEffect:
    def test_lower_damping_flattens_scores(self, tight_settings):
        # Star transition: all leaves point at the hub.
        from repro.generators.simple import star_graph
        from repro.pagerank.transition import transition_matrix_transpose

        graph = star_graph(20)
        transition_t, dangling = transition_matrix_transpose(graph)
        teleport = uniform_teleport(graph.num_nodes)
        strong = power_iteration(
            transition_t, teleport, dangling_mask=dangling,
            settings=PowerIterationSettings(
                damping=0.95, tolerance=1e-12, max_iterations=20_000
            ),
        )
        weak = power_iteration(
            transition_t, teleport, dangling_mask=dangling,
            settings=PowerIterationSettings(
                damping=0.5, tolerance=1e-12, max_iterations=20_000
            ),
        )
        # The hub (node 0) dominates more under stronger damping.
        assert strong.scores[0] > weak.scores[0]

    def test_default_damping_constant(self):
        assert DEFAULT_DAMPING == 0.85
