"""Convergence diagnostics for the power iteration.

The paper reports convergence behaviour (131 iterations for the AU
global solve at L1 tolerance 1e-5); this module exposes the full
residual trajectory so that behaviour can be inspected, asserted and
plotted rather than summarised by a single count.  The decay rate also
verifies the standard theory: the L1 residual of the damped walk
contracts by (at most) a factor ε per step, so ``log residual`` falls
linearly with slope ``log ε``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.pagerank.solver import (
    PowerIterationSettings,
    _validate_distribution,
)


@dataclass(frozen=True)
class ResidualTrace:
    """Residual trajectory of one power-iteration run.

    Attributes
    ----------
    residuals:
        L1 change between successive iterates, one entry per step.
    converged:
        Whether the last residual is under the tolerance.
    scores:
        The final iterate.
    """

    residuals: np.ndarray
    converged: bool
    scores: np.ndarray

    @property
    def iterations(self) -> int:
        """Steps performed."""
        return int(self.residuals.size)

    def contraction_rate(self, tail: int = 10) -> float:
        """Mean per-step residual contraction over the last ``tail``
        steps — should approach the damping factor ε."""
        if self.residuals.size < 2:
            return float("nan")
        tail = min(tail, self.residuals.size - 1)
        ratios = (
            self.residuals[-tail:] / self.residuals[-tail - 1: -1]
        )
        ratios = ratios[np.isfinite(ratios) & (ratios > 0)]
        if ratios.size == 0:
            return float("nan")
        return float(np.exp(np.mean(np.log(ratios))))


def residual_trace(
    transition_t: sparse.csr_matrix,
    teleport: np.ndarray,
    dangling_mask: np.ndarray | None = None,
    dangling_dist: np.ndarray | None = None,
    settings: PowerIterationSettings | None = None,
) -> ResidualTrace:
    """Run the standard power iteration, recording every residual.

    Parameters are those of
    :func:`repro.pagerank.solver.power_iteration`; the iteration logic
    is intentionally identical so the trace describes the production
    solver, not an approximation of it.
    """
    if settings is None:
        settings = PowerIterationSettings()
    size = transition_t.shape[0]
    if size == 0:
        raise ValueError("cannot trace an empty graph")
    teleport = _validate_distribution("teleport", teleport, size)
    if dangling_dist is None:
        dangling_dist = teleport
    else:
        dangling_dist = _validate_distribution(
            "dangling_dist", dangling_dist, size
        )
    if dangling_mask is None:
        dangling_indices = np.empty(0, dtype=np.int64)
    else:
        dangling_indices = np.flatnonzero(
            np.asarray(dangling_mask, dtype=bool)
        )
    damping = settings.damping
    base = (1.0 - damping) * teleport
    x = teleport.copy()
    residuals: list[float] = []
    for __ in range(settings.max_iterations):
        dangling_mass = (
            float(x[dangling_indices].sum())
            if dangling_indices.size else 0.0
        )
        x_next = damping * (transition_t @ x)
        if dangling_mass:
            x_next += damping * dangling_mass * dangling_dist
        x_next += base
        x_next /= x_next.sum()
        residual = float(np.abs(x_next - x).sum())
        residuals.append(residual)
        x = x_next
        if residual < settings.tolerance:
            break
    trace = np.asarray(residuals)
    return ResidualTrace(
        residuals=trace,
        converged=bool(
            trace.size and trace[-1] < settings.tolerance
        ),
        scores=x,
    )
