"""Deterministic chaos fault injection for the parallel pipeline.

The chaos test suite needs to *cause* the failures the resilience
layer claims to survive — killed workers, chunks that outlive their
timeout, shared-memory attach failures, transient errors — on demand
and reproducibly.  This module is that switchboard.

Faults are described by a compact spec string, settable from code
(:func:`set_injector`) or from the environment so injected faults
reach worker processes with zero plumbing::

    REPRO_FAULTS="kill_worker:p=0.2,seed=7;transient:p=1,max=1"

Each ``;``-separated clause is ``<kind>[:key=value,...]`` with keys

``p``
    Firing probability per opportunity (default 1).
``max``
    Cap on fires *per process* (default unlimited) — ``max=1`` makes
    "fails once, then succeeds on retry" scenarios deterministic.
``seed``
    Seed of the per-site decision stream.
``delay``
    Sleep seconds for ``delay_chunk`` (default 5).

Supported kinds and their injection sites:

``kill_worker``
    ``os.kill(os.getpid(), SIGKILL)`` at the start of a worker chunk —
    the pool breaks mid-flight.
``delay_chunk``
    Sleep inside the worker chunk, long enough to trip the executor's
    per-chunk timeout.
``fail_attach``
    Raise ``FileNotFoundError`` at shared-memory attach, as if the
    segment vanished.
``transient``
    Raise :class:`~repro.exceptions.TransientFaultError` inside the
    worker chunk (always classified retryable).

Serve-path kinds (PR 8) target the sharded serving tier instead of
the offline pool; their side effects live at the injection sites in
:mod:`repro.serve.cluster` (the decision machinery here is shared):

``kill_shard``
    The shard worker dies abruptly mid-request — listening socket and
    all connections drop without a response (SIGKILL in process
    placement).
``slow_shard``
    The request handler sleeps ``ms`` milliseconds before answering —
    long enough to trip the router's per-attempt timeout.
``drop_conn``
    The connection is closed mid-request without any response bytes.
``flap_health``
    ``/healthz`` reports failing, so the router's prober ejects the
    replica until the flap passes.

Decisions are **deterministic**: each (kind, opportunity-index) pair
maps to a seeded RNG draw, so a given spec produces the same fault
schedule in every run of the same process.  Offline kinds fire **only
inside worker processes** (the executor's pool initializer calls
:func:`mark_worker_process`); the parent — and therefore the serial
fallback path — is immune by construction, which is exactly what makes
"every recovery path converges to correct scores" testable.  Serve
kinds are armed separately (:func:`arm_serve_faults`, called by shard
workers) and draw from **site-keyed** streams — the decision for
opportunity ``i`` of kind ``k`` at site ``"shard-2"`` is keyed by
``(seed, k, site, i)``, so each shard replays its own schedule
independent of request interleaving across shards.
"""

from __future__ import annotations

import logging
import os
import signal
import time
import zlib
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ReproError, TransientFaultError
from repro.obs.metrics import REGISTRY

log = logging.getLogger(__name__)

#: Environment variable the injector is parsed from.
ENV_VAR = "REPRO_FAULTS"

#: Serve-path fault kinds: armed via :func:`arm_serve_faults` inside
#: shard workers, fired at sites in :mod:`repro.serve.cluster`.
SERVE_FAULT_KINDS: tuple[str, ...] = (
    "kill_shard",
    "slow_shard",
    "drop_conn",
    "flap_health",
)

#: Fault kinds the injector understands.
FAULT_KINDS: tuple[str, ...] = (
    "kill_worker",
    "delay_chunk",
    "fail_attach",
    "transient",
) + SERVE_FAULT_KINDS

#: Default sleep for ``delay_chunk`` (long enough to trip any sane
#: chunk timeout, short enough to keep chaos tests quick).
_DEFAULT_DELAY = 5.0


@dataclass(frozen=True)
class FaultSpec:
    """One configured fault: what fires, how often, how many times."""

    kind: str
    probability: float = 1.0
    max_fires: int | None = None
    seed: int = 0
    delay: float = _DEFAULT_DELAY

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; "
                f"supported: {', '.join(FAULT_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ReproError(
                f"fault probability must be in [0, 1], "
                f"got {self.probability}"
            )
        if self.max_fires is not None and self.max_fires < 0:
            raise ReproError(
                f"fault max must be >= 0, got {self.max_fires}"
            )
        if self.delay < 0:
            raise ReproError(f"fault delay must be >= 0, got {self.delay}")


def parse_faults(spec: str) -> tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS`` spec string into fault specs.

    Raises :class:`~repro.exceptions.ReproError` on malformed clauses
    — a typo'd chaos config must fail loudly, not silently inject
    nothing.
    """
    specs: list[FaultSpec] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, option_str = clause.partition(":")
        kind = kind.strip()
        options: dict[str, float | int] = {}
        if option_str.strip():
            for pair in option_str.split(","):
                key, sep, value = pair.partition("=")
                key = key.strip()
                value = value.strip()
                if not sep or not key or not value:
                    raise ReproError(
                        f"malformed fault option {pair!r} in {clause!r}; "
                        "expected key=value"
                    )
                try:
                    if key == "p":
                        options["probability"] = float(value)
                    elif key == "max":
                        options["max_fires"] = int(value)
                    elif key == "seed":
                        options["seed"] = int(value)
                    elif key == "delay":
                        options["delay"] = float(value)
                    elif key == "ms":
                        # Serve-path idiom: slow_shard:ms=250 — stored
                        # in the same ``delay`` slot, in seconds.
                        options["delay"] = float(value) / 1000.0
                    else:
                        raise ReproError(
                            f"unknown fault option {key!r} in {clause!r}; "
                            "supported: p, max, seed, delay, ms"
                        )
                except ValueError as exc:
                    raise ReproError(
                        f"invalid value for fault option {key!r} in "
                        f"{clause!r}: {value!r}"
                    ) from exc
        specs.append(FaultSpec(kind=kind, **options))
    return tuple(specs)


class FaultInjector:
    """Fires configured faults at named sites, deterministically.

    One injector holds per-kind opportunity counters; the decision for
    opportunity ``i`` of kind ``k`` is a seeded RNG draw keyed by
    ``(seed, kind, i)`` — independent of call timing, identical across
    runs.  Worker processes each build their own injector (from the
    inherited environment), so counters and caps are **per process**.
    """

    def __init__(self, specs: "tuple[FaultSpec, ...] | list[FaultSpec]"):
        self._specs: dict[str, FaultSpec] = {}
        for spec in specs:
            self._specs[spec.kind] = spec
        self._opportunities: dict[str, int] = {k: 0 for k in self._specs}
        self._fired: dict[str, int] = {k: 0 for k in self._specs}
        # Site-keyed streams (serve-path faults): counters and caps are
        # tracked per (kind, site), so each shard replays its own
        # deterministic schedule regardless of cross-shard interleaving.
        self._site_opportunities: dict[tuple[str, str], int] = {}
        self._site_fired: dict[tuple[str, str], int] = {}

    @classmethod
    def from_spec(cls, spec: str) -> "FaultInjector":
        """Build an injector from a ``REPRO_FAULTS``-style string."""
        return cls(parse_faults(spec))

    @property
    def kinds(self) -> tuple[str, ...]:
        """Fault kinds this injector is armed with."""
        return tuple(self._specs)

    def fired(self, kind: str) -> int:
        """How many times ``kind`` has fired in this process."""
        return self._fired.get(kind, 0)

    def spec(self, kind: str) -> FaultSpec | None:
        """The configured spec for ``kind`` (``None`` when unarmed)."""
        return self._specs.get(kind)

    def fired_at(self, kind: str, site: str) -> int:
        """How many times ``kind`` has fired at ``site``."""
        return self._site_fired.get((kind, site), 0)

    def should_fire_at(self, kind: str, site: str) -> bool:
        """Decide (and record) whether ``kind`` fires at ``site``.

        The site-keyed twin of :meth:`should_fire`: opportunity
        counters, fire caps, and the RNG stream are all per
        ``(kind, site)``, so two shards armed with the same spec each
        see the same schedule their solo run would — deterministic
        per-(shard, opportunity), independent of request interleaving.
        """
        spec = self._specs.get(kind)
        if spec is None:
            return False
        key = (kind, site)
        opportunity = self._site_opportunities.get(key, 0)
        self._site_opportunities[key] = opportunity + 1
        fired = self._site_fired.get(key, 0)
        if spec.max_fires is not None and fired >= spec.max_fires:
            return False
        if spec.probability >= 1.0:
            fire = True
        elif spec.probability <= 0.0:
            fire = False
        else:
            rng = np.random.default_rng(
                (
                    spec.seed,
                    zlib.crc32(kind.encode("utf-8")),
                    zlib.crc32(site.encode("utf-8")),
                    opportunity,
                )
            )
            fire = float(rng.random()) < spec.probability
        if fire:
            self._site_fired[key] = fired + 1
            self._fired[kind] = self._fired.get(kind, 0) + 1
        return fire

    def should_fire(self, kind: str) -> bool:
        """Decide (and record) whether ``kind`` fires at this call."""
        spec = self._specs.get(kind)
        if spec is None:
            return False
        opportunity = self._opportunities[kind]
        self._opportunities[kind] = opportunity + 1
        if spec.max_fires is not None and self._fired[kind] >= spec.max_fires:
            return False
        if spec.probability >= 1.0:
            fire = True
        elif spec.probability <= 0.0:
            fire = False
        else:
            # zlib.crc32 (not hash()) keys the stream: str hashes are
            # salted per process, which would break run-to-run
            # determinism of the fault schedule.
            rng = np.random.default_rng(
                (spec.seed, zlib.crc32(kind.encode("utf-8")), opportunity)
            )
            fire = float(rng.random()) < spec.probability
        if fire:
            self._fired[kind] += 1
        return fire

    def inject(self, kind: str) -> None:
        """Perform the side effect of fault ``kind``."""
        spec = self._specs[kind]
        log.warning(
            "fault injector firing %r (fire %d) in pid %d",
            kind,
            self._fired[kind],
            os.getpid(),
        )
        # Counted before the side effect: a kill_worker fire takes its
        # process (and registry) down with it, but the log line above
        # and this increment are the record that it happened at all.
        # Worker-side increments reach the parent only via the drain
        # shipped with a *successful* chunk, so kill_worker fires are
        # visible parent-side just when a surviving chunk ships them.
        REGISTRY.counter(
            "repro_faults_injected_total",
            "Injected chaos faults fired, by kind",
            kind=kind,
        ).inc()
        if kind == "kill_worker":
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "delay_chunk":
            time.sleep(spec.delay)
        elif kind == "fail_attach":
            raise FileNotFoundError(
                "injected fault: shared-memory segment attach failed"
            )
        elif kind == "transient":
            raise TransientFaultError(
                "injected fault: transient worker failure"
            )


#: Sentinel distinguishing "never initialised" from "explicitly None".
_UNSET = object()

#: The process-wide active injector (lazily parsed from the env).
_ACTIVE: "FaultInjector | None | object" = _UNSET

#: True only in pool worker processes (set by the executor's pool
#: initializer).  Faults never fire in the parent, so the serial
#: fallback path is immune by construction.
_IN_WORKER = False


def mark_worker_process() -> None:
    """Pool initializer: arm fault injection for this worker process.

    Also drops any injector state inherited across ``fork`` so the
    worker re-parses the environment with fresh per-process counters.
    """
    global _IN_WORKER, _ACTIVE
    _IN_WORKER = True
    _ACTIVE = _UNSET


def in_worker_process() -> bool:
    """Whether this process is a pool worker (faults are armed)."""
    return _IN_WORKER


def get_injector() -> FaultInjector | None:
    """The active injector, lazily built from ``REPRO_FAULTS``."""
    global _ACTIVE
    if _ACTIVE is _UNSET:
        spec = os.environ.get(ENV_VAR, "").strip()
        _ACTIVE = FaultInjector.from_spec(spec) if spec else None
    return _ACTIVE  # type: ignore[return-value]


def set_injector(injector: FaultInjector | None) -> None:
    """Install (or clear) the process-wide injector.

    Passing ``None`` disarms injection *and* re-enables lazy parsing of
    the environment on the next :func:`get_injector` call — tests use
    this to reset state between scenarios.
    """
    global _ACTIVE
    _ACTIVE = _UNSET if injector is None else injector


def maybe_inject(kind: str) -> None:
    """Injection site hook: fire ``kind`` if armed, else no-op.

    No-ops unless (a) this process is a pool worker and (b) an injector
    is configured with that kind.  The hot-path cost when chaos is off
    is one module-global check.
    """
    if not _IN_WORKER:
        return
    injector = get_injector()
    if injector is not None and injector.should_fire(kind):
        injector.inject(kind)


# ----------------------------------------------------------------------
# Serve-path faults (sharded serving tier)
# ----------------------------------------------------------------------

#: True only in serve-cluster shard workers (thread placement arms the
#: whole process; process placement arms the spawned worker).  The
#: router — and the plain single-process server — never arm, so the
#: recovery machinery under test is immune by construction.
_SERVE_ARMED = False


def arm_serve_faults() -> None:
    """Arm serve-path fault injection for this process.

    Called by cluster shard workers at boot.  Unlike
    :func:`mark_worker_process` it does not reset the injector: in
    thread placement every shard shares one process, and dropping the
    counters at each worker boot would erase sibling shards' streams
    (they are independent anyway — streams are site-keyed).
    """
    global _SERVE_ARMED
    _SERVE_ARMED = True


def disarm_serve_faults() -> None:
    """Disarm serve-path faults (test teardown)."""
    global _SERVE_ARMED
    _SERVE_ARMED = False


def serve_faults_armed() -> bool:
    """Whether serve-path faults may fire in this process."""
    return _SERVE_ARMED


def serve_fault_fires(kind: str, site: str) -> FaultSpec | None:
    """Decide whether serve fault ``kind`` fires at ``site``.

    Returns the armed :class:`FaultSpec` when the fault fires (the
    caller performs the side effect — sleeping, crashing, or dropping
    a connection needs the shard server's own asyncio context) and
    ``None`` otherwise.  The fire is counted and logged here so every
    injection shares one audit trail.
    """
    if not _SERVE_ARMED:
        return None
    injector = get_injector()
    if injector is None or not injector.should_fire_at(kind, site):
        return None
    spec = injector.spec(kind)
    log.warning(
        "serve fault injector firing %r at %s (fire %d) in pid %d",
        kind,
        site,
        injector.fired_at(kind, site),
        os.getpid(),
    )
    REGISTRY.counter(
        "repro_faults_injected_total",
        "Injected chaos faults fired, by kind",
        kind=kind,
    ).inc()
    return spec
