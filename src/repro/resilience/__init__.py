"""Resilience layer: retry policies, fault injection, checkpoints.

The parallel ranking pipeline of :mod:`repro.parallel` fans work
across processes that can be killed, hang, or hit transient
infrastructure failures; the iterative solvers can be fed corrupted
inputs that diverge; long experiment runs can crash halfway.  This
package supplies the machinery that turns each of those events into a
recovery instead of a lost run:

* :mod:`repro.resilience.policy` — :class:`RetryPolicy` (attempt caps,
  deterministic exponential backoff, per-chunk timeouts, total
  deadlines) and the retryable-vs-fatal error classifier every
  recovery decision routes through.
* :mod:`repro.resilience.faults` — a deterministic, environment-driven
  chaos injector (``REPRO_FAULTS=kill_worker:p=0.2,seed=7``) that can
  SIGKILL workers, delay chunks past their timeout, fail shared-memory
  attach, and raise transient errors — the substrate of the chaos test
  suite that proves every recovery path converges to correct scores.
* :mod:`repro.resilience.checkpoint` — an append-only, hash-verified
  JSONL journal backing ``python -m repro all --resume``.

Everything here is dependency-light by design: the solvers and the
executor import policies and injection hooks, never the other way
around.
"""

from repro.resilience.checkpoint import CheckpointJournal
from repro.resilience.faults import (
    FaultInjector,
    FaultSpec,
    arm_serve_faults,
    disarm_serve_faults,
    get_injector,
    maybe_inject,
    parse_faults,
    serve_fault_fires,
    serve_faults_armed,
    set_injector,
)
from repro.resilience.policy import (
    AttemptRecord,
    FailureDecision,
    RetryPolicy,
    classify_failure,
    classify_failure_name,
    classify_http_status,
)

__all__ = [
    "AttemptRecord",
    "CheckpointJournal",
    "FailureDecision",
    "FaultInjector",
    "FaultSpec",
    "RetryPolicy",
    "arm_serve_faults",
    "classify_failure",
    "classify_failure_name",
    "classify_http_status",
    "disarm_serve_faults",
    "get_injector",
    "maybe_inject",
    "parse_faults",
    "serve_fault_fires",
    "serve_faults_armed",
    "set_injector",
]
