"""Table IV: DS-subgraph footrule distance, four algorithms (§V-D).

On the AU dataset, the 12 named domains (in ascending size, 0.35 % to
10.42 % of the global graph) are ranked by local PageRank (■), SC (◆),
LPR2 (●) and ApproxRank (▲); the Spearman's footrule distance against
the restricted global PageRank is reported next to the paper's values.

Expected shapes (§V-D):

* distances shrink as the domain's share of the graph grows,
  for every algorithm;
* ApproxRank beats all three competitors on every domain, typically by
  a wide margin (the paper reports ~5x vs SC/LPR2 and ~an order of
  magnitude vs local PageRank).
"""

from __future__ import annotations

from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import TableResult
from repro.experiments.runner import run_algorithms_many
from repro.generators.datasets import AU_NAMED_DOMAINS
from repro.subgraphs.domain import domain_subgraph

#: Paper Table IV: domain -> (localPR, SC, LPR2, ApproxRank) footrule.
PAPER_TABLE4 = {
    "acu.edu.au": (0.19171, 0.15654, 0.10938, 0.012112),
    "bond.edu.au": (0.11049, 0.09679, 0.09102, 0.013611),
    "canberra.edu.au": (0.10839, 0.09197, 0.07839, 0.012554),
    "cdu.edu.au": (0.11999, 0.09418, 0.07898, 0.012589),
    "ballarat.edu.au": (0.07317, 0.06471, 0.05762, 0.006625),
    "cqu.edu.au": (0.11344, 0.09033, 0.06722, 0.011167),
    "csu.edu.au": (0.07583, 0.05745, 0.04826, 0.008273),
    "adelaide.edu.au": (0.08901, 0.08321, 0.06970, 0.009757),
    "curtin.edu.au": (0.05306, 0.03118, 0.02771, 0.005799),
    "jcu.edu.au": (0.04823, 0.02957, 0.02719, 0.004614),
    "monash.edu.au": (0.04101, 0.02048, 0.02022, 0.003934),
    "anu.edu.au": (0.04516, 0.02446, 0.02760, 0.004945),
}

ALGORITHM_ORDER = ("local-pr", "sc", "lpr2", "approxrank")


def run(context: ExperimentContext | None = None) -> TableResult:
    """Run all four algorithms on the 12 DS subgraphs."""
    context = context or ExperimentContext()
    dataset = context.au
    table = TableResult(
        experiment_id="table4",
        title=(
            "Table IV -- Spearman's footrule distance on DS subgraphs "
            "(AU dataset)"
        ),
        headers=[
            "domain", "% of graph", "n",
            "localPR (paper)", "localPR (ours)",
            "SC (paper)", "SC (ours)",
            "LPR2 (paper)", "LPR2 (ours)",
            "AR (paper)", "AR (ours)",
            "AR (s)", "AR iters",
        ],
    )
    num_global = dataset.graph.num_nodes
    # The per-domain loop is the paper's many-subgraphs-one-graph
    # workload; run_algorithms_many fans it across worker processes
    # when the context asks for them (identical scores either way).
    named_nodes = [
        (domain, domain_subgraph(dataset, domain))
        for domain, __ in AU_NAMED_DOMAINS
    ]
    all_runs = run_algorithms_many(
        context, dataset, named_nodes, algorithms=ALGORITHM_ORDER
    )
    for (domain, nodes), runs in zip(named_nodes, all_runs):
        paper = PAPER_TABLE4[domain]
        table.add_row(
            domain,
            100.0 * nodes.size / num_global,
            int(nodes.size),
            paper[0], runs["local-pr"].report.footrule,
            paper[1], runs["sc"].report.footrule,
            paper[2], runs["lpr2"].report.footrule,
            paper[3], runs["approxrank"].report.footrule,
            runs["approxrank"].report.runtime_seconds,
            int(runs["approxrank"].estimate.iterations),
        )
    table.notes.append(
        "Expected shape: ApproxRank best on every domain; distances "
        "shrink as the domain share grows."
    )
    return table


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
