"""Tests for the practitioner tools CLI."""

import numpy as np
import pytest

from repro.tools import main


@pytest.fixture(scope="module")
def dataset_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("tools") / "tiny.npz"
    code = main([
        "dataset", "--kind", "tiny", "--pages", "400",
        "--seed", "3", "--output", str(path),
    ])
    assert code == 0
    return path


class TestDatasetCommand:
    def test_file_created_and_loadable(self, dataset_file):
        from repro.graph.io import load_npz

        graph, metadata = load_npz(dataset_file)
        assert graph.num_nodes == 400
        assert "domain" in metadata

    def test_output_mentions_counts(self, dataset_file, capsys):
        main([
            "dataset", "--kind", "tiny", "--pages", "300",
            "--output", str(dataset_file.parent / "t2.npz"),
        ])
        out = capsys.readouterr().out
        assert "300 pages" in out
        assert "domain" in out


class TestStatsCommand:
    def test_prints_characteristics(self, dataset_file, capsys):
        code = main(["stats", "--graph", str(dataset_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "pages:             400" in out
        assert "avg out-degree" in out
        assert "metadata 'domain'" in out


class TestRankCommand:
    def test_rank_by_label(self, dataset_file, capsys):
        code = main([
            "rank", "--graph", str(dataset_file),
            "--label", "domain=0", "--algorithm", "approxrank",
            "--top", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "approxrank:" in out
        assert "rank" in out

    def test_rank_by_nodes_file(self, dataset_file, tmp_path, capsys):
        nodes_path = tmp_path / "nodes.txt"
        nodes_path.write_text("# subgraph\n10\n11\n12\n13\n14\n")
        code = main([
            "rank", "--graph", str(dataset_file),
            "--nodes-file", str(nodes_path),
            "--algorithm", "local-pr",
        ])
        assert code == 0
        assert "local-pagerank:" in capsys.readouterr().out

    @pytest.mark.parametrize("algorithm", ["lpr2", "sc", "idealrank"])
    def test_all_algorithms_run(
        self, dataset_file, tmp_path, capsys, algorithm
    ):
        nodes_path = tmp_path / "nodes.txt"
        nodes_path.write_text("\n".join(str(i) for i in range(30)))
        code = main([
            "rank", "--graph", str(dataset_file),
            "--nodes-file", str(nodes_path),
            "--algorithm", algorithm, "--top", "3",
        ])
        assert code == 0

    def test_scores_output_file(self, dataset_file, tmp_path, capsys):
        nodes_path = tmp_path / "nodes.txt"
        nodes_path.write_text("\n".join(str(i) for i in range(20)))
        scores_path = tmp_path / "scores.tsv"
        main([
            "rank", "--graph", str(dataset_file),
            "--nodes-file", str(nodes_path),
            "--scores-output", str(scores_path),
        ])
        lines = scores_path.read_text().strip().splitlines()
        assert len(lines) == 20
        page, score = lines[0].split("\t")
        assert int(page) == 0
        assert float(score) > 0

    def test_bad_label_errors_cleanly(self, dataset_file, capsys):
        code = main([
            "rank", "--graph", str(dataset_file),
            "--label", "galaxy=0",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_label_errors_cleanly(self, dataset_file, capsys):
        code = main([
            "rank", "--graph", str(dataset_file),
            "--label", "domain",
        ])
        assert code == 2

    def test_empty_selection_errors_cleanly(
        self, dataset_file, tmp_path, capsys
    ):
        nodes_path = tmp_path / "empty.txt"
        nodes_path.write_text("# nothing\n")
        code = main([
            "rank", "--graph", str(dataset_file),
            "--nodes-file", str(nodes_path),
        ])
        assert code == 2
