"""Algorithm suites: run every ranker on a subgraph and evaluate it.

The evaluation sections of the paper repeat one recipe per subgraph —
run each algorithm, compare its output against the restricted global
PageRank, collect metrics and runtimes.  :func:`run_algorithms`
packages that recipe so each table module is just workload definition
plus row formatting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.baselines.localpr import local_pagerank_baseline
from repro.baselines.lpr2 import lpr2
from repro.baselines.sc import SCSettings, stochastic_complementation
from repro.core.approxrank import approxrank
from repro.experiments.context import ExperimentContext
from repro.generators.datasets import WebDataset
from repro.metrics.evaluation import EvaluationReport, evaluate_estimate
from repro.pagerank.result import SubgraphScores

#: Signature every ranker exposes to the harness.
Ranker = Callable[[np.ndarray], SubgraphScores]


@dataclass(frozen=True)
class AlgorithmRun:
    """One algorithm's result and evaluation on one subgraph."""

    name: str
    estimate: SubgraphScores
    report: EvaluationReport


def standard_rankers(
    context: ExperimentContext,
    dataset: WebDataset,
    include_sc: bool = True,
) -> dict[str, Ranker]:
    """The paper's algorithm suite with shared settings.

    Keys follow the paper's symbols: ``"local-pr"`` (■), ``"sc"`` (◆),
    ``"lpr2"`` (●), ``"approxrank"`` (▲).  ApproxRank uses the shared
    per-dataset preprocessor, mirroring the paper's multi-subgraph
    precomputation scenario; SC uses the configured expansion count.

    The dataset's transition matrix is prewarmed into the process-wide
    cache here, so every ranker in the suite (and every subgraph the
    table loops over) shares one CSR build instead of rebuilding it
    per call.
    """
    from repro.perf.cache import cached_transition_matrix

    graph = dataset.graph
    cached_transition_matrix(graph)
    settings = context.settings
    sc_settings = SCSettings(expansions=context.config.sc_expansions)
    rankers: dict[str, Ranker] = {
        "local-pr": lambda nodes: local_pagerank_baseline(
            graph, nodes, settings
        ),
        "lpr2": lambda nodes: lpr2(graph, nodes, settings),
        "approxrank": lambda nodes: approxrank(
            graph,
            nodes,
            settings,
            preprocessor=context.preprocessor(dataset),
        ),
    }
    if include_sc:
        rankers["sc"] = lambda nodes: stochastic_complementation(
            graph, nodes, settings, sc_settings
        )
    return rankers


def run_algorithms(
    context: ExperimentContext,
    dataset: WebDataset,
    local_nodes: np.ndarray,
    rankers: Mapping[str, Ranker] | None = None,
    algorithms: Iterable[str] | None = None,
) -> dict[str, AlgorithmRun]:
    """Run (a subset of) the suite on one subgraph and evaluate it.

    Parameters
    ----------
    context / dataset:
        Shared state; ground truth comes from
        ``context.ground_truth(dataset)``.
    local_nodes:
        Global page ids of the subgraph.
    rankers:
        Override the algorithm suite (defaults to
        :func:`standard_rankers`).
    algorithms:
        Restrict to these names, in this order.

    Returns
    -------
    dict mapping algorithm name to its :class:`AlgorithmRun`,
    insertion-ordered as executed.
    """
    truth = context.ground_truth(dataset)
    if rankers is None:
        rankers = standard_rankers(context, dataset)
    names = list(algorithms) if algorithms is not None else list(rankers)
    runs: dict[str, AlgorithmRun] = {}
    for name in names:
        if name not in rankers:
            raise KeyError(
                f"unknown algorithm {name!r}; available: {sorted(rankers)}"
            )
        estimate = rankers[name](local_nodes)
        report = evaluate_estimate(truth.scores, estimate)
        runs[name] = AlgorithmRun(
            name=name, estimate=estimate, report=report
        )
    return runs
