"""Unit tests for the local-PageRank baseline wrapper."""

import numpy as np

from repro.baselines.localpr import local_pagerank_baseline
from repro.pagerank.localrank import local_pagerank
from tests.conftest import random_digraph


class TestWrapper:
    def test_identical_to_local_pagerank(self, paper_settings):
        graph = random_digraph(120, seed=1)
        local = np.arange(20, 60)
        wrapped = local_pagerank_baseline(graph, local, paper_settings)
        direct = local_pagerank(graph, local, paper_settings)
        np.testing.assert_array_equal(wrapped.scores, direct.scores)
        np.testing.assert_array_equal(
            wrapped.local_nodes, direct.local_nodes
        )
        assert wrapped.method == "local-pagerank"

    def test_is_cheapest_algorithm(self, paper_settings):
        """Local PR touches only the induced subgraph -- it should be
        the cheapest of the suite (Tables V/VI shape)."""
        from repro.baselines.lpr2 import lpr2
        from repro.baselines.sc import SCSettings, stochastic_complementation

        graph = random_digraph(800, mean_degree=6.0, seed=2)
        local = np.arange(100)
        baseline = local_pagerank_baseline(graph, local, paper_settings)
        sc = stochastic_complementation(
            graph, local, paper_settings, SCSettings(expansions=10)
        )
        assert baseline.runtime_seconds < sc.runtime_seconds
