"""Per-replica circuit breakers for the shard router.

A replica that keeps failing should stop receiving traffic *before*
every request burns a timeout against it.  The breaker is the classic
three-state machine:

* **closed** — traffic flows; consecutive failures are counted.
* **open** — entered after ``failure_threshold`` consecutive failures;
  all traffic is refused until the reopen deadline passes.
* **half-open** — after the deadline one trial request is admitted;
  success closes the breaker, failure re-opens it (with the failure
  count already at threshold, so the next deadline is scheduled
  immediately).

The reopen delay carries **deterministic seeded jitter** — keyed by
``(seed, times-opened)`` exactly like :class:`RetryPolicy`'s backoff
jitter — so a fleet of breakers opened by the same outage does not
reopen in lockstep (thundering herd on the recovering replica), yet
every run of the same scenario replays the same schedule.  Reproducible
chaos tests depend on that determinism.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

__all__ = ["CircuitBreaker"]

#: State labels (and their gauge encoding: the router exports
#: ``repro_cluster_breaker_state`` with these values).
CLOSED, HALF_OPEN, OPEN = "closed", "half_open", "open"
_STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """One replica's admission gate (see module docstring).

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    reset_timeout:
        Base seconds to hold the breaker open before admitting a
        half-open trial.
    jitter:
        Fractional jitter (``0.1`` = ±10%) on the reset timeout,
        drawn deterministically per opening.
    seed:
        Seed of the jitter stream.
    clock:
        Injectable time source (monotonic by default) so tests can
        step through open→half-open without sleeping.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 0.5,
        jitter: float = 0.1,
        seed: int = 2009,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, "
                f"got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ValueError(
                f"reset_timeout must be positive, got {reset_timeout}"
            )
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self._threshold = int(failure_threshold)
        self._reset_timeout = float(reset_timeout)
        self._jitter = float(jitter)
        self._seed = int(seed)
        self._clock = clock
        self._state = CLOSED
        self._failures = 0
        self._opened_count = 0
        self._reopen_at = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state label (``closed``/``half_open``/``open``),
        *after* applying any due open→half-open transition."""
        self._maybe_half_open()
        return self._state

    @property
    def state_code(self) -> int:
        """Gauge encoding of :attr:`state` (0/1/2)."""
        return _STATE_CODES[self.state]

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    @property
    def times_opened(self) -> int:
        """How many times this breaker has tripped open."""
        return self._opened_count

    # ------------------------------------------------------------------
    # The state machine
    # ------------------------------------------------------------------

    def _reopen_delay(self) -> float:
        if not self._jitter:
            return self._reset_timeout
        rng = np.random.default_rng((self._seed, self._opened_count))
        return self._reset_timeout * (
            1.0 + self._jitter * float(rng.uniform(-1.0, 1.0))
        )

    def _maybe_half_open(self) -> None:
        if self._state == OPEN and self._clock() >= self._reopen_at:
            self._state = HALF_OPEN

    def allows(self) -> bool:
        """Whether a request may be sent to the replica right now.

        In half-open state this admits the trial request; callers must
        report its outcome via :meth:`record_success` /
        :meth:`record_failure` or the breaker stays half-open.
        """
        self._maybe_half_open()
        return self._state != OPEN

    def record_success(self) -> None:
        """A request succeeded: close the breaker, reset the count."""
        self._state = CLOSED
        self._failures = 0

    def record_failure(self) -> None:
        """A request failed: count it; trip open at the threshold.

        A failure in half-open state re-opens immediately — the trial
        request just proved the replica is still down.
        """
        self._maybe_half_open()
        self._failures += 1
        if self._state == HALF_OPEN or self._failures >= self._threshold:
            self._open()

    def _open(self) -> None:
        self._state = OPEN
        self._opened_count += 1
        self._reopen_at = self._clock() + self._reopen_delay()
