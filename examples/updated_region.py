"""Updated web region: incremental re-ranking without a global recompute.

The §I/§III update scenario, end-to-end through the :mod:`repro.updates`
API: the whole web was ranked yesterday; overnight one region changed.
We describe the change as a :class:`~repro.updates.GraphDelta`, let the
library derive the *affected region* (changed rows + a forward halo)
and splice an IdealRank re-rank of just that region into yesterday's
vector — then compare against a full recompute and against plain
ApproxRank with no score knowledge.

Run with::

    python examples/updated_region.py [num_pages]
"""

from __future__ import annotations

import sys
import time

import numpy as np

import repro


def main(num_pages: int = 20_000) -> None:
    print(f"generating web ({num_pages} pages)...")
    web = repro.make_au_like(num_pages=num_pages, seed=7)

    print("yesterday's ranking: global PageRank on the old graph...")
    old_truth = repro.global_pagerank(web.graph)

    # Overnight: one domain gains a batch of links and two new pages.
    region = repro.domain_subgraph(web, "csu.edu.au")
    from repro.updates.delta import random_region_delta

    base_delta = random_region_delta(
        web.graph, region, added=2 * region.size, removed=20, seed=42
    )
    n = web.graph.num_nodes
    delta = repro.GraphDelta(
        added_edges=base_delta.added_edges
        + ((n, int(region[0])), (int(region[1]), n + 1)),
        removed_edges=base_delta.removed_edges,
        new_pages=2,
    )
    updated = repro.apply_delta(web.graph, delta)
    print(
        f"update: {len(delta.added_edges)} links added, "
        f"{len(delta.removed_edges)} removed, "
        f"{delta.new_pages} pages crawled (all around csu.edu.au)"
    )

    # Strategy 1: full recompute (the expensive reference).
    start = time.perf_counter()
    new_truth = repro.global_pagerank(updated)
    recompute_seconds = time.perf_counter() - start

    # Strategy 2: incremental re-rank via the updates API.
    result = repro.incremental_rerank(
        web.graph, updated, old_truth.scores, delta=delta, hops=2
    )
    print(
        f"affected region: {result.region.size} pages "
        f"({100 * result.region.size / updated.num_nodes:.1f}% of the "
        "graph)"
    )

    # Strategy 3: ApproxRank on the region, no score knowledge at all.
    approx = repro.approxrank(updated, result.region)
    approx_spliced = np.full(
        updated.num_nodes, 1.0 / updated.num_nodes
    )
    approx_spliced[: web.graph.num_nodes] = old_truth.scores
    approx_spliced[approx.local_nodes] = approx.scores
    approx_spliced /= approx_spliced.sum()

    incremental_err = float(
        np.abs(result.scores - new_truth.scores).sum()
    )
    approx_err = float(
        np.abs(approx_spliced - new_truth.scores).sum()
    )

    print(f"\n{'strategy':38s} {'seconds':>8s} {'L1 vs fresh':>12s}")
    print("-" * 61)
    print(f"{'full global recompute (reference)':38s} "
          f"{recompute_seconds:8.3f} {'0':>12s}")
    print(f"{'incremental (IdealRank splice)':38s} "
          f"{result.runtime_seconds:8.3f} {incremental_err:12.5f}")
    print(f"{'ApproxRank splice (no knowledge)':38s} "
          f"{approx.runtime_seconds:8.3f} {approx_err:12.5f}")

    print(
        "\nThe incremental path re-ranks only the affected region and "
        "reuses\nyesterday's scores for everything else; because the "
        "update barely\nmoved external scores, it tracks the fresh "
        "ranking closely."
    )
    assert incremental_err <= approx_err + 1e-9


if __name__ == "__main__":
    pages = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    main(pages)
