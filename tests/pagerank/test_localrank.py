"""Unit tests for local PageRank."""

import numpy as np
import pytest

from repro.graph.builder import graph_from_edges
from repro.pagerank.globalrank import global_pagerank
from repro.pagerank.localrank import local_pagerank, pagerank_on_graph
from repro.generators.simple import two_cliques_bridge


class TestLocalPagerank:
    def test_result_aligned_with_sorted_nodes(self, messy_graph, paper_settings):
        result = local_pagerank(messy_graph, [30, 10, 20], paper_settings)
        assert result.local_nodes.tolist() == [10, 20, 30]
        assert result.scores.size == 3

    def test_scores_sum_to_one(self, messy_graph, paper_settings):
        result = local_pagerank(
            messy_graph, range(0, 50), paper_settings
        )
        assert result.scores.sum() == pytest.approx(1.0, abs=1e-9)

    def test_ignores_external_structure(self, tight_settings):
        # Two disconnected 3-cycles; local PR of {0,1,2} is the same
        # whether or not the other cycle exists.
        graph_a = graph_from_edges(
            6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
        )
        graph_b = graph_from_edges(
            6,
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (3, 0), (0, 3)],
        )
        a = local_pagerank(graph_a, [0, 1, 2], tight_settings)
        b = local_pagerank(graph_b, [0, 1, 2], tight_settings)
        # The induced subgraph over {0,1,2} is identical in both, so
        # local PR cannot see the difference -- that is its defect.
        assert a.scores == pytest.approx(b.scores, abs=1e-12)

    def test_whole_graph_equals_global(self, messy_graph, tight_settings):
        local = local_pagerank(
            messy_graph, range(messy_graph.num_nodes), tight_settings
        )
        global_result = global_pagerank(messy_graph, tight_settings)
        assert local.scores == pytest.approx(
            global_result.scores, abs=1e-10
        )

    def test_method_label(self, messy_graph, paper_settings):
        result = local_pagerank(messy_graph, [0, 1], paper_settings)
        assert result.method == "local-pagerank"

    def test_misjudges_bridged_clique(self, tight_settings):
        # In the bridged-cliques graph the bridge endpoint of clique A
        # receives external endorsement that local PR cannot see.
        graph = two_cliques_bridge(4)
        local_nodes = [0, 1, 2, 3]
        global_result = global_pagerank(graph, tight_settings)
        local = local_pagerank(graph, local_nodes, tight_settings)
        true_local = global_result.scores[local_nodes]
        # Globally the bridge node (3) is the top page of the clique...
        assert int(np.argmax(true_local)) == 3
        # ...while local PR sees a symmetric clique +1 out-edge and
        # ranks 3 no higher than its peers.
        assert local.scores[3] <= local.scores[0] + 1e-12


class TestPagerankOnGraph:
    def test_runs_on_arbitrary_graph(self, bridge_graph, paper_settings):
        result = pagerank_on_graph(bridge_graph, paper_settings)
        assert result.num_nodes == bridge_graph.num_nodes
        assert result.scores.sum() == pytest.approx(1.0, abs=1e-9)

    def test_personalization_supported(self, bridge_graph, tight_settings):
        n = bridge_graph.num_nodes
        personalization = np.zeros(n)
        personalization[0] = 1.0
        result = pagerank_on_graph(
            bridge_graph, tight_settings, personalization=personalization
        )
        uniform = pagerank_on_graph(bridge_graph, tight_settings)
        assert result.scores[0] > uniform.scores[0]
