"""Supplementary experiment: Best-First crawl value (§I's crawler).

Five crawlers explore the AU-like web from the same hub seed with the
same fetch budget, differing only in frontier ordering.  The table
reports cumulative true-PageRank mass at budget checkpoints — the
operational payoff of subgraph ranking for a focused crawler, which is
the paper's very first motivating application.

Expected shape: ApproxRank-guided Best-First gathers the most mass at
every checkpoint; local-PageRank guidance is second (it sees internal
structure but not the external pull); in-degree, BFS and random trail
in that order.
"""

from __future__ import annotations

from repro.crawler.bestfirst import CrawlSimulator
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import TableResult
from repro.subgraphs.bfs import default_bfs_seed

STRATEGY_ORDER = (
    "approxrank", "local-pagerank", "indegree", "bfs", "random",
)

CHECKPOINTS = (0.25, 0.5, 0.75, 1.0)


def run(context: ExperimentContext | None = None) -> TableResult:
    """Run the five-strategy crawl comparison."""
    context = context or ExperimentContext()
    dataset = context.au
    truth = context.ground_truth(dataset)
    seed_page = default_bfs_seed(dataset.graph)
    budget = max(dataset.graph.num_nodes // 20, 200)
    batch = max(budget // 12, 10)

    table = TableResult(
        experiment_id="crawl",
        title=(
            "Supplementary -- Best-First crawl value, "
            f"{budget} fetches from a hub seed (AU dataset)"
        ),
        headers=["strategy"]
        + [f"mass@{int(c * 100)}%" for c in CHECKPOINTS]
        + ["seconds"],
    )
    for strategy in STRATEGY_ORDER:
        simulator = CrawlSimulator(
            dataset.graph,
            [seed_page],
            strategy=strategy,
            batch_size=batch,
            settings=context.settings,
            rng_seed=context.config.seed,
            global_scores=truth.scores,
        )
        result = simulator.run(budget)
        curve = result.mass_curve
        cells = []
        for fraction in CHECKPOINTS:
            index = min(
                int(round(fraction * (len(curve) - 1))),
                len(curve) - 1,
            )
            cells.append(curve[index])
        table.add_row(
            strategy, *cells, result.runtime_seconds
        )
    table.notes.append(
        "Mass = cumulative true global PageRank of the crawled set "
        "(budget includes the seed)."
    )
    table.notes.append(
        "Expected shape: ApproxRank-guided Best-First gathers the "
        "most mass at every checkpoint; random is the floor."
    )
    return table


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
