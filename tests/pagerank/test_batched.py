"""Regression tests: batched multi-vector solver vs single solves.

The batched solver promises that every column of one ``(n, K)`` solve
agrees with the corresponding independent single-vector solve to
solver tolerance — on messy graphs *with dangling nodes*, across all
of its internal code paths (sparse-teleport scatter, dense fold,
custom dangling distributions, per-column dampings).
"""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError
from repro.pagerank.batched import (
    BatchedOutcome,
    batched_power_iteration,
    stack_teleports,
)
from repro.pagerank.solver import (
    PowerIterationSettings,
    power_iteration,
    uniform_teleport,
)
from repro.pagerank.transition import transition_matrix_transpose

from tests.conftest import random_digraph


def base_set_teleports(num_nodes: int, k: int, seed: int) -> np.ndarray:
    """K sparse base-set personalisations (ObjectRank style)."""
    rng = np.random.default_rng(seed)
    teleports = np.zeros((num_nodes, k), dtype=np.float64)
    base_size = max(3, num_nodes // 50)
    for column in range(k):
        base = rng.choice(num_nodes, size=base_size, replace=False)
        teleports[base, column] = 1.0 / base_size
    return teleports


@pytest.fixture
def dangling_setup():
    """Transition transpose + mask of a graph that has dangling nodes."""
    graph = random_digraph(300, dangling_fraction=0.25, seed=9)
    transition_t, dangling_mask = transition_matrix_transpose(graph)
    assert dangling_mask.any(), "fixture must exercise dangling pages"
    return transition_t, dangling_mask


class TestAgreementWithSingleSolver:
    def assert_columns_match(
        self, transition_t, dangling_mask, teleports, settings, batched,
        dangling_dists=None, dampings=None,
    ):
        for column in range(teleports.shape[1]):
            single_settings = settings
            if dampings is not None:
                single_settings = PowerIterationSettings(
                    damping=float(dampings[column]),
                    tolerance=settings.tolerance,
                    max_iterations=settings.max_iterations,
                )
            single = power_iteration(
                transition_t,
                teleport=teleports[:, column],
                dangling_mask=dangling_mask,
                dangling_dist=(
                    None if dangling_dists is None
                    else dangling_dists[:, column]
                ),
                settings=single_settings,
            )
            gap = np.abs(batched.scores[:, column] - single.scores).sum()
            assert gap < settings.tolerance, (
                f"column {column}: L1 gap {gap} vs tolerance"
            )

    def test_sparse_teleports_with_dangling(self, dangling_setup):
        transition_t, dangling_mask = dangling_setup
        teleports = base_set_teleports(transition_t.shape[0], 5, seed=1)
        settings = PowerIterationSettings()
        batched = batched_power_iteration(
            transition_t, teleports,
            dangling_mask=dangling_mask, settings=settings,
        )
        assert batched.converged.all()
        self.assert_columns_match(
            transition_t, dangling_mask, teleports, settings, batched
        )

    def test_dense_teleports_with_dangling(self, dangling_setup):
        # Dense columns take the broadcast (non-scatter) fold path.
        transition_t, dangling_mask = dangling_setup
        n = transition_t.shape[0]
        rng = np.random.default_rng(3)
        teleports = rng.random((n, 4)) + 0.05
        teleports /= teleports.sum(axis=0)
        settings = PowerIterationSettings()
        batched = batched_power_iteration(
            transition_t, teleports,
            dangling_mask=dangling_mask, settings=settings,
        )
        self.assert_columns_match(
            transition_t, dangling_mask, teleports, settings, batched
        )

    def test_custom_dangling_dists(self, dangling_setup):
        transition_t, dangling_mask = dangling_setup
        n = transition_t.shape[0]
        teleports = base_set_teleports(n, 3, seed=5)
        dists = np.repeat(uniform_teleport(n)[:, np.newaxis], 3, axis=1)
        settings = PowerIterationSettings()
        batched = batched_power_iteration(
            transition_t, teleports,
            dangling_mask=dangling_mask,
            dangling_dists=dists, settings=settings,
        )
        self.assert_columns_match(
            transition_t, dangling_mask, teleports, settings, batched,
            dangling_dists=dists,
        )

    def test_per_column_dampings(self, dangling_setup):
        transition_t, dangling_mask = dangling_setup
        n = transition_t.shape[0]
        teleports = base_set_teleports(n, 4, seed=7)
        dampings = np.array([0.5, 0.7, 0.85, 0.95])
        settings = PowerIterationSettings()
        batched = batched_power_iteration(
            transition_t, teleports,
            dangling_mask=dangling_mask,
            settings=settings, dampings=dampings,
        )
        self.assert_columns_match(
            transition_t, dangling_mask, teleports, settings, batched,
            dampings=dampings,
        )

    def test_tight_tolerance_agreement(self, dangling_setup):
        # At 1e-12 both solvers must land on the same fixed point.
        transition_t, dangling_mask = dangling_setup
        teleports = base_set_teleports(transition_t.shape[0], 3, seed=11)
        settings = PowerIterationSettings(
            tolerance=1e-12, max_iterations=20_000
        )
        batched = batched_power_iteration(
            transition_t, teleports,
            dangling_mask=dangling_mask, settings=settings,
        )
        self.assert_columns_match(
            transition_t, dangling_mask, teleports, settings, batched
        )


class TestPerColumnConvergence:
    def test_iterations_vary_with_damping(self, dangling_setup):
        # Lower damping converges faster; per-column accounting must
        # reflect that instead of reporting one shared count.
        transition_t, dangling_mask = dangling_setup
        teleports = base_set_teleports(transition_t.shape[0], 2, seed=13)
        batched = batched_power_iteration(
            transition_t, teleports,
            dangling_mask=dangling_mask,
            dampings=np.array([0.3, 0.95]),
        )
        assert batched.converged.all()
        assert batched.iterations[0] < batched.iterations[1]
        assert batched.sweeps == batched.iterations.max()

    def test_frozen_columns_are_pinned(self, dangling_setup):
        # A converged column's scores must be its scores at the sweep
        # it converged — later sweeps for slower columns cannot move it.
        transition_t, dangling_mask = dangling_setup
        teleports = base_set_teleports(transition_t.shape[0], 2, seed=17)
        dampings = np.array([0.3, 0.95])
        both = batched_power_iteration(
            transition_t, teleports,
            dangling_mask=dangling_mask, dampings=dampings,
        )
        alone = batched_power_iteration(
            transition_t, teleports[:, :1],
            dangling_mask=dangling_mask, dampings=dampings[:1],
        )
        assert both.iterations[0] == alone.iterations[0]
        # Not bit-identical: the shared drift-triggered renormalisation
        # may fire for the slow column's sake, rescaling the fast
        # column by 1 ± O(1e-16) before it freezes.
        np.testing.assert_allclose(
            both.scores[:, 0], alone.scores[:, 0], rtol=0, atol=1e-12
        )

    def test_residuals_below_tolerance(self, dangling_setup):
        transition_t, dangling_mask = dangling_setup
        teleports = base_set_teleports(transition_t.shape[0], 4, seed=19)
        settings = PowerIterationSettings()
        batched = batched_power_iteration(
            transition_t, teleports,
            dangling_mask=dangling_mask, settings=settings,
        )
        assert (batched.residuals < settings.tolerance).all()

    def test_columns_sum_to_one(self, dangling_setup):
        transition_t, dangling_mask = dangling_setup
        teleports = base_set_teleports(transition_t.shape[0], 4, seed=23)
        batched = batched_power_iteration(
            transition_t, teleports, dangling_mask=dangling_mask
        )
        np.testing.assert_allclose(
            batched.scores.sum(axis=0), np.ones(4), atol=1e-9
        )

    def test_divergence_raises_with_column_count(self, dangling_setup):
        transition_t, dangling_mask = dangling_setup
        teleports = base_set_teleports(transition_t.shape[0], 3, seed=29)
        with pytest.raises(ConvergenceError, match="of 3 columns"):
            batched_power_iteration(
                transition_t, teleports,
                dangling_mask=dangling_mask,
                settings=PowerIterationSettings(
                    tolerance=1e-12, max_iterations=3,
                    raise_on_divergence=True,
                ),
            )

    def test_divergence_tolerated_when_configured(self, dangling_setup):
        transition_t, dangling_mask = dangling_setup
        teleports = base_set_teleports(transition_t.shape[0], 2, seed=31)
        batched = batched_power_iteration(
            transition_t, teleports,
            dangling_mask=dangling_mask,
            settings=PowerIterationSettings(
                tolerance=1e-12, max_iterations=3,
                raise_on_divergence=False,
            ),
        )
        assert not batched.converged.any()
        assert batched.sweeps == 3


class TestOutcomeApi:
    def test_column_view_matches(self, dangling_setup):
        transition_t, dangling_mask = dangling_setup
        teleports = base_set_teleports(transition_t.shape[0], 3, seed=37)
        batched = batched_power_iteration(
            transition_t, teleports, dangling_mask=dangling_mask
        )
        assert batched.num_columns == 3
        view = batched.column(1)
        np.testing.assert_array_equal(view.scores, batched.scores[:, 1])
        assert view.iterations == batched.iterations[1]
        assert view.converged
        assert view.runtime_seconds == pytest.approx(
            batched.runtime_seconds / 3
        )

    def test_column_view_bounds(self, dangling_setup):
        transition_t, dangling_mask = dangling_setup
        teleports = base_set_teleports(transition_t.shape[0], 2, seed=41)
        batched = batched_power_iteration(
            transition_t, teleports, dangling_mask=dangling_mask
        )
        with pytest.raises(IndexError):
            batched.column(2)

    def test_stack_teleports_round_trip(self):
        vectors = [uniform_teleport(6), np.eye(6)[2]]
        block = stack_teleports(vectors, 6)
        assert block.shape == (6, 2)
        np.testing.assert_array_equal(block[:, 1], np.eye(6)[2])

    def test_stack_teleports_rejects_empty_and_misshaped(self):
        with pytest.raises(ValueError, match="at least one"):
            stack_teleports([], 4)
        with pytest.raises(ValueError, match="shape"):
            stack_teleports([np.ones(3) / 3], 4)


class TestValidation:
    def test_rejects_non_square_matrix(self, dangling_setup):
        transition_t, _ = dangling_setup
        rect = transition_t[:100]
        with pytest.raises(ValueError, match="square"):
            batched_power_iteration(rect, np.ones((100, 1)))

    def test_rejects_wrong_teleport_shape(self, dangling_setup):
        transition_t, dangling_mask = dangling_setup
        with pytest.raises(ValueError, match="teleports"):
            batched_power_iteration(
                transition_t, np.ones((7, 2)) / 7,
                dangling_mask=dangling_mask,
            )

    def test_rejects_unnormalised_columns(self, dangling_setup):
        transition_t, dangling_mask = dangling_setup
        n = transition_t.shape[0]
        bad = np.full((n, 2), 1.0 / n)
        bad[:, 1] *= 2
        with pytest.raises(ValueError, match="sum to 1"):
            batched_power_iteration(
                transition_t, bad, dangling_mask=dangling_mask
            )

    def test_rejects_negative_teleports(self, dangling_setup):
        transition_t, dangling_mask = dangling_setup
        n = transition_t.shape[0]
        bad = np.full((n, 1), 1.0 / n)
        bad[0, 0] = -bad[0, 0]
        bad[1, 0] += 2.0 / n
        with pytest.raises(ValueError, match="non-negative"):
            batched_power_iteration(
                transition_t, bad, dangling_mask=dangling_mask
            )

    def test_rejects_bad_dampings(self, dangling_setup):
        transition_t, dangling_mask = dangling_setup
        n = transition_t.shape[0]
        teleports = np.full((n, 2), 1.0 / n)
        with pytest.raises(ValueError, match="damping"):
            batched_power_iteration(
                transition_t, teleports,
                dangling_mask=dangling_mask,
                dampings=np.array([0.85, 1.0]),
            )
        with pytest.raises(ValueError, match="shape"):
            batched_power_iteration(
                transition_t, teleports,
                dangling_mask=dangling_mask,
                dampings=np.array([0.85]),
            )

    def test_rejects_wrong_dangling_mask_shape(self, dangling_setup):
        transition_t, _ = dangling_setup
        n = transition_t.shape[0]
        with pytest.raises(ValueError, match="dangling_mask"):
            batched_power_iteration(
                transition_t, np.full((n, 1), 1.0 / n),
                dangling_mask=np.zeros(n - 1, dtype=bool),
            )

    def test_initials_normalised_and_validated(self, dangling_setup):
        transition_t, dangling_mask = dangling_setup
        n = transition_t.shape[0]
        teleports = base_set_teleports(n, 2, seed=43)
        initials = np.full((n, 2), 3.0)
        batched = batched_power_iteration(
            transition_t, teleports,
            dangling_mask=dangling_mask, initials=initials,
        )
        assert batched.converged.all()
        with pytest.raises(ValueError, match="initials"):
            batched_power_iteration(
                transition_t, teleports,
                dangling_mask=dangling_mask,
                initials=np.full((n, 3), 1.0),
            )
