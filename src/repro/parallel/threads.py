"""Thread-parallel multi-subgraph ranking for GIL-free backends.

:func:`repro.parallel.rank_many` pays for its parallelism in process
machinery: shared-memory publication, pickled task specs, per-worker
re-attachment and a pool spawn per batch.  On small-to-medium batches
that overhead dominates (BENCH_parallel.json measured the process pool
*slower* than serial on this box).  When the solver backend releases
the GIL — the numba backend's kernels are compiled with
``nogil=True`` — none of that machinery is needed: plain threads run
whole solves concurrently while sharing the graph, the transition
cache and the ApproxRank global pass **zero-copy**, because they live
in one address space.

:func:`rank_many_threaded` is that engine.  It reuses the executor's
task normalisation and solve code (:func:`~repro.parallel.executor._solve_one`
— the same functions the serial and process paths run, so scores for
a given backend agree bit for bit with the serial path), a single
shared :class:`~repro.core.precompute.ApproxRankPreprocessor` (its
caches are lock-guarded), and returns results in input order.

On the reference backend threads merely time-slice under the GIL
(scipy's kernels hold it); the call still works — results are
identical — but expect no speedup.  The backend benchmark records the
measured scaling for both (``BENCH_backend.json``).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

from repro.baselines.sc import SCSettings
from repro.core.precompute import ApproxRankPreprocessor
from repro.exceptions import ParallelError
from repro.graph.digraph import CSRGraph
from repro.obs.tracing import span
from repro.pagerank.backends import resolve_backend, use_backend
from repro.pagerank.result import SubgraphScores
from repro.pagerank.solver import PowerIterationSettings
from repro.parallel.executor import (
    PARALLEL_ALGORITHMS,
    _named_subgraphs,
    _solve_one,
    _TaskSpec,
)

__all__ = ["rank_many_threaded"]


def rank_many_threaded(
    graph: CSRGraph,
    subgraphs,
    algorithm: str = "approxrank",
    settings: PowerIterationSettings | None = None,
    threads: int | None = None,
    sc_settings: SCSettings | None = None,
    backend=None,
) -> list[SubgraphScores]:
    """Rank K subgraphs concurrently on threads of one process.

    Parameters
    ----------
    graph, subgraphs, algorithm, settings, sc_settings:
        As in :func:`repro.parallel.rank_many`.
    threads:
        Thread count; ``None`` means ``os.cpu_count()``, and the
        count is capped at the number of tasks.  ``<=1`` solves
        serially (same code path, no pool).
    backend:
        Solver backend for every solve (instance, spec string, or
        ``None`` for the process default).  Thread parallelism only
        pays off on backends whose kernels release the GIL (numba).

    Returns
    -------
    list[SubgraphScores]
        One result per subgraph, **in input order**.

    Raises
    ------
    ParallelError
        Unknown algorithm, or a task failed (the message names the
        subgraph).
    """
    if algorithm not in PARALLEL_ALGORITHMS:
        raise ParallelError(
            f"unknown algorithm {algorithm!r}; "
            f"available: {PARALLEL_ALGORITHMS}"
        )
    named = _named_subgraphs(graph, subgraphs)
    tasks = [
        _TaskSpec(index=i, name=name, nodes=nodes, algorithm=algorithm)
        for i, (name, nodes) in enumerate(named)
    ]
    if not tasks:
        return []
    resolved = resolve_backend(backend)
    effective = threads if threads is not None else (os.cpu_count() or 1)
    effective = max(1, min(int(effective), len(tasks)))

    # One shared global pass: the preprocessor's transition/block
    # caches are lock-guarded, and the prepared (cast/relabeled) matrix
    # is memoised inside the backend, so the first solve builds each
    # artifact and every other thread reuses it zero-copy.
    preprocessor = (
        ApproxRankPreprocessor(graph) if algorithm == "approxrank" else None
    )

    def solve(task: _TaskSpec) -> SubgraphScores:
        try:
            return _solve_one(
                graph, task, settings, sc_settings, preprocessor
            )
        except ParallelError:
            raise
        except Exception as exc:
            raise ParallelError(
                f"subgraph {task.name!r} ({task.algorithm}) failed: "
                f"{type(exc).__name__}: {exc}",
                subgraph=task.name,
                algorithm=task.algorithm,
                error_type=type(exc).__name__,
            ) from exc

    # The backend choice rides on the process default for the duration
    # so it reaches the solver through the unchanged algorithm
    # signatures; `use_backend` restores the previous default on exit.
    with use_backend(resolved):
        with span("parallel:threads") as s:
            s.add_counter("tasks", len(tasks))
            s.add_counter("threads", effective)
            if effective <= 1:
                return [solve(task) for task in tasks]
            with ThreadPoolExecutor(max_workers=effective) as pool:
                # map() preserves input order and re-raises the first
                # task exception in that order.
                return list(pool.map(solve, tasks))
