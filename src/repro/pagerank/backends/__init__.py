"""Pluggable compiled solver backends.

Every power-iteration variant in this repo (plain, extrapolated,
adaptive, batched) funnels through the same damped sweep; this package
makes that sweep *pluggable* so the constant factor of the whole
experiment/serving stack can be swapped without touching any caller:

* :class:`SolverBackend` — the protocol: prepare a transition matrix
  (dtype cast, optional cache-aware relabeling, zero-copy index
  sharing), then run fused kernel operations over it (damped step with
  residual, mat-vec, dense mat-mat).
* :mod:`repro.pagerank.backends.reference` — the default backend: the
  scipy ``_sparsetools`` in-place kernels of
  :mod:`repro.pagerank.kernels`.  Always available; float64 results
  are bit-identical to the pre-backend code.
* :mod:`repro.pagerank.backends.numba_backend` — optional compiled
  backend: ``@njit(parallel=True, nogil=True, cache=True)`` fused
  sweeps that release the GIL, making cheap *thread* parallelism
  viable (:func:`repro.parallel.rank_many_threaded`).  numba is an
  optional extra (``pip install repro[numba]``); without it the
  backend reports unavailable and ``auto`` falls back to the
  reference backend — visibly, via the
  ``repro_solver_backend_info`` gauge.

Both backends support a **float32 score mode**: the big arrays (matrix
values, iterates, scratch) are float32 — half the memory traffic of
the bandwidth-bound sweep — while public results are returned as
float64 in original node order.  Reduced precision raises the
convergence floor: the L1 residual of a float32 iterate carries
roundoff of roughly ``sqrt(n)·eps32`` (signed per-component errors,
random-walk accumulation), so the effective tolerance is clamped to
:meth:`SolverBackend.tolerance_floor` and the score error against a
float64 solve is bounded by the two residuals through the standard
damped-contraction argument (DESIGN.md §11):

    ‖x32 − x64‖₁ ≤ (tol32_eff + tol64) / (1 − damping)

:func:`float32_l1_bound` is that documented bound; the benchmark gate
(``benchmarks/bench_backends.py``) and the tier-1 agreement tests
enforce it, alongside the ≤1e-12 L1 agreement required of the numba
float64 backend.

Selection
---------
``resolve_backend(None)`` returns the process default, controlled by
``set_default_backend`` / :func:`use_backend`, the ``REPRO_BACKEND``
environment variable (``auto`` | ``reference`` | ``numba``, with an
optional ``:float32`` / ``:float64`` suffix) and ``REPRO_DTYPE``.  The
CLI's ``--backend`` / ``--float32`` flags set the same default, so the
choice flows through ``run_all``, the benchmarks and the serving tier
without signature changes anywhere.
"""

from __future__ import annotations

import abc
import os
import threading
import weakref
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, ClassVar, Iterator

import numpy as np
from scipy import sparse

from repro.graph.relabel import (
    degree_order_permutation,
    inverse_permutation,
    permute_csr,
)
from repro.obs.metrics import REGISTRY

__all__ = [
    "BackendUnavailableError",
    "PreparedSystem",
    "SolverBackend",
    "available_backends",
    "backend_info",
    "default_backend",
    "float32_l1_bound",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]

#: Names accepted by :func:`resolve_backend` besides concrete backends.
AUTO = "auto"

#: Layout modes a backend's ``prepare`` understands.
_LAYOUTS = ("auto", "none", "degree")


class BackendUnavailableError(RuntimeError):
    """Requested a backend whose dependency is not installed."""


def float32_l1_bound(
    size: int, tolerance: float, damping: float
) -> float:
    """Documented L1 error bound of a float32 solve vs float64.

    Both iterates sit within their residual of the same fixed point;
    the damped update is a ``damping``-contraction in L1, so each is
    within ``residual / (1 − damping)`` of it (DESIGN.md §11).  The
    float32 residual cannot fall below its roundoff floor, hence the
    clamp.
    """
    tol32 = max(tolerance, _f32_floor(size))
    return (tol32 + tolerance) / (1.0 - damping)


def _f32_floor(size: int) -> float:
    """Convergence floor of a float32 L1 residual over ``size`` entries.

    Each component of the residual carries roundoff of a few ulps of
    the component magnitude (~1/size for a probability vector);
    signed errors accumulate like a random walk, giving a floor of
    roughly ``sqrt(size)·eps32``.  The factor 8 is measured headroom
    (see BENCH_backend.json) so healthy solves declare convergence
    instead of stalling at the cap.
    """
    eps = float(np.finfo(np.float32).eps)
    return 8.0 * float(np.sqrt(max(size, 1))) * eps


@dataclass(frozen=True)
class PreparedSystem:
    """A transition matrix made ready for one backend's kernels.

    ``matrix`` is ``A^T`` in the backend's dtype and (optionally) the
    cache-aware relabeled domain.  When no transformation is needed the
    original matrix object passes through untouched — and when only the
    dtype changes, the index arrays (``indices``/``indptr``) are
    *shared* with the source matrix, so preparing a float32 view of a
    cached transpose costs one O(nnz) value cast and zero index copies.

    ``perm`` (``perm[new_id] = old_id``) is ``None`` when the layout is
    unchanged; callers map node-indexed vectors through
    :meth:`to_backend` / :meth:`from_backend` and never see relabeled
    ids.
    """

    matrix: sparse.csr_matrix
    dtype: np.dtype
    perm: np.ndarray | None = None
    inv: np.ndarray | None = None

    @property
    def size(self) -> int:
        return self.matrix.shape[0]

    @property
    def identity(self) -> bool:
        """True when no cast and no relabel happened (zero-copy)."""
        return self.perm is None and self.dtype == np.float64

    def to_backend(self, vector: np.ndarray) -> np.ndarray:
        """Cast + permute a float64 node vector into kernel domain."""
        if self.perm is not None:
            vector = vector[self.perm]
        if vector.dtype != self.dtype:
            vector = vector.astype(self.dtype)
        return vector

    def from_backend(self, vector: np.ndarray) -> np.ndarray:
        """Restore a kernel-domain vector to float64, original order."""
        if vector.dtype != np.float64:
            vector = vector.astype(np.float64)
        if self.perm is not None:
            restored = np.empty_like(vector)
            restored[self.perm] = vector
            vector = restored
        return vector

    def to_backend_block(self, block: np.ndarray) -> np.ndarray:
        """Row-permute + cast an ``(n, K)`` block into kernel domain."""
        if self.perm is not None:
            block = block[self.perm]
        return np.ascontiguousarray(block, dtype=self.dtype)

    def from_backend_block(self, block: np.ndarray) -> np.ndarray:
        """Restore an ``(n, K)`` block to float64, original row order."""
        if block.dtype != np.float64:
            block = block.astype(np.float64)
        if self.perm is not None:
            restored = np.empty_like(block)
            restored[self.perm] = block
            block = restored
        return block

    def map_indices(self, indices: np.ndarray) -> np.ndarray:
        """Relabel node indices (e.g. dangling ids) into kernel domain.

        Returned sorted so gathers walk the hot end of the iterate in
        ascending order.
        """
        if self.inv is None or not indices.size:
            return indices
        return np.sort(self.inv[indices])


class SolverBackend(abc.ABC):
    """One implementation of the damped power-iteration kernels.

    A backend instance is identified by ``(name, dtype, layout)`` and
    is stateless apart from a per-matrix :class:`PreparedSystem` cache
    (identity-keyed, weakref-evicted, like
    :class:`repro.perf.cache.TransitionCache`).

    Subclasses implement the four kernel operations; everything else —
    preparation, dtype policy, tolerance floors — is shared here.
    """

    #: Registry name ("reference", "numba").
    name: ClassVar[str] = "abstract"

    def __init__(self, dtype: Any = np.float64, layout: str = "auto"):
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(
                f"solver backends support float64/float32, got {dtype}"
            )
        if layout not in _LAYOUTS:
            raise ValueError(
                f"layout must be one of {_LAYOUTS}, got {layout!r}"
            )
        self.dtype = dtype
        self.layout = self._resolve_layout(layout)
        self._prepared: dict[int, tuple[Any, PreparedSystem]] = {}
        self._lock = threading.Lock()

    # -- availability / policy ----------------------------------------

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend's dependencies are importable."""
        return True

    def _resolve_layout(self, layout: str) -> str:
        """``auto`` layout policy; subclasses may override.

        The reference float64 backend keeps the original layout so its
        results stay bit-identical to the pre-backend library; compiled
        and reduced-precision modes (already not bit-identical) take
        the cache win by default.
        """
        if layout != "auto":
            return layout
        return "none" if np.dtype(self.dtype) == np.float64 else "degree"

    def tolerance_floor(self, size: int) -> float:
        """Lowest meaningful convergence tolerance at this precision."""
        if self.dtype == np.dtype(np.float32):
            return _f32_floor(size)
        return 0.0

    def effective_tolerance(self, tolerance: float, size: int) -> float:
        """Requested tolerance clamped to the precision floor."""
        return max(float(tolerance), self.tolerance_floor(size))

    def drift_tolerance(self) -> float:
        """Column-sum drift that triggers renormalisation (batched)."""
        return 1e-12 if self.dtype == np.dtype(np.float64) else 1e-5

    def describe(self) -> str:
        return f"{self.name}/{np.dtype(self.dtype).name}"

    # -- preparation ---------------------------------------------------

    def prepare(self, transition_t: sparse.csr_matrix) -> PreparedSystem:
        """Cast/relabel ``A^T`` for this backend, memoised per matrix.

        Keyed on matrix identity (transition matrices are derived from
        immutable graphs and themselves never mutated); entries hold a
        weak reference to the source matrix and die with it.
        """
        key = id(transition_t)
        with self._lock:
            hit = self._prepared.get(key)
            if hit is not None:
                ref, prepared = hit
                if ref() is transition_t:
                    return prepared
        prepared = self._build_prepared(transition_t)
        if prepared.identity and prepared.matrix is transition_t:
            return prepared  # nothing to cache: zero-copy passthrough
        with self._lock:
            try:
                ref = weakref.ref(
                    transition_t,
                    lambda _ref, _key=key: self._prepared.pop(_key, None),
                )
            except TypeError:  # pragma: no cover - unweakrefable matrix
                ref = lambda: transition_t  # noqa: E731
            self._prepared[key] = (ref, prepared)
        return prepared

    def _build_prepared(
        self, transition_t: sparse.csr_matrix
    ) -> PreparedSystem:
        perm = inv = None
        matrix = transition_t
        if self.layout == "degree":
            perm = degree_order_permutation(matrix)
            if np.array_equal(perm, np.arange(perm.size)):
                perm = None  # already degree-ordered; skip the copy
            else:
                inv = inverse_permutation(perm)
                matrix = permute_csr(matrix, perm)
        if matrix.dtype != self.dtype:
            if matrix is transition_t:
                # Cast values only; share the index arrays zero-copy
                # (the in-place transpose-reuse half of the layout
                # work: one O(nnz) cast, no O(nnz) index copies).
                matrix = sparse.csr_matrix(
                    (
                        matrix.data.astype(self.dtype),
                        matrix.indices,
                        matrix.indptr,
                    ),
                    shape=matrix.shape,
                    copy=False,
                )
            else:
                matrix.data = matrix.data.astype(self.dtype)
        return PreparedSystem(
            matrix=matrix, dtype=np.dtype(self.dtype), perm=perm, inv=inv
        )

    # -- kernel operations (implemented by subclasses) -----------------

    @abc.abstractmethod
    def step(
        self,
        transition_t: sparse.csr_matrix,
        x: np.ndarray,
        out: np.ndarray,
        *,
        damping: float,
        base: np.ndarray,
        dangling_indices: np.ndarray,
        dangling_dist: np.ndarray,
        scratch: np.ndarray,
        workspace=None,
    ) -> float:
        """One fused damped step ``x → out``; returns the L1 residual.

        ``out`` ends normalised to sum 1; ``scratch`` is clobbered.
        """

    @abc.abstractmethod
    def matvec_into(
        self, matrix: sparse.csr_matrix, x: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """``out[:] = matrix @ x`` without allocating the result."""

    @abc.abstractmethod
    def matmat_into(
        self,
        matrix: sparse.csr_matrix,
        block: np.ndarray,
        out: np.ndarray,
    ) -> np.ndarray:
        """``out[:] = matrix @ block`` for a C-contiguous dense block."""

    @abc.abstractmethod
    def matmat_accumulate(
        self,
        matrix: sparse.csr_matrix,
        block: np.ndarray,
        out: np.ndarray,
    ) -> np.ndarray:
        """``out += matrix @ block`` for a C-contiguous dense block."""


# ----------------------------------------------------------------------
# Registry and selection
# ----------------------------------------------------------------------

_REGISTRY: dict[str, type[SolverBackend]] = {}
_INSTANCES: dict[tuple[str, str, str], SolverBackend] = {}
_instances_lock = threading.Lock()

_default_lock = threading.Lock()
_default_spec: str | None = None  # None → read the environment
_default_backend: SolverBackend | None = None


def register_backend(cls: type[SolverBackend]) -> type[SolverBackend]:
    """Class decorator adding a backend to the registry."""
    _REGISTRY[cls.name] = cls
    return cls


def available_backends() -> dict[str, bool]:
    """Registered backend names → availability."""
    return {
        name: cls.is_available() for name, cls in sorted(_REGISTRY.items())
    }


def get_backend(
    name: str, dtype: Any = np.float64, layout: str = "auto"
) -> SolverBackend:
    """A (cached) backend instance by name.

    Raises
    ------
    ValueError
        Unknown backend name.
    BackendUnavailableError
        The backend's dependency (numba) is not installed.
    """
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(
            f"unknown solver backend {name!r}; "
            f"registered: {sorted(_REGISTRY)}"
        )
    if not cls.is_available():
        raise BackendUnavailableError(
            f"solver backend {name!r} is not available in this "
            f"environment (install the optional extra: "
            f"pip install repro[{name}])"
        )
    key = (name, np.dtype(dtype).name, layout)
    with _instances_lock:
        instance = _INSTANCES.get(key)
        if instance is None:
            instance = cls(dtype=dtype, layout=layout)
            _INSTANCES[key] = instance
    return instance


def _parse_spec(spec: str) -> tuple[str, np.dtype]:
    """Parse ``"numba"`` / ``"reference:float32"`` style specs."""
    name, _, dtype_part = spec.strip().partition(":")
    name = name or AUTO
    if dtype_part:
        if dtype_part not in ("float32", "float64"):
            raise ValueError(
                f"backend dtype must be float32/float64, "
                f"got {dtype_part!r} in {spec!r}"
            )
        dtype = np.dtype(dtype_part)
    else:
        dtype = np.dtype(os.environ.get("REPRO_DTYPE", "float64"))
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(
                f"REPRO_DTYPE must be float32/float64, got {dtype}"
            )
    return name, dtype


def _resolve_spec(spec: str) -> SolverBackend:
    name, dtype = _parse_spec(spec)
    if name == AUTO:
        numba_cls = _REGISTRY.get("numba")
        name = (
            "numba"
            if numba_cls is not None and numba_cls.is_available()
            else "reference"
        )
    return get_backend(name, dtype=dtype)


def resolve_backend(
    backend: "SolverBackend | str | None" = None,
) -> SolverBackend:
    """Resolve a backend argument to a concrete instance.

    ``None`` → the process default; a string → parsed spec; an
    instance → itself.  Every resolution republishes the
    ``repro_solver_backend_info`` gauge so the active backend is
    always visible in observability snapshots.
    """
    if isinstance(backend, SolverBackend):
        return backend
    if isinstance(backend, str):
        resolved = _resolve_spec(backend)
        _publish_backend_info(resolved)
        return resolved
    return default_backend()


def default_backend() -> SolverBackend:
    """The process-default backend (env-configured, lazily resolved)."""
    global _default_backend
    with _default_lock:
        if _default_backend is None:
            spec = (
                _default_spec
                if _default_spec is not None
                else os.environ.get("REPRO_BACKEND", AUTO)
            )
            _default_backend = _resolve_spec(spec)
            _publish_backend_info(_default_backend)
        return _default_backend


def set_default_backend(spec: "SolverBackend | str | None") -> None:
    """Set the process-default backend.

    ``None`` resets to environment-driven resolution (``REPRO_BACKEND``
    / ``REPRO_DTYPE``, default ``auto``).
    """
    global _default_spec, _default_backend
    with _default_lock:
        if spec is None:
            _default_spec = None
            _default_backend = None
            return
        if isinstance(spec, SolverBackend):
            _default_spec = spec.describe()
            _default_backend = spec
        else:
            _default_spec = spec
            _default_backend = _resolve_spec(spec)
        _publish_backend_info(_default_backend)


@contextmanager
def use_backend(spec: "SolverBackend | str | None") -> Iterator[SolverBackend]:
    """Temporarily switch the process-default backend (tests, benches)."""
    global _default_spec, _default_backend
    with _default_lock:
        saved = (_default_spec, _default_backend)
    set_default_backend(spec)
    try:
        yield default_backend()
    finally:
        with _default_lock:
            _default_spec, _default_backend = saved
        if saved[1] is not None:
            _publish_backend_info(saved[1])


def backend_info(
    backend: "SolverBackend | None" = None,
) -> dict[str, Any]:
    """Structured description of the active (or given) backend.

    The payload served by ``/healthz`` and rendered in the obs-report
    Solver section.
    """
    from repro.pagerank.backends import numba_backend as _nb

    backend = backend if backend is not None else default_backend()
    return {
        "backend": backend.name,
        "dtype": np.dtype(backend.dtype).name,
        "layout": backend.layout,
        "numba_available": _nb.NUMBA_AVAILABLE,
        "numba_version": _nb.NUMBA_VERSION,
    }


_last_info_labels: "dict[str, str] | None" = None


def _publish_backend_info(backend: SolverBackend) -> None:
    """Publish the active backend as an info-style gauge (value 1).

    Exactly one label set carries value 1 at any time: switching
    backends zeroes the previous label set first, so dashboards and
    the obs-report can read "the" active backend off the gauge.
    """
    global _last_info_labels
    from repro.pagerank.backends import numba_backend as _nb

    labels = {
        "backend": backend.name,
        "dtype": np.dtype(backend.dtype).name,
        "layout": backend.layout,
        "numba": _nb.NUMBA_VERSION or "absent",
    }
    help_text = (
        "Active solver backend (info gauge: value 1 on the active "
        "label set)"
    )
    if _last_info_labels is not None and _last_info_labels != labels:
        REGISTRY.gauge(
            "repro_solver_backend_info", help_text, **_last_info_labels
        ).set(0.0)
    REGISTRY.gauge(
        "repro_solver_backend_info", help_text, **labels
    ).set(1.0)
    _last_info_labels = labels


# Import concrete backends last so their @register_backend decorators
# run against the populated module namespace.
from repro.pagerank.backends.reference import ReferenceBackend  # noqa: E402
from repro.pagerank.backends.numba_backend import NumbaBackend  # noqa: E402

__all__ += ["NumbaBackend", "ReferenceBackend"]
