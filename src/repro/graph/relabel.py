"""Cache-aware CSR node relabeling (degree ordering).

Sparse power iteration is memory-bound on two streams: the CSR arrays
of ``A^T`` (read sequentially — already optimal) and the iterate ``x``
(read through ``indices`` — a random gather).  With web-like degree
distributions most gathered entries belong to a small set of
high-in-degree hub pages; if those hubs are scattered across the id
space every row's gather touches cold cache lines.

Relabeling nodes in descending in-degree order packs the hot entries
of ``x`` into the first few cache lines, so the gather's working set
for the common case collapses from ``8n`` bytes to a few KiB.  The
permutation is a pure *layout* change: ``P A^T P^T`` describes the
same graph, and solving in the relabeled domain then scattering the
result back through the inverse permutation yields the same scores up
to floating-point summation order (each row's partial sums accumulate
in a different column order).

The solver backends apply this behind
:meth:`~repro.pagerank.backends.SolverBackend.prepare`; callers never
see relabeled ids — every public result is restored to original node
order (see ``tests/pagerank/test_backends.py`` for the pinned
round-trip).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

__all__ = [
    "degree_order_permutation",
    "inverse_permutation",
    "permute_csr",
    "permute_vector",
    "restore_vector",
]


def degree_order_permutation(matrix: sparse.csr_matrix) -> np.ndarray:
    """Permutation packing heavy rows of ``matrix`` first.

    For ``A^T`` a row's nnz is the node's in-degree, so sorting rows by
    descending nnz clusters hub pages at the low ids.  The sort is
    stable (ties keep original order), making the permutation a pure
    function of the matrix structure — deterministic across runs.

    Returns ``perm`` with ``perm[new_id] = old_id``.
    """
    row_nnz = np.diff(matrix.indptr)
    # np.argsort is stable for kind="stable"; sort on negated counts so
    # heavy rows come first while ties stay in ascending old-id order.
    return np.argsort(-row_nnz, kind="stable").astype(np.int64)


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """``inv`` such that ``inv[old_id] = new_id``."""
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=perm.dtype)
    return inv


def permute_csr(
    matrix: sparse.csr_matrix, perm: np.ndarray
) -> sparse.csr_matrix:
    """Symmetric permutation ``P M P^T`` of a square CSR matrix.

    Row ``new_i`` of the result is row ``perm[new_i]`` of ``matrix``
    with its column ids mapped through the inverse permutation (so an
    edge keeps connecting the same two nodes under their new names).
    Indices are sorted per row, giving canonical CSR.
    """
    size = matrix.shape[0]
    if matrix.shape != (size, size):
        raise ValueError(
            f"symmetric permutation needs a square matrix, "
            f"got {matrix.shape}"
        )
    if perm.shape != (size,):
        raise ValueError(
            f"permutation must have shape ({size},), got {perm.shape}"
        )
    inv = inverse_permutation(perm)
    # Relabel both coordinate streams in O(nnz) vectorised passes and
    # let the COO→CSR conversion (C code) re-sort into canonical form.
    old_rows = np.repeat(
        np.arange(size, dtype=np.int64), np.diff(matrix.indptr)
    )
    permuted = sparse.coo_matrix(
        (matrix.data, (inv[old_rows], inv[matrix.indices])),
        shape=matrix.shape,
    ).tocsr()
    permuted.sort_indices()
    return permuted


def permute_vector(vector: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Map a node-indexed vector into the relabeled domain."""
    return vector[perm]


def restore_vector(vector: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Map a relabeled-domain vector back to original node order."""
    restored = np.empty_like(vector)
    restored[perm] = vector
    return restored
