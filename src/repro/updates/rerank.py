"""Warm-started, splice-based incremental re-ranking with IdealRank.

Given yesterday's global scores and a graph update, re-rank only the
affected region (IdealRank with the stale external scores) and splice
the result into the old vector — the concrete procedure behind §I's
"exploit existing PageRank scores for other regions of the graph which
may remain largely unchanged".

The regional solve is **warm-started** from the spliced old vector:
yesterday's scores restricted to the region (plus the residual mass as
Λ's share) enter the power loop with a residual already far below a
cold start's, so the solve skips the burn-in sweeps and converges in a
handful of iterations.  ``UpdateResult.iterations_saved`` records the
skipped sweeps against the projected cold-start cost; the
``safe_restart`` guard stays armed, so a corrupted warm start falls
back to a cold solve instead of diverging.

Every update also returns a **staleness charge**: a computable upper
bound on how far the spliced vector can sit from the true fixed point
of the updated graph, built from two pieces —

* Ng et al.'s perturbation bound ``2ε/(1−ε)·Σ_{i∈changed} R[i]``
  bounds ``‖ΔE‖₁``, the drift of the external-importance vector the
  regional IdealRank consumed stale;
* Theorem 2 amplifies that stale input by ``ε/(1−ε)``; solver
  truncation adds ``residual/(1−ε)`` (or the documented
  :func:`~repro.pagerank.backends.float32_l1_bound` clamp when the
  active backend solves in float32).

The serving layer accumulates these charges per store entry and stops
serving an entry the moment its cumulative charge exceeds the
Theorem-2 staleness budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core.idealrank import idealrank
from repro.exceptions import GraphError, SubgraphError
from repro.graph.digraph import CSRGraph
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.pagerank.backends import float32_l1_bound, resolve_backend
from repro.pagerank.solver import PowerIterationSettings
from repro.updates.affected import affected_region, changed_pages
from repro.updates.delta import GraphDelta


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of an incremental re-rank.

    Attributes
    ----------
    scores:
        Full-length score vector for the *new* graph: re-ranked values
        inside the region, yesterday's values outside, renormalised to
        sum to 1.
    region:
        The re-ranked page ids.
    runtime_seconds:
        Wall-clock of the incremental path (region derivation +
        IdealRank solve + splice).
    iterations:
        Power-iteration count of the IdealRank solve.
    warm_start:
        Whether the regional solve started from the spliced old
        vector (False for cold solves and the empty-update shortcut).
    iterations_saved:
        Burn-in sweeps the warm start skipped relative to a projected
        cold solve at the same effective tolerance.
    delta_e_bound:
        Upper bound on ``‖ΔE‖₁`` — how far the update can have moved
        the external-importance vector the regional solve consumed
        stale (Ng et al.'s perturbation bound over the changed pages).
    staleness_charge:
        Theorem-2 charge of serving the spliced vector in place of a
        fresh global solve: ``ε/(1−ε)·delta_e_bound`` plus solver
        truncation (see module docs).  Zero for an empty update.
    backend:
        ``name/dtype`` of the solver backend that ran the regional
        solve (empty for the no-solve shortcut).
    """

    scores: np.ndarray
    region: np.ndarray
    runtime_seconds: float
    iterations: int
    warm_start: bool = False
    iterations_saved: int = 0
    delta_e_bound: float = 0.0
    staleness_charge: float = 0.0
    backend: str = ""

    def __post_init__(self) -> None:
        self.scores.setflags(write=False)
        self.region.setflags(write=False)


def staleness_charge_bound(
    delta_e_bound: float,
    damping: float,
    *,
    residual: float = 0.0,
    float32_clamp: float = 0.0,
) -> float:
    """Theorem-2 staleness charge for one absorbed update.

    ``ε/(1−ε)`` times the external-drift bound, plus the damped-
    contraction truncation term ``residual/(1−ε)`` and, for float32
    backends, the documented roundoff clamp.  Every term is an upper
    bound, so the sum is one too; the serving layer adds charges
    across updates (the triangle inequality keeps the total valid).
    """
    if not 0.0 < damping < 1.0:
        raise GraphError(f"damping must be in (0, 1), got {damping}")
    amplified = damping / (1.0 - damping) * float(delta_e_bound)
    truncation = float(residual) / (1.0 - damping)
    return amplified + truncation + float(float32_clamp)


def incremental_rerank(
    old_graph: CSRGraph,
    new_graph: CSRGraph,
    old_scores: np.ndarray,
    delta: GraphDelta | None = None,
    hops: int = 2,
    settings: PowerIterationSettings | None = None,
    backend=None,
    warm_start: bool = True,
    registry: MetricsRegistry | None = None,
) -> UpdateResult:
    """Re-rank only the affected region, reusing yesterday's scores.

    Parameters
    ----------
    old_graph / new_graph:
        Graphs before and after the update (new pages appended).
    old_scores:
        Yesterday's global PageRank of ``old_graph`` (length old N).
    delta:
        Optional explicit delta (skips the row diff).
    hops:
        Forward halo around changed pages; larger = more accurate,
        more expensive.
    settings:
        Solver knobs for the IdealRank solve.
    backend:
        Solver backend for the regional solve: an instance, a spec
        string, or ``None`` for the process default — so
        ``--backend`` / ``--float32`` / ``REPRO_BACKEND`` /
        ``REPRO_DTYPE`` govern the incremental path exactly as they
        govern cold solves.  Float32 backends widen the returned
        ``staleness_charge`` by the documented
        :func:`~repro.pagerank.backends.float32_l1_bound` clamp.
    warm_start:
        Start the regional solve from the spliced old vector
        (default).  ``False`` forces a cold solve — the benchmark's
        baseline arm.
    registry:
        Metrics registry for the ``repro_update_*`` counters (the
        process-wide one by default).

    Returns
    -------
    UpdateResult
        Spliced score vector over the new graph plus warm-start and
        staleness accounting.

    Notes
    -----
    External scores fed to IdealRank are *yesterday's* — stale by
    whatever mass the update moved outside the region.  Theorem 2
    bounds the resulting error by ``ε/(1−ε)`` times the staleness of
    the external-importance vector; ``staleness_charge`` is that
    bound made computable (see module docs).
    """
    old_scores = np.asarray(old_scores, dtype=np.float64)
    if old_scores.shape != (old_graph.num_nodes,):
        raise GraphError(
            "old_scores must cover the old graph: expected "
            f"({old_graph.num_nodes},), got {old_scores.shape}"
        )
    start = time.perf_counter()
    region = affected_region(old_graph, new_graph, hops, delta)
    if region.size == 0:
        runtime = time.perf_counter() - start
        return UpdateResult(
            scores=old_scores.copy(),
            region=region,
            runtime_seconds=runtime,
            iterations=0,
        )
    if region.size >= new_graph.num_nodes:
        raise SubgraphError(
            "the update touches the whole graph; run global PageRank "
            "instead of an incremental re-rank"
        )

    if settings is None:
        settings = PowerIterationSettings()
    resolved = resolve_backend(backend)
    damping = settings.damping

    # Yesterday's scores, extended to the new id space: brand-new
    # pages start from the teleport share (they had no score).
    stale = np.full(new_graph.num_nodes, 1.0 / new_graph.num_nodes)
    stale[: old_graph.num_nodes] = old_scores

    initial = None
    if warm_start:
        # The extended warm iterate: yesterday's region scores plus
        # the residual mass as Λ's share (the solver normalises).  A
        # corrupted warm start must not poison the solve, so the
        # safe_restart guard is armed for the regional solve.
        region_mass = stale[region]
        lam = max(1.0 - float(region_mass.sum()), 0.0)
        initial = np.concatenate([region_mass, [lam]])
        settings = replace(settings, safe_restart=True)

    ranked = idealrank(
        new_graph, region, stale, settings,
        initial=initial, backend=resolved,
    )

    spliced = stale.copy()
    spliced[ranked.local_nodes] = ranked.scores
    spliced /= spliced.sum()

    # Staleness accounting: the changed pages (delta sources ∪ new
    # pages, or the row diff) carried `stale`-mass the update may
    # have moved; Ng et al.'s bound turns that mass into ‖ΔE‖₁.
    if delta is not None and not delta.is_empty:
        seeds = np.union1d(
            delta.touched_sources(),
            np.arange(
                old_graph.num_nodes, new_graph.num_nodes, dtype=np.int64
            ),
        )
    else:
        seeds = changed_pages(old_graph, new_graph)
    from repro.pagerank.stability import perturbation_bound

    delta_e_bound = perturbation_bound(stale, seeds, damping)
    clamp = 0.0
    if np.dtype(resolved.dtype) == np.dtype(np.float32):
        clamp = float32_l1_bound(
            region.size + 1, settings.tolerance, damping
        )
    charge = staleness_charge_bound(
        delta_e_bound,
        damping,
        residual=ranked.residual,
        float32_clamp=clamp,
    )

    warm = bool(ranked.extras.get("warm_start", False))
    saved = int(ranked.extras.get("iterations_saved", 0))
    metrics = registry if registry is not None else REGISTRY
    metrics.counter(
        "repro_update_regions_reranked_total",
        "Affected regions re-ranked by the incremental engine.",
    ).inc()
    if saved:
        metrics.counter(
            "repro_update_iterations_saved_total",
            "Power-iteration sweeps skipped by warm-started re-ranks "
            "relative to projected cold solves.",
        ).inc(saved)

    runtime = time.perf_counter() - start
    return UpdateResult(
        scores=spliced,
        region=region,
        runtime_seconds=runtime,
        iterations=ranked.iterations,
        warm_start=warm,
        iterations_saved=saved,
        delta_e_bound=float(delta_e_bound),
        staleness_charge=float(charge),
        backend=resolved.describe(),
    )
