"""Thread-pool executor tests: exactness, ordering, error naming.

Unlike the process pool (``rank_many``), the thread pool shares the
graph, transition caches and preprocessor **zero-copy** — so the
load-bearing guarantee is again exact agreement: the same float64
operations run on the *same* arrays, threads only change scheduling.
With the GIL-holding reference backend the pool adds concurrency but
not parallelism; the numba backend's ``nogil`` kernels are where
wall-clock scaling comes from (see ``BENCH_backend.json``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParallelError
from repro.parallel import rank_many, rank_many_threaded
from tests.conftest import random_digraph


@pytest.fixture(scope="module")
def graph():
    return random_digraph(300, dangling_fraction=0.35, seed=9)


@pytest.fixture(scope="module")
def subgraphs():
    return [
        ("low", list(range(0, 40))),
        ("mid", list(range(120, 190))),
        ("high", list(range(200, 290))),
    ]


def assert_exact(result_a, result_b):
    assert len(result_a) == len(result_b)
    for a, b in zip(result_a, result_b):
        assert np.array_equal(a.local_nodes, b.local_nodes)
        assert np.array_equal(a.scores, b.scores)


class TestThreadedExactness:
    def test_matches_serial_process_path(self, graph, subgraphs):
        threaded = rank_many_threaded(graph, subgraphs, threads=2)
        serial = rank_many(graph, subgraphs, workers=1)
        assert_exact(threaded, serial)

    def test_thread_count_does_not_change_scores(self, graph, subgraphs):
        one = rank_many_threaded(graph, subgraphs, threads=1)
        four = rank_many_threaded(graph, subgraphs, threads=4)
        assert_exact(one, four)

    @pytest.mark.parametrize("algorithm", ["approxrank", "local-pr"])
    def test_algorithms_agree_with_process_path(
        self, graph, subgraphs, algorithm
    ):
        threaded = rank_many_threaded(
            graph, subgraphs, algorithm=algorithm, threads=2
        )
        serial = rank_many(
            graph, subgraphs, algorithm=algorithm, workers=1
        )
        assert_exact(threaded, serial)


class TestThreadedSemantics:
    def test_results_follow_input_order(self, graph, subgraphs):
        results = rank_many_threaded(graph, subgraphs, threads=3)
        for (__, nodes), scores in zip(subgraphs, results):
            assert sorted(scores.local_nodes.tolist()) == sorted(nodes)

    def test_empty_batch(self, graph):
        assert rank_many_threaded(graph, [], threads=2) == []

    def test_unknown_algorithm_rejected(self, graph, subgraphs):
        with pytest.raises(ParallelError, match="unknown algorithm"):
            rank_many_threaded(
                graph, subgraphs, algorithm="simrank", threads=2
            )

    def test_error_names_failing_subgraph(self, graph):
        everything = list(range(graph.num_nodes))  # no external part
        with pytest.raises(ParallelError, match="'everything'"):
            rank_many_threaded(
                graph,
                [("fine", [0, 1, 2]), ("everything", everything)],
                threads=2,
            )

    def test_explicit_backend_spec(self, graph, subgraphs):
        via_spec = rank_many_threaded(
            graph, subgraphs, threads=2, backend="reference:float64"
        )
        default = rank_many_threaded(graph, subgraphs, threads=2)
        assert_exact(via_spec, default)
