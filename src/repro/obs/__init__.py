"""Dependency-free observability: metrics, tracing, telemetry, export.

Usage sketch::

    from repro import obs

    obs.enable()                       # or REPRO_OBS=1 / --obs
    with obs.span("experiment:table4"):
        ...
    obs.write_snapshot("obs.json")     # metrics + spans + solve history

The metrics registry (:data:`REGISTRY`) is always on — counters are
cheap at the library's per-solve/per-chunk event granularity — while
span trees and solver residual ring buffers only record when
observability is enabled.  See DESIGN.md §9 for the architecture and
the full metric reference.
"""

from __future__ import annotations

from repro.obs import state
from repro.obs.export import (
    build_snapshot,
    load_snapshot,
    parse_prometheus_text,
    render_report,
    to_prometheus_text,
    write_snapshot,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from repro.obs.state import configure_logging
from repro.obs.tracing import (
    NullTracer,
    SpanNode,
    Tracer,
    add_span_counter,
    current_span,
    get_tracer,
    set_tracer,
    span,
)

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "NullTracer",
    "SpanNode",
    "span",
    "current_span",
    "add_span_counter",
    "get_tracer",
    "set_tracer",
    "enable",
    "disable",
    "enabled",
    "configure_logging",
    "build_snapshot",
    "write_snapshot",
    "load_snapshot",
    "to_prometheus_text",
    "parse_prometheus_text",
    "render_report",
]


def enabled() -> bool:
    """Whether full observability (tracing + telemetry buffers) is on."""
    return state.enabled()


def enable() -> None:
    """Turn on full observability for this process (and future workers).

    Sets the ``REPRO_OBS`` flag (exported to the environment so worker
    processes inherit it) and installs a real :class:`Tracer` if the
    active tracer is the :class:`NullTracer`.
    """
    state.set_enabled(True)
    if isinstance(get_tracer(), NullTracer):
        set_tracer(Tracer())


def disable() -> None:
    """Turn full observability off and restore the zero-overhead tracer."""
    state.set_enabled(False)
    if not isinstance(get_tracer(), NullTracer):
        set_tracer(NullTracer())
