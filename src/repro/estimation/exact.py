"""The exact solver behind the ``RankEstimator`` protocol.

``ExactEstimator`` delegates to :func:`repro.core.approxrank.approxrank`
— the scores it returns are **bit-identical** to a direct call (pinned
by test), so selecting ``--estimator exact`` anywhere is always safe.
It only *adds* the protocol's accounting keys to ``extras``:
``error_bound`` is 0.0 (the fixed point is solved to tolerance, not
sampled), and ``edges_touched`` charges the full extended-matrix nnz
once per power-iteration sweep — the honest cost the sublinear engines
are benchmarked against.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.core.approxrank import approxrank
from repro.core.precompute import ApproxRankPreprocessor
from repro.estimation.base import record_estimate_metrics
from repro.graph.digraph import CSRGraph
from repro.pagerank.result import SubgraphScores
from repro.pagerank.solver import PowerIterationSettings

__all__ = ["ExactEstimator"]


class ExactEstimator:
    """Exact ApproxRank behind the estimator protocol."""

    name = "exact"

    @property
    def variant(self) -> str:
        """Canonical store-key token (exact has no parameters)."""
        return self.name

    def estimate(
        self,
        graph: CSRGraph,
        local_nodes: Iterable[int],
        settings: PowerIterationSettings | None = None,
        preprocessor: ApproxRankPreprocessor | None = None,
    ) -> SubgraphScores:
        start = time.perf_counter()
        prep = preprocessor or ApproxRankPreprocessor(graph)
        result = approxrank(graph, local_nodes, settings, prep)
        # extended_graph() hits the per-subgraph cache the solve just
        # warmed, so reading the nnz costs no second global pass.
        nnz = int(prep.extended_graph(local_nodes).transition_ext_t.nnz)
        extras = dict(result.extras)
        extras.update(
            estimator=self.name,
            error_bound=0.0,
            edges_touched=nnz * max(result.iterations, 1),
        )
        runtime = time.perf_counter() - start
        scores = SubgraphScores(
            local_nodes=result.local_nodes,
            scores=result.scores,
            method=result.method,
            iterations=result.iterations,
            residual=result.residual,
            converged=result.converged,
            runtime_seconds=runtime
            if preprocessor is None
            else result.runtime_seconds,
            extras=extras,
        )
        record_estimate_metrics(scores)
        return scores
