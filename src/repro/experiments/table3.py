"""Table III: TS-subgraph accuracy — SC vs ApproxRank (§V-C).

On the politics dataset, three topic-specific subgraphs
(*conservatism*, *liberalism*, *socialism*) are ranked by SC and by
ApproxRank; both the L1 distance and the Spearman's footrule distance
against the restricted global PageRank are reported, next to the
paper's values.

Expected shape (§V-C): the two algorithms trade wins on L1 ("similar,
sometimes superior"), while ApproxRank clearly wins footrule on every
subgraph.
"""

from __future__ import annotations

from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import TableResult
from repro.experiments.runner import run_algorithms, standard_rankers
from repro.subgraphs.topic import topic_subgraph

#: Paper Table III: subgraph -> (SC-implemented L1, ApproxRank L1,
#: SC footrule, ApproxRank footrule).
PAPER_TABLE3 = {
    "conservatism": (0.0476, 0.0450, 0.0632, 0.0255),
    "liberalism": (0.0733, 0.0494, 0.0917, 0.0293),
    "socialism": (0.0442, 0.1040, 0.0316, 0.0193),
}

TS_SUBGRAPHS = ("conservatism", "liberalism", "socialism")


def run(context: ExperimentContext | None = None) -> TableResult:
    """Run SC and ApproxRank on the three TS subgraphs."""
    context = context or ExperimentContext()
    dataset = context.politics
    table = TableResult(
        experiment_id="table3",
        title=(
            "Table III -- L1 and footrule distance on TS subgraphs "
            "(politics dataset)"
        ),
        headers=[
            "subgraph", "n",
            "SC L1 (paper)", "SC L1 (ours)",
            "AR L1 (paper)", "AR L1 (ours)",
            "SC footrule (paper)", "SC footrule (ours)",
            "AR footrule (paper)", "AR footrule (ours)",
        ],
    )
    rankers = standard_rankers(context, dataset)
    for topic in TS_SUBGRAPHS:
        nodes = topic_subgraph(dataset, topic)
        runs = run_algorithms(
            context, dataset, nodes,
            rankers=rankers, algorithms=("sc", "approxrank"),
        )
        paper = PAPER_TABLE3[topic]
        table.add_row(
            topic, int(nodes.size),
            paper[0], runs["sc"].report.l1,
            paper[1], runs["approxrank"].report.l1,
            paper[2], runs["sc"].report.footrule,
            paper[3], runs["approxrank"].report.footrule,
        )
    table.notes.append(
        "Expected shape: SC and ApproxRank trade wins on L1; "
        "ApproxRank wins footrule on every subgraph."
    )
    return table


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
