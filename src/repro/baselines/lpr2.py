"""Baseline ●: LPR2, the ServerRank component of Wang & DeWitt (VLDB'04).

As described in §V-B of the ApproxRank paper: for a subgraph of size n,
an artificial page ξ is added to form an ``n+1``-page graph.  If a
local page i has any edge to an out-of-domain page, then i and ξ are
connected — by *plain unweighted edges*, one in each direction for the
respective boundary directions.  Standard PageRank (uniform
personalisation over the n+1 pages) is then run on this graph.

This is exactly the "extended local graph without a strategy to adjust
transition probabilities" of the paper's Figure 5: a page with three
external in-links is treated the same as a page with one, and a page
whose out-links are mostly external still sends only ``1/(d_local+1)``
of its mass to ξ.  On boundary-heavy (BFS) subgraphs this
underestimation makes LPR2 the worst performer in Figure 7.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np
from scipy import sparse

from repro.graph.digraph import CSRGraph
from repro.graph.subgraph import (
    boundary_in_edges,
    boundary_out_edges,
    induced_subgraph,
)
from repro.pagerank.localrank import pagerank_on_graph
from repro.pagerank.result import SubgraphScores
from repro.pagerank.solver import PowerIterationSettings


def build_lpr2_graph(
    graph: CSRGraph, local_nodes: Iterable[int]
) -> tuple[CSRGraph, np.ndarray]:
    """Construct the ξ-extended graph of LPR2.

    Returns
    -------
    (extended_graph, local_to_global):
        The ``n+1``-node graph (ξ has index n) and the sorted global
        ids of the local pages.
    """
    induced = induced_subgraph(graph, local_nodes)
    local = induced.local_to_global
    num_local = induced.num_local

    out_sources, __, __ = boundary_out_edges(graph, local)
    __, in_targets, __ = boundary_in_edges(graph, local)
    # One unweighted edge per boundary page, regardless of how many
    # global links it represents (the defect ApproxRank fixes).
    pages_linking_out = np.unique(induced.to_local(out_sources))
    pages_linked_from_outside = np.unique(induced.to_local(in_targets))

    base = induced.graph.adjacency.tocoo()
    rows = [base.row.astype(np.int64)]
    cols = [base.col.astype(np.int64)]
    data = [base.data]
    xi = num_local
    if pages_linking_out.size:
        rows.append(pages_linking_out)
        cols.append(np.full(pages_linking_out.size, xi, dtype=np.int64))
        data.append(np.ones(pages_linking_out.size))
    if pages_linked_from_outside.size:
        rows.append(np.full(pages_linked_from_outside.size, xi, dtype=np.int64))
        cols.append(pages_linked_from_outside)
        data.append(np.ones(pages_linked_from_outside.size))
    matrix = sparse.coo_matrix(
        (
            np.concatenate(data),
            (np.concatenate(rows), np.concatenate(cols)),
        ),
        shape=(num_local + 1, num_local + 1),
    ).tocsr()
    return CSRGraph(matrix), local


def lpr2(
    graph: CSRGraph,
    local_nodes: Iterable[int],
    settings: PowerIterationSettings | None = None,
) -> SubgraphScores:
    """Run the LPR2 baseline for a subgraph.

    Returns
    -------
    SubgraphScores
        Scores of the n local pages (ξ's score is reported in
        ``extras["xi_score"]``).
    """
    start = time.perf_counter()
    extended, local = build_lpr2_graph(graph, local_nodes)
    result = pagerank_on_graph(extended, settings)
    runtime = time.perf_counter() - start
    num_local = local.size
    return SubgraphScores(
        local_nodes=local.copy(),
        scores=result.scores[:num_local].copy(),
        method="lpr2",
        iterations=result.iterations,
        residual=result.residual,
        converged=result.converged,
        runtime_seconds=runtime,
        extras={"xi_score": float(result.scores[num_local])},
    )
