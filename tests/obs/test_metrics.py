"""Registry semantics: counters, gauges, histogram edges, drain/merge."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    _validate_buckets,
)

pytestmark = pytest.mark.obs


class TestCounter:
    def test_increments_accumulate(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total")
        c.inc()
        c.inc(2.5)
        assert reg.value("repro_test_total") == 3.5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="only go up"):
            reg.counter("repro_test_total").inc(-1)

    def test_labelled_children_are_independent(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_total", solver="power").inc(3)
        reg.counter("repro_test_total", solver="batched").inc(5)
        assert reg.value("repro_test_total", solver="power") == 3
        assert reg.value("repro_test_total", solver="batched") == 5
        # Absent label set reads as zero, never raises.
        assert reg.value("repro_test_total", solver="gauss") == 0.0

    def test_same_labels_same_child(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_test_total", x="1", y="2")
        b = reg.counter("repro_test_total", y="2", x="1")
        assert a is b


class TestGauge:
    def test_set_and_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_test_gauge")
        g.set(10)
        g.inc(-3)
        assert reg.value("repro_test_gauge") == 7.0


class TestHistogram:
    def test_le_is_inclusive_at_exact_bound(self):
        # Prometheus semantics: observe(0.01) lands in le="0.01".
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_hist", buckets=(0.01, 0.1, 1.0))
        h.observe(0.01)
        assert h.bucket_counts == (1, 0, 0, 0)

    def test_bucket_edges_and_inf_overflow(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_hist", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 1.0001, 5.0, 10.0, 10.0001, 1e9):
            h.observe(value)
        # (<=1, <=5, <=10, +Inf) — bounds inclusive, overflow in +Inf.
        assert h.bucket_counts == (2, 2, 1, 2)
        assert h.cumulative_counts() == (2, 4, 5, 7)
        assert h.count == 7
        assert h.sum == pytest.approx(0.5 + 1 + 1.0001 + 5 + 10 + 10.0001 + 1e9)

    def test_default_buckets_when_unspecified(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_hist")
        assert h.buckets == DEFAULT_BUCKETS

    def test_later_touch_inherits_family_buckets(self):
        reg = MetricsRegistry()
        reg.histogram("repro_test_hist", buckets=(1.0, 2.0), solver="a")
        h = reg.histogram("repro_test_hist", solver="b")
        assert h.buckets == (1.0, 2.0)

    def test_conflicting_buckets_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("repro_test_hist", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="already has buckets"):
            reg.histogram("repro_test_hist", buckets=(1.0, 3.0))

    def test_value_accessor_rejects_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("repro_test_hist", buckets=(1.0,)).observe(0.5)
        with pytest.raises(ValueError, match="histogram"):
            reg.value("repro_test_hist")


class TestBucketValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            _validate_buckets(())

    @pytest.mark.parametrize("bad", [(1.0, 1.0), (2.0, 1.0), (1.0, 3.0, 2.0)])
    def test_non_increasing_rejected(self, bad):
        with pytest.raises(ValueError, match="strictly increasing"):
            _validate_buckets(bad)


class TestKindConflicts:
    def test_counter_then_gauge_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_metric")
        with pytest.raises(ValueError, match="is a counter"):
            reg.gauge("repro_test_metric")

    def test_gauge_then_histogram_rejected(self):
        reg = MetricsRegistry()
        reg.gauge("repro_test_metric")
        with pytest.raises(ValueError, match="is a gauge"):
            reg.histogram("repro_test_metric")


def populate_worker_style(reg: MetricsRegistry) -> None:
    """The shape of metrics a parallel worker ships to the parent."""
    reg.counter("repro_solver_solves_total", solver="power").inc(4)
    reg.counter("repro_cache_hits_total").inc(7)
    reg.gauge("repro_cache_graphs_tracked").set(2)
    h = reg.histogram(
        "repro_solver_iterations", buckets=(10, 50, 100), solver="power"
    )
    for its in (8, 42, 42, 77):
        h.observe(its)


class TestDrainMerge:
    def test_drain_snapshots_then_zeroes(self):
        worker = MetricsRegistry()
        populate_worker_style(worker)
        snap = worker.drain()
        fam = snap["families"]["repro_solver_solves_total"]
        assert fam["samples"][0]["value"] == 4
        # Everything zeroed, families retained.
        assert worker.value("repro_solver_solves_total", solver="power") == 0
        assert "repro_solver_iterations" in worker.family_names()
        hist = worker.snapshot()["families"]["repro_solver_iterations"]
        assert hist["samples"][0]["count"] == 0

    def test_merge_round_trip_equals_direct(self):
        worker = MetricsRegistry()
        populate_worker_style(worker)
        direct = MetricsRegistry()
        populate_worker_style(direct)

        parent = MetricsRegistry()
        parent.merge(worker.drain())
        assert parent.snapshot() == direct.snapshot()

    def test_repeated_drain_never_double_counts(self):
        worker = MetricsRegistry()
        parent = MetricsRegistry()
        populate_worker_style(worker)
        parent.merge(worker.drain())
        # Second drain ships only post-drain activity: nothing.
        parent.merge(worker.drain())
        assert parent.value("repro_solver_solves_total", solver="power") == 4
        assert parent.value("repro_cache_hits_total") == 7

    def test_merge_twice_adds_counters_and_buckets(self):
        worker = MetricsRegistry()
        populate_worker_style(worker)
        snap = worker.snapshot()
        parent = MetricsRegistry()
        parent.merge(snap)
        parent.merge(snap)
        assert parent.value("repro_solver_solves_total", solver="power") == 8
        hist = parent.snapshot()["families"]["repro_solver_iterations"]
        sample = hist["samples"][0]
        assert sample["count"] == 8
        assert sample["bucket_counts"] == [2, 4, 2, 0]

    def test_merge_gauge_last_write_wins(self):
        parent = MetricsRegistry()
        parent.gauge("repro_cache_graphs_tracked").set(9)
        worker = MetricsRegistry()
        worker.gauge("repro_cache_graphs_tracked").set(2)
        parent.merge(worker.snapshot())
        assert parent.value("repro_cache_graphs_tracked") == 2

    def test_merge_skips_zero_counters(self):
        worker = MetricsRegistry()
        worker.counter("repro_test_total", solver="idle")  # touched, 0
        parent = MetricsRegistry()
        parent.merge(worker.snapshot())
        fam = parent.snapshot()["families"].get("repro_test_total")
        assert fam is None or fam["samples"] == []

    def test_merge_rejects_mismatched_bucket_layout(self):
        parent = MetricsRegistry()
        parent.histogram("repro_test_hist", buckets=(1.0, 2.0, 3.0))
        bad = MetricsRegistry()
        bad.histogram("repro_test_hist", buckets=(1.0, 2.0)).observe(1.5)
        snap = bad.snapshot()
        # Simulate a layout drift: same name, different bucket count.
        snap["families"]["repro_test_hist"]["buckets"] = [1.0, 2.0, 3.0]
        with pytest.raises(ValueError, match="bucket layout"):
            parent.merge(snap)


class TestCollectors:
    def test_collector_runs_at_snapshot_and_publishes_deltas(self):
        reg = MetricsRegistry()
        source = {"hits": 0, "published": 0}

        def collector(registry):
            delta = source["hits"] - source["published"]
            if delta:
                registry.counter("repro_test_hits_total").inc(delta)
                source["published"] = source["hits"]

        reg.register_collector(collector)
        source["hits"] = 5
        reg.snapshot()
        assert reg.value("repro_test_hits_total") == 5
        # No new activity: a second snapshot must not re-add.
        reg.snapshot()
        assert reg.value("repro_test_hits_total") == 5
        source["hits"] = 6
        reg.snapshot()
        assert reg.value("repro_test_hits_total") == 6

    def test_collector_registered_once(self):
        reg = MetricsRegistry()

        def collector(registry):
            registry.counter("repro_test_total").inc()

        reg.register_collector(collector)
        reg.register_collector(collector)
        reg.snapshot()
        assert reg.value("repro_test_total") == 1

    def test_snapshot_can_skip_collectors(self):
        reg = MetricsRegistry()
        reg.register_collector(
            lambda r: r.counter("repro_test_total").inc()
        )
        reg.snapshot(run_collectors=False)
        assert reg.value("repro_test_total") == 0


class TestSnapshotShape:
    def test_families_and_samples_sorted(self):
        reg = MetricsRegistry()
        reg.counter("repro_b_total").inc()
        reg.counter("repro_a_total", z="1").inc()
        reg.counter("repro_a_total", a="1").inc()
        snap = reg.snapshot()
        assert list(snap["families"]) == ["repro_a_total", "repro_b_total"]
        labels = [
            s["labels"] for s in snap["families"]["repro_a_total"]["samples"]
        ]
        assert labels == [{"a": "1"}, {"z": "1"}]

    def test_reset_drops_families(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_total").inc()
        reg.reset()
        assert reg.family_names() == ()
        assert reg.value("repro_test_total") == 0.0
