"""Supplementary experiment: P2P convergence (the §I P2P scenario).

Peers host whole domains of the AU-like web and start from ApproxRank
(zero knowledge about external pages).  Each round peers meet pairwise,
exchange authoritative scores and gossip, rebuild their E vectors and
re-rank.  The table reports the network's mean error against the true
global PageRank after every round.

Expected shape (the JXP convergence story, quantified by Theorem 2):
coverage rises monotonically, the mean L1 and footrule errors fall
round over round, and the final errors approach the IdealRank limit
(zero) as coverage approaches 1.
"""

from __future__ import annotations

from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import TableResult
from repro.p2p.network import P2PNetwork
from repro.p2p.partition import partition_by_label

#: Meeting rounds reported (enough for full coverage at 8 peers).
DEFAULT_ROUNDS = 8

#: Peers in the network (domains are merged round-robin onto them).
DEFAULT_PEERS = 8


def run(
    context: ExperimentContext | None = None,
    rounds: int = DEFAULT_ROUNDS,
    num_peers: int = DEFAULT_PEERS,
) -> TableResult:
    """Run the meeting protocol and tabulate error per round."""
    context = context or ExperimentContext()
    dataset = context.au
    truth = context.ground_truth(dataset)
    partition = partition_by_label(
        dataset, "domain", num_peers=num_peers
    )
    network = P2PNetwork(
        dataset.graph, partition, context.settings,
        seed=context.config.seed,
    )

    table = TableResult(
        experiment_id="p2p",
        title=(
            f"Supplementary -- P2P convergence, {num_peers} peers "
            "hosting whole domains (AU dataset)"
        ),
        headers=[
            "round", "mean coverage", "mean L1", "mean footrule",
        ],
    )
    initial_l1, initial_footrule = network.evaluate(truth.scores)
    table.add_row(0, 0.0, initial_l1, initial_footrule)
    for report in network.run(rounds, global_scores=truth.scores):
        table.add_row(
            report.round_index,
            report.mean_coverage,
            report.mean_l1,
            report.mean_footrule,
        )
    table.notes.append(
        "Round 0 is pure ApproxRank (uniform E).  As meetings raise "
        "coverage, each peer's E approaches the true external scores "
        "and Theorem 2 drives the error toward the IdealRank limit."
    )
    return table


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
