"""Strongly connected components (§II-A's irreducibility premise).

"According to the Ergodic Theorem for Markov chains, if the graph is
aperiodic and irreducible, i.e., the Web graph is strongly connected,
then a unique steady state distribution exists."  Damping makes the
walk irreducible regardless, but the *undamped* connectivity structure
still matters — it drives mixing speed and the bow-tie shape of real
crawls — so the substrate exposes it.

The implementation is an iterative Tarjan (explicit stack; recursion
would overflow on crawl-scale graphs) and is cross-checked against
networkx in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import CSRGraph


def strongly_connected_components(graph: CSRGraph) -> list[np.ndarray]:
    """All SCCs of the graph, largest first.

    Returns
    -------
    list of sorted node-id arrays; every node appears in exactly one
    component (singletons included).
    """
    n = graph.num_nodes
    indptr = graph.adjacency.indptr
    indices = graph.adjacency.indices

    index_of = np.full(n, -1, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    stack: list[int] = []
    components: list[list[int]] = []
    next_index = 0

    for root in range(n):
        if index_of[root] != -1:
            continue
        # Iterative Tarjan: work entries are (node, next-edge-cursor).
        work = [(root, indptr[root])]
        index_of[root] = lowlink[root] = next_index
        next_index += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, cursor = work[-1]
            if cursor < indptr[node + 1]:
                work[-1] = (node, cursor + 1)
                neighbor = int(indices[cursor])
                if index_of[neighbor] == -1:
                    index_of[neighbor] = lowlink[neighbor] = next_index
                    next_index += 1
                    stack.append(neighbor)
                    on_stack[neighbor] = True
                    work.append((neighbor, indptr[neighbor]))
                elif on_stack[neighbor]:
                    lowlink[node] = min(
                        lowlink[node], index_of[neighbor]
                    )
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(
                        lowlink[parent], lowlink[node]
                    )
                if lowlink[node] == index_of[node]:
                    members: list[int] = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        members.append(member)
                        if member == node:
                            break
                    components.append(members)
    arrays = [
        np.asarray(sorted(members), dtype=np.int64)
        for members in components
    ]
    arrays.sort(key=lambda a: (-a.size, int(a[0])))
    return arrays


def largest_scc_fraction(graph: CSRGraph) -> float:
    """Fraction of nodes in the largest SCC.

    Real web crawls have a giant SCC covering a substantial fraction of
    pages (the bow-tie core); the generator tests assert the synthetic
    graphs share this property.
    """
    if graph.num_nodes == 0:
        return 0.0
    components = strongly_connected_components(graph)
    return components[0].size / graph.num_nodes


def is_strongly_connected(graph: CSRGraph) -> bool:
    """Whether the whole graph is one SCC (§II-A's idealised premise)."""
    if graph.num_nodes == 0:
        return True
    return strongly_connected_components(graph)[0].size == (
        graph.num_nodes
    )
