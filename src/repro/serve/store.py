"""The score store: warm ranking results keyed by graph + subgraph.

An online ranking service answers most queries for a handful of hot
subgraphs; recomputing ApproxRank on every request would waste the
paper's own amortisation result (§IV-B).  The :class:`ScoreStore`
keeps solved :class:`~repro.pagerank.result.SubgraphScores` warm,
keyed by

* the **graph fingerprint** — a content hash of the CSR arrays, so two
  structurally identical graphs share entries and a rebuilt
  (post-update) graph automatically misses;
* the **subgraph digest** — a hash of the sorted local node ids;
* the **damping factor** — ε changes the fixed point, so it is part of
  the identity of a score vector;
* the **variant** — which estimator produced the scores (``"exact"``
  by default).  Sublinear estimates (Monte Carlo, push) are warm too,
  but they must never be served where the bit-identical exact contract
  applies, so they live under their own keys: an ``"exact"`` lookup
  cannot hit a ``"montecarlo"`` entry, and vice versa.

Freshness is governed three ways:

* **LRU capacity** — least-recently-used entries fall out first;
* **TTL expiry** — entries older than ``ttl_seconds`` are dropped at
  read time (the store never serves a result older than its TTL);
* **update-driven staleness accounting** — :meth:`ScoreStore.apply_update`
  consumes a :class:`~repro.updates.delta.GraphDelta`'s affected
  region and migrates every surviving entry into a *stale-but-bounded*
  state instead of evicting it: the entry keeps serving immediately
  (flagged, with its cumulative staleness charge attached) while the
  serving layer re-ranks it incrementally in the background.  The
  charge per update is the Theorem-2 bound ``ε/(1−ε)·‖ΔE‖₁`` made
  computable through Ng et al.'s perturbation bound (see
  :func:`repro.updates.rerank.staleness_charge_bound`); the moment an
  entry's cumulative charge exceeds the store's ``staleness_budget``
  it is evicted — an over-budget entry is *never* served.  Pass
  ``migrate_unaffected=False`` for the strict drop-everything
  semantics of earlier revisions.

Entries persist to ``.npz`` files (one per entry) so a restarted
server can warm-load yesterday's scores for the same graph without a
single solve.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from repro.graph.digraph import CSRGraph
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.pagerank.result import SubgraphScores
from repro.updates.affected import affected_region
from repro.updates.delta import GraphDelta

__all__ = [
    "DEFAULT_STALENESS_BUDGET",
    "ScoreStore",
    "StoreHit",
    "StoreUpdateReport",
    "graph_fingerprint",
    "subgraph_digest",
]

#: Default Theorem-2 staleness budget (L1 units of score mass): the
#: maximum cumulative ``ε/(1−ε)·‖ΔE‖₁`` charge an entry may carry and
#: still be served.  The charge is a *worst-case certificate* — Ng et
#: al.'s perturbation bound amplified by Theorem 2 carries an
#: ``(ε/(1−ε))²`` factor (~64x the changed score mass at ε = 0.85) —
#: so the budget is calibrated to the certificate's scale, not to the
#: (orders-of-magnitude smaller) typical error.  1.0 is half the L1
#: diameter of probability distributions: one small-churn update (a
#: page changed on a ~100-node graph certifies at ≈0.5) survives
#: stale-but-bounded, the second evicts and forces a re-solve.
#: Services with tighter SLOs pass their own budget.
DEFAULT_STALENESS_BUDGET = 1.0

#: Fingerprints are content hashes; computing one scans every CSR
#: array, so memoise per graph object (CSRGraph is immutable).
_FINGERPRINTS: "weakref.WeakKeyDictionary[CSRGraph, str]" = (
    weakref.WeakKeyDictionary()
)


def graph_fingerprint(graph: CSRGraph) -> str:
    """Content hash of a graph's CSR arrays (hex, stable across runs).

    Two graphs with identical structure and weights share a
    fingerprint even when they are distinct objects (e.g. one loaded
    from npz and one built in memory), which is what lets a restarted
    server warm-load a persisted store.
    """
    cached = _FINGERPRINTS.get(graph)
    if cached is not None:
        return cached
    adj = graph.adjacency
    digest = hashlib.sha256()
    digest.update(np.int64(adj.shape[0]).tobytes())
    for array in (adj.indptr, adj.indices, adj.data):
        digest.update(np.ascontiguousarray(array).tobytes())
    fingerprint = digest.hexdigest()
    _FINGERPRINTS[graph] = fingerprint
    return fingerprint


def subgraph_digest(local_nodes: Iterable[int]) -> str:
    """Hex digest identifying a local node set (order-insensitive)."""
    nodes = np.unique(np.asarray(list(local_nodes), dtype=np.int64))
    return hashlib.sha256(
        np.ascontiguousarray(nodes).tobytes()
    ).hexdigest()


def _damping_token(damping: float) -> str:
    # repr of a float is its shortest round-trip form: exact identity.
    return repr(float(damping))


def _json_default(value):
    # Extras hold numpy scalars (and occasionally small arrays, e.g.
    # SC expansion sizes); coerce both so json round-trips them as
    # plain Python numbers/lists.
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(
        f"extras value of type {type(value).__name__} is not "
        "JSON-serialisable"
    )


def _encode_extras(extras) -> str:
    return json.dumps(dict(extras), default=_json_default, sort_keys=True)


@dataclass
class _Entry:
    scores: SubgraphScores
    fingerprint: str
    digest: str
    damping: float
    inserted_at: float
    stale: bool = False
    staleness: float = 0.0
    variant: str = "exact"


@dataclass(frozen=True)
class StoreHit:
    """One served store entry plus its staleness accounting.

    ``stale`` is True when the entry predates a graph update and is
    being served under the Theorem-2 bound; ``staleness`` is its
    cumulative charge (0.0 for fresh entries).  An entry whose charge
    exceeds the store's budget is never returned.
    """

    scores: SubgraphScores
    stale: bool = False
    staleness: float = 0.0


@dataclass(frozen=True)
class StoreUpdateReport:
    """What :meth:`ScoreStore.apply_update` did to the store.

    Attributes
    ----------
    region:
        The affected region of the update (changed pages + halo).
    evicted:
        Entries dropped: over the staleness budget, or everything of
        the old graph when migration was disabled.
    migrated:
        Entries whose subgraph is disjoint from the region, rekeyed to
        the new graph's fingerprint (charged, but not queued for
        refresh).
    stale:
        Region-intersecting entries migrated into the stale-but-
        bounded state (served flagged until refreshed).
    refreshed:
        Entries recomputed against the new graph by the ``refresher``
        callback and reinserted fresh.
    staleness_charge:
        The Theorem-2 charge this update added to every surviving
        entry (at the store's reference damping of each entry; the
        recorded value uses the entry-specific dampings, so this field
        reports the maximum across entries, 0.0 when none survived).
    stale_entries:
        ``(local_nodes, damping)`` of every entry now in the stale
        state — the work list a background refresher should re-rank.
    """

    region: np.ndarray
    evicted: int
    migrated: int
    refreshed: int
    stale: int = 0
    staleness_charge: float = 0.0
    stale_entries: tuple = ()


class ScoreStore:
    """LRU + TTL cache of solved subgraph scores (see module docs).

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently *used* entry is
        evicted when a put would exceed it.
    ttl_seconds:
        Age limit for served entries; ``None`` disables expiry.  Age
        is measured with ``clock`` (monotonic by default).
    clock:
        Injectable time source, so tests can expire entries without
        sleeping.
    registry:
        Metrics registry for hit/miss/eviction counters (the
        process-wide one by default).
    staleness_budget:
        Maximum cumulative Theorem-2 staleness charge an entry may
        carry and still be served; an entry crossing it is evicted at
        charge time (and double-checked at lookup time, so a stale
        read can never slip past the bound).
    """

    def __init__(
        self,
        capacity: int = 128,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        registry: MetricsRegistry | None = None,
        staleness_budget: float = DEFAULT_STALENESS_BUDGET,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(
                f"ttl_seconds must be positive or None, got {ttl_seconds}"
            )
        if staleness_budget <= 0:
            raise ValueError(
                f"staleness_budget must be positive, got {staleness_budget}"
            )
        self._capacity = int(capacity)
        self._ttl = ttl_seconds
        self._clock = clock
        self._registry = registry if registry is not None else REGISTRY
        self._budget = float(staleness_budget)
        self._lock = threading.RLock()
        self._entries: "OrderedDict[tuple[str, str, str], _Entry]" = (
            OrderedDict()
        )

    @property
    def staleness_budget(self) -> float:
        """The Theorem-2 budget entries are charged against."""
        return self._budget

    # ------------------------------------------------------------------
    # Metrics plumbing
    # ------------------------------------------------------------------

    def _count_hit(self) -> None:
        self._registry.counter(
            "repro_serve_store_hits_total",
            "Score-store lookups answered from a warm entry.",
        ).inc()

    def _count_miss(self) -> None:
        self._registry.counter(
            "repro_serve_store_misses_total",
            "Score-store lookups that required a solve.",
        ).inc()

    def _count_eviction(self, reason: str, amount: int = 1) -> None:
        if amount:
            self._registry.counter(
                "repro_serve_store_evictions_total",
                "Score-store entries dropped, by reason.",
                reason=reason,
            ).inc(amount)

    def _set_size_gauge(self) -> None:
        self._registry.gauge(
            "repro_serve_store_entries",
            "Score-store entries currently resident.",
        ).set(len(self._entries))
        self._registry.gauge(
            "repro_update_stale_entries",
            "Store entries currently served in the stale-but-bounded "
            "state.",
        ).set(
            sum(1 for entry in self._entries.values() if entry.stale)
        )

    def _count_staleness(self, amount: float) -> None:
        if amount > 0:
            self._registry.counter(
                "repro_update_staleness_spent_total",
                "Cumulative Theorem-2 staleness charge applied to "
                "store entries (L1 score-mass units).",
            ).inc(amount)
        self._registry.gauge(
            "repro_update_staleness_budget",
            "Per-entry Theorem-2 staleness budget of the score store.",
        ).set(self._budget)

    # ------------------------------------------------------------------
    # Core cache operations
    # ------------------------------------------------------------------

    @staticmethod
    def _key(
        fingerprint: str,
        local_nodes: np.ndarray,
        damping: float,
        variant: str = "exact",
    ) -> tuple[str, str, str, str]:
        return (
            fingerprint,
            subgraph_digest(local_nodes),
            _damping_token(damping),
            str(variant),
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(
        self,
        graph: CSRGraph,
        local_nodes: np.ndarray,
        damping: float,
        variant: str = "exact",
    ) -> SubgraphScores | None:
        """The warm entry for this (graph, subgraph, ε), or ``None``.

        Convenience wrapper over :meth:`lookup` for callers that do
        not care about staleness accounting.
        """
        hit = self.lookup(graph, local_nodes, damping, variant)
        return None if hit is None else hit.scores

    def lookup(
        self,
        graph: CSRGraph,
        local_nodes: np.ndarray,
        damping: float,
        variant: str = "exact",
    ) -> StoreHit | None:
        """The warm entry plus staleness accounting, or ``None``.

        A hit refreshes the entry's LRU position.  An entry older than
        the TTL, or one whose cumulative staleness charge exceeds the
        budget, is evicted and reported as a miss — the lookup-time
        budget check is the last line of defence ensuring an
        over-budget entry is *never* served, whatever path charged it.
        ``variant`` scopes the lookup to one estimator family —
        estimated entries can never satisfy an exact request.
        """
        key = self._key(
            graph_fingerprint(graph), local_nodes, damping, variant
        )
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._count_miss()
                return None
            if (
                self._ttl is not None
                and self._clock() - entry.inserted_at > self._ttl
            ):
                del self._entries[key]
                self._count_eviction("ttl")
                self._count_miss()
                self._set_size_gauge()
                return None
            if entry.staleness > self._budget:
                del self._entries[key]
                self._count_eviction("staleness")
                self._count_miss()
                self._set_size_gauge()
                return None
            self._entries.move_to_end(key)
            self._count_hit()
            return StoreHit(
                scores=entry.scores,
                stale=entry.stale,
                staleness=entry.staleness,
            )

    def put(
        self,
        graph: CSRGraph,
        local_nodes: np.ndarray,
        damping: float,
        scores: SubgraphScores,
        stale: bool = False,
        staleness: float = 0.0,
        variant: str = "exact",
    ) -> None:
        """Insert (or refresh) an entry, evicting LRU beyond capacity.

        ``stale`` / ``staleness`` let an incremental refresher record
        the residual bound of a warm-started re-rank (anything not
        bit-identical to a cold solve stays flagged with its bound);
        a default put inserts a fresh, charge-free entry.  Estimated
        scores are stored under their estimator's ``variant`` so they
        never shadow exact entries.
        """
        fingerprint = graph_fingerprint(graph)
        key = self._key(fingerprint, local_nodes, damping, variant)
        with self._lock:
            self._entries[key] = _Entry(
                scores=scores,
                fingerprint=fingerprint,
                digest=key[1],
                damping=float(damping),
                inserted_at=self._clock(),
                stale=bool(stale),
                staleness=float(staleness),
                variant=str(variant),
            )
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._count_eviction("capacity")
            self._set_size_gauge()

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._count_eviction("invalidated", dropped)
            self._set_size_gauge()
            return dropped

    def invalidate_graph(self, graph: CSRGraph) -> int:
        """Drop every entry belonging to ``graph``; returns the count."""
        fingerprint = graph_fingerprint(graph)
        with self._lock:
            doomed = [
                key for key in self._entries if key[0] == fingerprint
            ]
            for key in doomed:
                del self._entries[key]
            self._count_eviction("invalidated", len(doomed))
            self._set_size_gauge()
            return len(doomed)

    def stats(self) -> dict:
        """Current size/limits (counters live in the registry)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self._capacity,
                "ttl_seconds": self._ttl,
                "stale_entries": sum(
                    1
                    for entry in self._entries.values()
                    if entry.stale
                ),
                "staleness_budget": self._budget,
            }

    # ------------------------------------------------------------------
    # Update-driven invalidation
    # ------------------------------------------------------------------

    def apply_update(
        self,
        old_graph: CSRGraph,
        new_graph: CSRGraph,
        delta: GraphDelta | None = None,
        hops: int = 2,
        migrate_unaffected: bool = True,
        refresher: (
            Callable[[CSRGraph, np.ndarray, float], SubgraphScores] | None
        ) = None,
        old_scores: np.ndarray | None = None,
    ) -> StoreUpdateReport:
        """Absorb a graph update: charge, migrate stale, refresh.

        Every surviving entry of ``old_graph`` is rekeyed to
        ``new_graph``'s fingerprint in the *stale-but-bounded* state:
        flagged stale, with the update's Theorem-2 charge added to its
        cumulative staleness (see
        :func:`repro.updates.rerank.staleness_charge_bound`).  Entries
        whose subgraph intersects the update's affected region go onto
        the refresh work list (``report.stale_entries``); disjoint
        entries just carry the charge.  An entry whose cumulative
        charge would exceed the staleness budget is evicted instead —
        over-budget entries are never served, which :meth:`lookup`
        double-checks at read time.

        Pass ``migrate_unaffected=False`` for strict semantics
        (everything keyed to the old graph is dropped cold).

        ``old_scores`` — the old graph's global score vector, when the
        caller has one — tightens the charge: the changed pages'
        actual score mass feeds Ng et al.'s perturbation bound.
        Without it each changed page is charged the uniform surrogate
        ``1/N`` (documented, conservative only in expectation — pass
        real scores when serving under a tight budget).

        ``refresher(new_graph, local_nodes, damping)`` — typically the
        service's solve path, or a splice re-rank — is invoked for each
        entry on the refresh work list to recompute it eagerly and
        reinsert it fresh; without one, stale entries keep serving
        flagged until a caller refreshes them.
        """
        region = affected_region(old_graph, new_graph, hops, delta)
        old_n = old_graph.num_nodes
        new_n = new_graph.num_nodes
        if delta is not None and not delta.is_empty:
            seeds = np.union1d(
                delta.touched_sources(),
                np.arange(old_n, new_n, dtype=np.int64),
            )
        else:
            from repro.updates.affected import changed_pages

            seeds = changed_pages(old_graph, new_graph)
        if old_scores is not None:
            old_scores = np.asarray(old_scores, dtype=np.float64)
            stale_mass = np.full(new_n, 1.0 / new_n)
            stale_mass[:old_n] = old_scores
            changed_mass = float(stale_mass[seeds].sum())
        else:
            changed_mass = seeds.size / max(old_n, 1)

        from repro.updates.rerank import staleness_charge_bound

        old_fp = graph_fingerprint(old_graph)
        new_fp = graph_fingerprint(new_graph)
        work_list: list[tuple[np.ndarray, float]] = []
        evicted = 0
        migrated = 0
        stale_count = 0
        max_charge = 0.0
        with self._lock:
            self._registry.counter(
                "repro_update_applied_total",
                "Graph updates absorbed by the score store.",
            ).inc()
            for key in list(self._entries):
                if key[0] != old_fp:
                    continue
                entry = self._entries.pop(key)
                nodes = np.asarray(entry.scores.local_nodes)
                if not migrate_unaffected:
                    evicted += 1
                    self._count_eviction("invalidated")
                    if entry.variant == "exact":
                        work_list.append((nodes, entry.damping))
                    continue
                damping = entry.damping
                delta_e = 2.0 * damping / (1.0 - damping) * changed_mass
                charge = staleness_charge_bound(delta_e, damping)
                max_charge = max(max_charge, charge)
                self._count_staleness(charge)
                staleness = entry.staleness + charge
                affected = bool(
                    np.intersect1d(
                        nodes, region, assume_unique=True
                    ).size
                )
                # Estimated entries carry the same Theorem-2 charge on
                # top of their sampling/push certificate, but the exact
                # refresher must not recompute them (its output would
                # not be this estimator's scores) — they serve stale
                # until re-estimated or evicted.
                exact_variant = entry.variant == "exact"
                if staleness > self._budget:
                    # Over budget: the Theorem-2 bound no longer
                    # vouches for these scores — evict, never serve.
                    evicted += 1
                    self._count_eviction("staleness")
                    if exact_variant:
                        work_list.append((nodes, damping))
                    continue
                self._entries[(new_fp, key[1], key[2], key[3])] = _Entry(
                    scores=entry.scores,
                    fingerprint=new_fp,
                    digest=key[1],
                    damping=damping,
                    inserted_at=self._clock(),
                    stale=True,
                    staleness=staleness,
                    variant=entry.variant,
                )
                if affected:
                    stale_count += 1
                    if exact_variant:
                        work_list.append((nodes, damping))
                else:
                    migrated += 1
            self._set_size_gauge()

        # The old operator is dead either way: drop its cached
        # transition derivations alongside the score entries.
        from repro.perf.cache import GLOBAL_TRANSITION_CACHE

        GLOBAL_TRANSITION_CACHE.invalidate(old_graph)

        refreshed = 0
        if refresher is not None:
            for nodes, damping in work_list:
                scores = refresher(new_graph, nodes, damping)
                self.put(
                    new_graph,
                    np.asarray(scores.local_nodes),
                    damping,
                    scores,
                )
                refreshed += 1
        return StoreUpdateReport(
            region=region,
            evicted=evicted,
            migrated=migrated,
            refreshed=refreshed,
            stale=stale_count,
            staleness_charge=max_charge,
            stale_entries=tuple(work_list),
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def persist(self, directory: str | os.PathLike) -> int:
        """Write every entry to ``directory`` (one npz per entry).

        Returns the number of files written.  Scalars, the method
        label, the *full* ``extras`` mapping (as JSON) and the entry's
        stale/staleness/variant state ride along with the score
        arrays, so a warm-loaded entry round-trips the complete
        :class:`SubgraphScores` accounting — an estimated entry keeps
        its ``error_bound``/``edges_touched`` certificate across a
        restart.
        """
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        written = 0
        with self._lock:
            entries = list(self._entries.items())
        for key, entry in entries:
            name = hashlib.sha256(
                "|".join(key).encode("ascii")
            ).hexdigest()[:32]
            scores = entry.scores
            np.savez(
                target / f"entry-{name}.npz",
                local_nodes=np.asarray(scores.local_nodes),
                scores=np.asarray(scores.scores),
                iterations=np.int64(scores.iterations),
                residual=np.float64(scores.residual),
                converged=np.bool_(scores.converged),
                runtime_seconds=np.float64(scores.runtime_seconds),
                lambda_score=np.float64(
                    scores.extras.get("lambda_score", np.nan)
                ),
                method=np.str_(scores.method),
                fingerprint=np.str_(entry.fingerprint),
                damping=np.float64(entry.damping),
                extras_json=np.str_(_encode_extras(scores.extras)),
                stale=np.bool_(entry.stale),
                staleness=np.float64(entry.staleness),
                variant=np.str_(entry.variant),
            )
            written += 1
        return written

    def warm_load(
        self, directory: str | os.PathLike, graph: CSRGraph
    ) -> int:
        """Load persisted entries matching ``graph``'s fingerprint.

        Entries persisted for other graphs are skipped silently (the
        directory may hold several generations).  Returns the number
        of entries loaded; each gets a fresh TTL clock but keeps its
        persisted extras, stale flag, staleness charge and variant
        (files from before those fields were persisted load as fresh
        exact entries with the legacy lambda-score-only extras).
        """
        source = Path(directory)
        if not source.is_dir():
            return 0
        fingerprint = graph_fingerprint(graph)
        loaded = 0
        for path in sorted(source.glob("entry-*.npz")):
            with np.load(path) as archive:
                if str(archive["fingerprint"]) != fingerprint:
                    continue
                if "extras_json" in archive.files:
                    extras = json.loads(str(archive["extras_json"]))
                else:
                    extras = {}
                    lambda_score = float(archive["lambda_score"])
                    if not np.isnan(lambda_score):
                        extras["lambda_score"] = lambda_score
                scores = SubgraphScores(
                    local_nodes=np.asarray(
                        archive["local_nodes"], dtype=np.int64
                    ),
                    scores=np.asarray(
                        archive["scores"], dtype=np.float64
                    ),
                    method=str(archive["method"]),
                    iterations=int(archive["iterations"]),
                    residual=float(archive["residual"]),
                    converged=bool(archive["converged"]),
                    runtime_seconds=float(archive["runtime_seconds"]),
                    extras=extras,
                )
                damping = float(archive["damping"])
                stale = (
                    bool(archive["stale"])
                    if "stale" in archive.files
                    else False
                )
                staleness = (
                    float(archive["staleness"])
                    if "staleness" in archive.files
                    else 0.0
                )
                variant = (
                    str(archive["variant"])
                    if "variant" in archive.files
                    else "exact"
                )
            self.put(
                graph,
                np.asarray(scores.local_nodes),
                damping,
                scores,
                stale=stale,
                staleness=staleness,
                variant=variant,
            )
            loaded += 1
        return loaded
