"""End-to-end search quality: does a better ranking change answers?

Figure 1's full loop: a localized search engine indexes one domain,
users submit keyword queries, and Top-K answers come back ordered by a
subgraph ranking.  This example builds the engine three times — with
ApproxRank, with local PageRank, and with the gold global ranking —
runs the same query workload through each, and measures how often the
Top-10 answer sets agree with the gold engine.  The paper's §V-C claim
("for Top-K query answering, the accuracy of the ordering is more
important than the accuracy of the scores") becomes a concrete number.

Run with::

    python examples/search_quality.py [num_pages]
"""

from __future__ import annotations

import sys

import numpy as np

import repro
from repro.search import SyntheticLexicon, compare_engines
from repro.search.engine import reference_engine_scores


def main(num_pages: int = 20_000) -> None:
    print(f"generating AU-like web ({num_pages} pages)...")
    web = repro.make_au_like(num_pages=num_pages, seed=7)
    truth = repro.global_pagerank(web.graph)

    print("assigning terms (Zipfian, domain-coherent vocabulary)...")
    lexicon = SyntheticLexicon(
        web.graph,
        group_of=web.labels["domain"],
        num_terms=500,
        terms_per_page=8.0,
        coherence=0.5,
        seed=11,
    )

    # A cross-domain BFS crawl — the subgraph family where ranking
    # quality differs most between algorithms (Figure 7).
    seed_page = repro.default_bfs_seed(web.graph)
    nodes = repro.bfs_subgraph(web.graph, seed_page, 0.10)
    print(f"search engine over a 10% BFS crawl ({nodes.size} pages)")

    rankings = {
        "ApproxRank": repro.approxrank(web.graph, nodes),
        "local PageRank": repro.local_pagerank_baseline(
            web.graph, nodes
        ),
        "LPR2": repro.lpr2(web.graph, nodes),
    }
    reference = reference_engine_scores(truth.scores, nodes)

    # Query workload: popular single terms plus two-term conjunctions.
    popular = lexicon.popular_terms(30)
    rng = np.random.default_rng(5)
    queries = [[int(t)] for t in popular[:20]]
    queries += [
        [int(a), int(b)]
        for a, b in zip(
            rng.choice(popular, 10), rng.choice(popular, 10)
        )
        if a != b
    ]
    print(f"workload: {len(queries)} queries, Top-10 answers\n")

    print(f"{'ranking':16s} {'Top-10 agreement with gold engine':>35s}")
    print("-" * 53)
    for label, scores in rankings.items():
        agreement = compare_engines(
            scores, reference, lexicon, queries, k=10
        )
        print(f"{label:16s} {agreement:35.3f}")

    print(
        "\nA better subgraph ranking translates directly into answer "
        "lists that\nmatch what a global-PageRank-backed engine would "
        "return."
    )


if __name__ == "__main__":
    pages = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    main(pages)
