"""The end-to-end semantic pipeline: query→select→rank→dedup.

One object owns the whole offline path so the CLI, the bench suite,
and the serving route all run *the same code*: the serving contract
(ISSUE: a ``/semantic-search`` answer is bit-identical to the offline
pipeline for the exact estimator) holds because there is only one
pipeline to disagree with.

The pipeline is split at its natural caching seam:

* :meth:`SemanticPipeline.select` — query → neighborhood (pure
  function of the query and the embedding config; the serving layer
  caches it by :func:`semantic_query_digest`);
* ranking — exact :func:`~repro.core.approxrank.approxrank` or any
  :mod:`repro.estimation` engine (the serving layer swaps in its
  store-backed ``rank_with_meta`` here);
* :meth:`SemanticPipeline.finish` — ranked neighborhood → matched,
  deduplicated Top-K answer.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.approxrank import ApproxRankPreprocessor, approxrank
from repro.estimation import resolve_estimator
from repro.exceptions import DatasetError
from repro.graph.digraph import CSRGraph
from repro.pagerank.result import SubgraphScores
from repro.pagerank.solver import PowerIterationSettings
from repro.search.engine import SearchHit
from repro.search.lexicon import SyntheticLexicon
from repro.semantic.dedup import DedupResult, deduplicate_answers
from repro.semantic.embeddings import PageEmbeddings
from repro.semantic.similarity import Retrieval, SemanticRetriever
from repro.semantic.subgraph import expand_neighborhood

__all__ = [
    "SemanticAnswer",
    "SemanticHit",
    "SemanticPipeline",
    "SemanticSelection",
    "semantic_query_digest",
]

# How many ranked pages enter the dedup pass per requested answer:
# merging can only shrink the pool, so dedup sees more than k pages
# and the Top-K after collapsing is still full.
_DEDUP_POOL_FACTOR = 4


def semantic_query_digest(
    terms: Iterable[int],
    top_m: int,
    similarity_threshold: float,
    max_hops: int,
    dim: int,
    seed: int,
) -> str:
    """Canonical digest of a query + selection configuration.

    Two requests with the same digest select the same neighborhood
    on the same embedding space — the serving layer uses this as its
    selection-cache key and the shard router as its placement key
    (the semantic analogue of ``subgraph_digest``).
    """
    canonical = json.dumps(
        {
            "terms": sorted({int(t) for t in terms}),
            "top_m": int(top_m),
            "similarity_threshold": repr(
                float(similarity_threshold)
            ),
            "max_hops": int(max_hops),
            "dim": int(dim),
            "seed": int(seed),
        },
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()


@dataclass(frozen=True)
class SemanticHit:
    """One deduplicated answer of a semantic query."""

    page: int
    score: float
    rank: int
    similarity: float
    cluster_size: int
    merged_score: float


@dataclass(frozen=True)
class SemanticSelection:
    """A query's selected neighborhood plus selection accounting."""

    nodes: np.ndarray
    retrieval: Retrieval
    similarities: np.ndarray
    query_digest: str


@dataclass(frozen=True)
class SemanticAnswer:
    """The full outcome of one semantic query.

    ``hits`` is the deduplicated Top-K; ``scores`` the underlying
    neighborhood ranking (exact or estimated — ``estimated`` /
    ``error_bound`` mirror the serving flags); ``extras`` records
    the dedup bookkeeping (members and merged mass per retained
    answer) and the pipeline counters.
    """

    hits: tuple[SemanticHit, ...]
    local_nodes: np.ndarray
    scores: SubgraphScores
    query_digest: str
    estimator: str
    estimated: bool
    error_bound: float
    candidates_pruned: int
    dedup_merges: int
    neighborhood_size: int
    extras: dict = field(default_factory=dict)

    def answer_pages(self) -> list[int]:
        """The answer's page ids, best first."""
        return [hit.page for hit in self.hits]


class SemanticPipeline:
    """Query→select→rank→dedup over one graph + lexicon.

    Parameters
    ----------
    graph:
        The global graph.
    lexicon:
        Term assignment of the graph's pages.
    embeddings:
        Pre-built (or loaded) page vectors; embedded fresh from the
        lexicon when omitted.
    dim / embedding_seed:
        Hashing configuration when embedding fresh.
    top_m / similarity_threshold / max_hops:
        Neighborhood selection defaults (overridable per query).
    tau:
        Dedup similarity threshold.
    settings:
        Solver settings for the exact path and estimator engines.
    preprocessor:
        Optional shared :class:`ApproxRankPreprocessor` (built
        lazily when omitted).
    """

    def __init__(
        self,
        graph: CSRGraph,
        lexicon: SyntheticLexicon,
        embeddings: PageEmbeddings | None = None,
        dim: int = 256,
        embedding_seed: int = 0,
        top_m: int = 20,
        similarity_threshold: float = 0.05,
        max_hops: int = 1,
        tau: float = 0.9,
        settings: PowerIterationSettings | None = None,
        preprocessor: ApproxRankPreprocessor | None = None,
    ):
        if embeddings is None:
            embeddings = PageEmbeddings.from_lexicon(
                lexicon, dim=dim, seed=embedding_seed
            )
        if embeddings.num_pages != graph.num_nodes:
            raise DatasetError(
                "embeddings cover a different corpus: graph has "
                f"{graph.num_nodes} pages, embeddings "
                f"{embeddings.num_pages}"
            )
        self.graph = graph
        self.lexicon = lexicon
        self.embeddings = embeddings
        self.retriever = SemanticRetriever(embeddings, lexicon)
        self.top_m = int(top_m)
        self.similarity_threshold = float(similarity_threshold)
        self.max_hops = int(max_hops)
        self.tau = float(tau)
        self.settings = (
            settings
            if settings is not None
            else PowerIterationSettings()
        )
        self._preprocessor = preprocessor

    # ------------------------------------------------------------------
    # Stage 1: selection
    # ------------------------------------------------------------------

    def query_digest(self, terms: Iterable[int]) -> str:
        """Digest of ``terms`` under this pipeline's configuration."""
        return semantic_query_digest(
            terms,
            top_m=self.top_m,
            similarity_threshold=self.similarity_threshold,
            max_hops=self.max_hops,
            dim=self.embeddings.dim,
            seed=self.embeddings.seed,
        )

    def select(self, terms: Iterable[int]) -> SemanticSelection:
        """Select the query's semantic neighborhood ``G_l``."""
        term_list = [int(t) for t in terms]
        retrieval = self.retriever.retrieve(
            term_list,
            m=self.top_m,
            min_similarity=self.similarity_threshold,
        )
        if retrieval.pages.size == 0:
            raise DatasetError(
                "query matched no pages above similarity "
                f"{self.similarity_threshold}"
            )
        query = self.embeddings.embed_terms(term_list)
        similarities = self.embeddings.similarities(query)
        nodes = expand_neighborhood(
            self.graph,
            retrieval.pages,
            similarities,
            self.similarity_threshold,
            max_hops=self.max_hops,
        )
        return SemanticSelection(
            nodes=nodes,
            retrieval=retrieval,
            similarities=similarities,
            query_digest=self.query_digest(term_list),
        )

    # ------------------------------------------------------------------
    # Stage 3: answer assembly (stage 2 — ranking — is pluggable)
    # ------------------------------------------------------------------

    def finish(
        self,
        selection: SemanticSelection,
        scores: SubgraphScores,
        k: int = 10,
        estimator_name: str = "exact",
    ) -> SemanticAnswer:
        """Ranked neighborhood → deduplicated Top-K answer."""
        if k < 1:
            raise DatasetError(f"k must be >= 1, got {k}")
        pool_size = min(
            max(k * _DEDUP_POOL_FACTOR, k),
            selection.nodes.size,
        )
        ranked = scores.ranking()[:pool_size]
        pool = [
            SearchHit(
                page=int(page),
                score=float(scores.score_of(int(page))),
                rank=rank,
            )
            for rank, page in enumerate(ranked, start=1)
        ]
        dedup = deduplicate_answers(
            pool, self.embeddings, tau=self.tau
        )
        hits = tuple(
            SemanticHit(
                page=hit.page,
                score=hit.score,
                rank=rank,
                similarity=float(
                    selection.similarities[hit.page]
                ),
                cluster_size=len(cluster.members),
                merged_score=cluster.merged_score,
            )
            for rank, (hit, cluster) in enumerate(
                zip(dedup.hits[:k], dedup.clusters[:k]), start=1
            )
        )
        estimated = estimator_name != "exact"
        error_bound = float(
            scores.extras.get("error_bound", 0.0)
        )
        return SemanticAnswer(
            hits=hits,
            local_nodes=selection.nodes,
            scores=scores,
            query_digest=selection.query_digest,
            estimator=estimator_name,
            estimated=estimated,
            error_bound=error_bound,
            candidates_pruned=selection.retrieval.pruned,
            dedup_merges=dedup.merges,
            neighborhood_size=int(selection.nodes.size),
            extras={
                "clusters": [
                    {
                        "representative": c.representative,
                        "members": list(c.members),
                        "merged_score": c.merged_score,
                    }
                    for c in dedup.clusters[:k]
                ],
                "seeds": selection.retrieval.pages.tolist(),
                "candidates_scored": (
                    selection.retrieval.candidates
                ),
            },
        )

    # ------------------------------------------------------------------
    # The whole offline path
    # ------------------------------------------------------------------

    def run(
        self,
        terms: Iterable[int],
        k: int = 10,
        estimator: str | None = None,
    ) -> SemanticAnswer:
        """Run the full pipeline offline (select → rank → dedup).

        ``estimator`` is a spec string (``"montecarlo:walks=5000"``
        …); ``None``/``"exact"`` takes the exact
        :func:`approxrank` path, bit-identical to what the serving
        route returns for the same query.
        """
        term_list = [int(t) for t in terms]
        selection = self.select(term_list)
        if self._preprocessor is None:
            self._preprocessor = ApproxRankPreprocessor(self.graph)
        if estimator is None or estimator == "exact":
            scores = approxrank(
                self.graph,
                selection.nodes,
                self.settings,
                preprocessor=self._preprocessor,
            )
            name = "exact"
        else:
            engine = resolve_estimator(estimator)
            scores = engine.estimate(
                self.graph,
                selection.nodes,
                self.settings,
                self._preprocessor,
            )
            name = engine.name
        return self.finish(
            selection, scores, k=k, estimator_name=name
        )
