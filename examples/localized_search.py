"""Localized search engine: rank every domain of a multi-domain web.

The §I scenario behind the DS experiments: a localized search engine
indexes the pages of one domain, and its ranking must still reflect the
global link structure.  This example builds the AU-like dataset, runs
ApproxRank's one-off global preprocessing pass, then ranks *all 12
named domains* at local cost each — exactly the multi-subgraph
amortisation §IV-B advertises — and compares every estimate against
global PageRank and the local-PageRank baseline.

Run with::

    python examples/localized_search.py [num_pages]
"""

from __future__ import annotations

import sys
import time

import repro
from repro.generators.datasets import AU_NAMED_DOMAINS


def main(num_pages: int = 20_000) -> None:
    print(f"generating AU-like web ({num_pages} pages, 38 domains)...")
    web = repro.make_au_like(num_pages=num_pages, seed=7)

    print("computing ground truth (global PageRank) for comparison...")
    start = time.perf_counter()
    truth = repro.global_pagerank(web.graph)
    global_seconds = time.perf_counter() - start
    print(f"  global PageRank: {global_seconds:.2f} s, "
          f"{truth.iterations} iterations")

    print("\nApproxRank one-off global preprocessing pass...")
    prep = repro.ApproxRankPreprocessor(web.graph)
    print(f"  preprocessing: {prep.preprocess_seconds:.3f} s "
          "(shared by every domain below)")

    header = (
        f"{'domain':18s} {'n':>6s} {'AR ms':>7s} "
        f"{'AR footrule':>12s} {'localPR footrule':>17s} {'gain':>6s}"
    )
    print("\n" + header)
    print("-" * len(header))
    for domain, __ in AU_NAMED_DOMAINS:
        pages = repro.domain_subgraph(web, domain)
        estimate = repro.approxrank(web.graph, pages, preprocessor=prep)
        report = repro.evaluate_estimate(truth.scores, estimate)
        baseline = repro.local_pagerank_baseline(web.graph, pages)
        baseline_report = repro.evaluate_estimate(truth.scores, baseline)
        gain = baseline_report.footrule / max(report.footrule, 1e-12)
        print(
            f"{domain:18s} {pages.size:6d} "
            f"{report.runtime_seconds * 1000:7.1f} "
            f"{report.footrule:12.5f} {baseline_report.footrule:17.5f} "
            f"{gain:5.1f}x"
        )

    print(
        "\nApproxRank ranked every domain at local cost after one "
        "global pass;\nlocal PageRank, which ignores the external web, "
        "is consistently less accurate."
    )


if __name__ == "__main__":
    pages = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    main(pages)
