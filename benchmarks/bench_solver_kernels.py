#!/usr/bin/env python
"""Benchmark the solver kernel layer and emit ``BENCH_solver.json``.

Measures, on an ObjectRank-style reference workload (K personalised
walks over one web-like graph):

* K sequential single-vector solves vs one batched multi-vector solve
  (the batched kernel must win — that is the CI gate);
* cold build vs warm lookup of cached transition structures;
* per-iteration allocations of the seed-style solver step vs the
  in-place kernels.

Usage::

    PYTHONPATH=src python benchmarks/bench_solver_kernels.py           # full
    PYTHONPATH=src python benchmarks/bench_solver_kernels.py --smoke   # CI gate

Exit code is non-zero when the smoke gate fails (batched slower than
K sequential solves, or the kernels allocating as much as the legacy
step), so CI can run this directly.  See ``make bench-kernels-smoke``.
"""

from __future__ import annotations

import argparse
import sys

from repro.perf.bench import (
    DEFAULT_K,
    DEFAULT_OUTPUT,
    format_summary,
    run_kernel_benchmark,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark allocation-free/batched/cached solver kernels."
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workload + hard perf gate (CI tier-2 mode)",
    )
    parser.add_argument(
        "--pages", type=int, default=None,
        help="override the workload size (pages)",
    )
    parser.add_argument(
        "--k", type=int, default=DEFAULT_K,
        help=f"number of stacked walks (default {DEFAULT_K})",
    )
    parser.add_argument(
        "--seed", type=int, default=2009, help="RNG seed",
    )
    parser.add_argument(
        "--output", type=str, default=DEFAULT_OUTPUT,
        help=f"JSON record path (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    record = run_kernel_benchmark(
        smoke=args.smoke,
        pages=args.pages,
        k=args.k,
        seed=args.seed,
        output_path=args.output,
    )
    print(format_summary(record))
    print(f"[record written to {args.output}]", file=sys.stderr)
    if args.smoke and not record["gate_passed"]:
        print(
            "SMOKE GATE FAILED: batched kernel not faster than "
            "sequential single solves (or kernels allocate as much as "
            "the legacy step)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
