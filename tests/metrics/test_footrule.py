"""Unit tests for Spearman's footrule with ties (§V-B)."""

import numpy as np
import pytest

from repro.exceptions import MetricError
from repro.metrics.buckets import bucket_positions
from repro.metrics.footrule import footrule_distance, footrule_from_scores


class TestFootruleDistance:
    def test_identical_rankings_zero(self):
        positions = bucket_positions(np.array([0.3, 0.2, 0.1]))
        assert footrule_distance(positions, positions) == 0.0

    def test_reversed_ranking_is_one(self):
        # Full reversal attains the maximum displacement floor(n^2/2)
        # for even n.
        n = 6
        forward = np.arange(1, n + 1, dtype=float)
        backward = forward[::-1].copy()
        assert footrule_distance(forward, backward) == pytest.approx(1.0)

    def test_reversed_ranking_odd_n(self):
        n = 5
        forward = np.arange(1, n + 1, dtype=float)
        backward = forward[::-1].copy()
        # displacement = 2 * (4 + 2) = 12; floor(25/2) = 12.
        assert footrule_distance(forward, backward) == pytest.approx(1.0)

    def test_adjacent_swap(self):
        # Swapping two adjacent items displaces each by 1.
        a = np.array([1.0, 2.0, 3.0, 4.0])
        b = np.array([2.0, 1.0, 3.0, 4.0])
        assert footrule_distance(a, b) == pytest.approx(2 / 8)

    def test_symmetry(self):
        rng = np.random.default_rng(2)
        a = bucket_positions(rng.random(20))
        b = bucket_positions(rng.random(20))
        assert footrule_distance(a, b) == footrule_distance(b, a)

    def test_single_item_zero(self):
        assert footrule_distance(np.array([1.0]), np.array([1.0])) == 0.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(MetricError, match="aligned"):
            footrule_distance(np.ones(3), np.ones(4))

    def test_rejects_empty(self):
        with pytest.raises(MetricError, match="empty"):
            footrule_distance(np.array([]), np.array([]))


class TestFootruleFromScores:
    def test_score_scale_invariance(self):
        reference = np.array([0.5, 0.3, 0.2])
        estimate = np.array([0.2, 0.5, 0.3])
        assert footrule_from_scores(
            reference, estimate
        ) == footrule_from_scores(reference * 100, estimate * 7)

    def test_exact_scores_zero(self):
        scores = np.array([0.4, 0.1, 0.5])
        assert footrule_from_scores(scores, scores) == 0.0

    def test_same_order_different_values_zero(self):
        assert footrule_from_scores(
            np.array([0.9, 0.5, 0.1]), np.array([0.3, 0.2, 0.1])
        ) == 0.0

    def test_all_ties_vs_strict_order(self):
        # A constant estimate puts every item at the average position
        # (n+1)/2; against strict order 1..n the displacement is the
        # absolute deviation sum.
        reference = np.array([4.0, 3.0, 2.0, 1.0])
        estimate = np.ones(4)
        # positions: ref = [1,2,3,4], est = [2.5]*4 -> total 1.5+0.5+0.5+1.5 = 4
        assert footrule_from_scores(reference, estimate) == (
            pytest.approx(4 / 8)
        )

    def test_ties_handled_identically_on_both_sides(self):
        reference = np.array([0.5, 0.5, 0.1])
        estimate = np.array([0.7, 0.7, 0.2])
        assert footrule_from_scores(reference, estimate) == 0.0

    def test_tie_atol_forwarded(self):
        reference = np.array([0.5000, 0.5001, 0.1])
        estimate = np.array([0.5001, 0.5000, 0.1])
        strict = footrule_from_scores(reference, estimate)
        loose = footrule_from_scores(reference, estimate, tie_atol=0.01)
        assert strict > 0
        assert loose == 0.0

    def test_bounded_by_one(self):
        rng = np.random.default_rng(3)
        for __ in range(10):
            a, b = rng.random(15), rng.random(15)
            assert 0.0 <= footrule_from_scores(a, b) <= 1.0

    def test_shape_mismatch(self):
        with pytest.raises(MetricError, match="aligned"):
            footrule_from_scores(np.ones(2), np.ones(3))
