#!/usr/bin/env python
"""Benchmark the sharded cluster and emit ``BENCH_shard.json``.

Drives the :class:`~repro.serve.cluster.router.ShardRouter` front
door with a closed-loop load generator over a fleet-shape sweep
(1, 2, and 4 shards): ``--concurrency`` threads fire lock-stepped
``/rank`` requests for distinct subgraphs, and the record keeps
throughput, p50/p99 latency, and the hash-ring keyspace spread per
shape.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard.py           # full
    PYTHONPATH=src python benchmarks/bench_shard.py --smoke   # CI gate

Exit code is non-zero when the smoke gate fails.  The gate always
requires every routed answer to be bit-identical to the offline
ApproxRank solve for its subgraph (sharding partitions the request
keyspace, never the graph); the wall-clock speedup clause is
waivable on a single-core container only.  See
``make bench-shard-smoke``.
"""

from __future__ import annotations

import argparse
import sys

from repro.serve.cluster.bench import (
    DEFAULT_CONCURRENCY,
    DEFAULT_OUTPUT,
    format_shard_summary,
    run_shard_benchmark,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Benchmark the sharded serving cluster over a 1/2/4-"
            "shard sweep through the router front door."
        )
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workload + hard gate (CI tier-2 mode)",
    )
    parser.add_argument(
        "--pages", type=int, default=None,
        help="override the synthetic web size (pages)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=DEFAULT_CONCURRENCY,
        help="concurrent load-generator threads",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="rounds per fleet shape (default: 2 smoke / 4 full)",
    )
    parser.add_argument(
        "--seed", type=int, default=2009, help="RNG seed",
    )
    parser.add_argument(
        "--output", type=str, default=DEFAULT_OUTPUT,
        help=f"JSON record path (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    record = run_shard_benchmark(
        smoke=args.smoke,
        pages=args.pages,
        seed=args.seed,
        concurrency=args.concurrency,
        rounds=args.rounds,
        output_path=args.output,
    )
    print(format_shard_summary(record))
    if args.smoke and not record["gate_passed"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
