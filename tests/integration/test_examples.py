"""Smoke tests: every shipped example runs end-to-end at small scale.

Examples are documentation that executes; these tests keep them from
rotting.  Each example's ``main`` is invoked with a reduced page count
so the whole module stays fast.
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: (file name, main() kwargs) — sizes chosen for test speed.
PARAMETERISED_EXAMPLES = [
    ("localized_search.py", {"num_pages": 3000}),
    ("updated_region.py", {"num_pages": 3000}),
    ("p2p_network.py", {"num_pages": 3000}),
    ("search_quality.py", {"num_pages": 3000}),
    ("crawl_prioritization.py", {"num_pages": 3000}),
    ("focused_crawler.py", {"num_pages": 3000}),
    ("quickstart.py", {}),
    ("semantic_objectrank.py", {}),
]


def load_example(file_name: str):
    path = EXAMPLES_DIR / file_name
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_examples_directory_complete(self):
        shipped = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        covered = {name for name, __ in PARAMETERISED_EXAMPLES}
        assert shipped == covered, (
            "examples and smoke tests out of sync: "
            f"{shipped ^ covered}"
        )

    @pytest.mark.parametrize(
        "file_name,kwargs",
        PARAMETERISED_EXAMPLES,
        ids=[name for name, __ in PARAMETERISED_EXAMPLES],
    )
    def test_example_main_runs(self, file_name, kwargs, capsys):
        module = load_example(file_name)
        module.main(**kwargs)
        out = capsys.readouterr().out
        assert len(out) > 100  # every example narrates its result
