"""The shard router: one front door over a replicated worker fleet.

The router owns no solver.  It classifies, retries, breaks circuits,
sheds load, and — when a whole shard is gone — degrades honestly.  The
serving contract it enforces end to end:

    every ``/rank`` response is **bit-identical fresh**, or **flagged
    stale within the Theorem-2 budget**, or an **honest 503** — never
    silently wrong.

Mechanisms, in the order a request meets them:

* **load shedding** — beyond ``max_inflight`` concurrent forwards the
  request is refused on arrival (503 + ``Retry-After``) instead of
  queueing into timeout purgatory;
* **consistent-hash routing** — the subgraph digest picks the shard
  via the manager's :class:`~repro.p2p.partition.HashRing`, so a hot
  subgraph always warms the same shard's store (``/semantic-search``
  carries no node set, so it routes by the query-terms digest
  instead — same query, same shard, warm selection cache);
* **failure-classified retries** — transport failures go through
  :func:`~repro.resilience.policy.classify_failure` (connect resets
  and timeouts are retryable), HTTP statuses through
  :func:`~repro.resilience.policy.classify_http_status` (503/429
  retryable with ``Retry-After`` honoured, other 4xx/500 passed
  through verbatim — replaying a deterministic failure is not
  resilience); pacing and attempt caps come from a
  :class:`~repro.resilience.policy.RetryPolicy`, and every attempt is
  recorded as an :class:`~repro.resilience.policy.AttemptRecord`;
* **per-replica circuit breakers** — repeated failures open the
  breaker (seeded-jitter reopen), keeping the retry budget for
  replicas that might actually answer;
* **health-based ejection** — a background prober ejects replicas
  after consecutive ``/healthz`` failures and re-admits them when
  health *and* graph fingerprint are good again;
* **fingerprint gating** — a 200 whose ``graph_fingerprint`` differs
  from the router's current graph is treated as a retryable failure
  (the replica has not absorbed an update yet); this is what makes
  "never silently wrong" hold across update propagation races;
* **deadline propagation** — the remaining budget rides the
  ``X-Repro-Deadline`` header so a shard never solves for a caller
  that has already given up;
* **graceful degradation** — with every replica of a shard down, the
  router serves the last-known scores from its own replicated
  :class:`~repro.serve.store.ScoreStore`, flagged ``degraded`` (and
  ``stale`` + charged when they predate an update — the store's
  budget double-check guarantees over-budget entries are never
  served); with nothing in the store, an honest 503 carrying the full
  attempt history.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import logging
import time

import numpy as np

from repro.exceptions import (
    DatasetError,
    DeadlineExceededError,
    GraphError,
    ReproError,
    ServiceOverloadedError,
    SubgraphError,
)
from repro.graph.digraph import CSRGraph
from repro.obs.export import to_prometheus_text
from repro.obs.metrics import SECONDS_BUCKETS
from repro.pagerank.result import SubgraphScores
from repro.resilience.policy import (
    AttemptRecord,
    RetryPolicy,
    classify_failure,
    classify_http_status,
)
from repro.serve.cluster.breaker import CircuitBreaker
from repro.serve.cluster.http import http_request
from repro.serve.cluster.manager import ShardManager
from repro.serve.server import (
    _JSON,
    _QUERY_PSEUDO_HEADER,
    _TEXT,
    BackgroundServer,
    DEADLINE_HEADER,
    RankingServer,
    _scores_payload,
)
from repro.serve.store import (
    ScoreStore,
    graph_fingerprint,
    subgraph_digest,
)
from repro.updates.delta import GraphDelta, apply_delta

__all__ = ["ShardRouter", "ClusterHandle", "start_cluster"]

log = logging.getLogger(__name__)


def _terms_digest(terms) -> str:
    """Placement key for a semantic query (terms-only digest).

    The router cannot compute the replica's full
    :func:`~repro.semantic.pipeline.semantic_query_digest` (it does
    not know the embedding configuration), but placement only needs
    *consistency*: same terms, same shard.
    """
    canonical = json.dumps(sorted({int(t) for t in terms}))
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()


class _NullService:
    """The router serves no solver of its own; this stands in for the
    :class:`RankingService` the base server lifecycle expects."""

    async def close(self) -> None:
        return None

    def health(self) -> dict:
        return {"status": "ok", "role": "router"}


class _ReplicaState:
    """The router's live view of one replica.

    The handle is resolved through the manager on every access, so a
    replica the manager restarted (new port, new process) is picked up
    without re-registration.
    """

    def __init__(
        self,
        manager: ShardManager,
        shard: int,
        replica: int,
        breaker: CircuitBreaker,
    ):
        self.shard = shard
        self.replica = replica
        self._manager = manager
        self.breaker = breaker
        self.ejected = False
        self.synced = True
        self.consecutive_failures = 0

    @property
    def handle(self):
        return self._manager.handle(self.shard, self.replica)

    @property
    def name(self) -> str:
        return f"shard-{self.shard}/replica-{self.replica}"

    @property
    def admissible(self) -> bool:
        """Whether the router may forward a request here right now."""
        return (
            not self.ejected and self.synced and self.breaker.allows()
        )


class ShardRouter(RankingServer):
    """HTTP front door over a :class:`ShardManager` fleet.

    Parameters
    ----------
    manager:
        The replica fleet (booted here if not already started).
    retry_policy:
        Attempt cap and backoff pacing for forwards; the default is
        tuned for sub-second failover.
    store:
        The router's replicated last-known-scores store (degraded
        serving); a default :class:`ScoreStore` is created when
        omitted.
    attempt_timeout:
        Per-forward timeout; the effective per-attempt budget is the
        tighter of this and the request's remaining deadline.
    default_deadline_seconds:
        End-to-end budget applied when the request carries none.
    max_inflight:
        Concurrent-forward cap; excess requests are shed with 503.
    probe_interval / probe_timeout / eject_threshold:
        Health-prober cadence, per-probe timeout, and how many
        consecutive probe failures eject a replica.
    breaker_threshold / breaker_reset:
        Circuit-breaker trip count and base reopen delay.
    seed:
        Seeds the deterministic jitter of backoffs and breaker reopens.
    """

    ENDPOINTS: tuple[str, ...] = (
        "/rank", "/search", "/semantic-search", "/healthz",
        "/metrics", "/update",
    )

    def __init__(
        self,
        manager: ShardManager,
        retry_policy: RetryPolicy | None = None,
        store: ScoreStore | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        attempt_timeout: float = 2.0,
        default_deadline_seconds: float | None = None,
        max_inflight: int = 64,
        probe_interval: float = 0.25,
        probe_timeout: float = 0.5,
        eject_threshold: int = 2,
        breaker_threshold: int = 3,
        breaker_reset: float = 0.5,
        seed: int = 2009,
        update_timeout: float = 60.0,
        registry=None,
    ):
        super().__init__(
            _NullService(), host=host, port=port, registry=registry
        )
        manager.start()
        self._manager = manager
        self._graph: CSRGraph = manager.graph
        self._fingerprint = graph_fingerprint(manager.graph)[:16]
        self._store = (
            store
            if store is not None
            else ScoreStore(registry=self._registry)
        )
        self._retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(
                max_attempts=3,
                backoff_base=0.02,
                backoff_max=0.25,
                seed=seed,
            )
        )
        if attempt_timeout <= 0:
            raise ValueError(
                f"attempt_timeout must be positive, got {attempt_timeout}"
            )
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if eject_threshold < 1:
            raise ValueError(
                f"eject_threshold must be >= 1, got {eject_threshold}"
            )
        self._attempt_timeout = float(attempt_timeout)
        self._default_deadline = default_deadline_seconds
        self._max_inflight = int(max_inflight)
        self._probe_interval = float(probe_interval)
        self._probe_timeout = float(probe_timeout)
        self._eject_threshold = int(eject_threshold)
        self._update_timeout = float(update_timeout)
        self._inflight = 0
        self._prober_task: asyncio.Task | None = None
        self._update_lock = asyncio.Lock()
        self._states: dict[tuple[int, int], _ReplicaState] = {}
        for index, handle in enumerate(manager.all()):
            key = (handle.shard, handle.replica)
            self._states[key] = _ReplicaState(
                manager,
                handle.shard,
                handle.replica,
                CircuitBreaker(
                    failure_threshold=breaker_threshold,
                    reset_timeout=breaker_reset,
                    seed=seed + 101 * index,
                ),
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def ring(self):
        return self._manager.ring

    @property
    def fingerprint(self) -> str:
        """Short fingerprint of the cluster's current graph."""
        return self._fingerprint

    @property
    def store(self) -> ScoreStore:
        return self._store

    def replica_states(self) -> "list[_ReplicaState]":
        return [self._states[key] for key in sorted(self._states)]

    def cluster_health(self) -> dict:
        """The router's ``/healthz`` payload."""
        replicas = {}
        shard_ready = {s: 0 for s in range(self._manager.num_shards)}
        for state in self.replica_states():
            if state.admissible:
                shard_ready[state.shard] += 1
            replicas[state.name] = {
                "address": list(state.handle.address),
                "placement": state.handle.placement,
                "ejected": state.ejected,
                "synced": state.synced,
                "breaker": state.breaker.state,
                "consecutive_probe_failures": (
                    state.consecutive_failures
                ),
            }
        degraded_shards = [
            shard for shard, ready in shard_ready.items() if not ready
        ]
        return {
            "status": "degraded" if degraded_shards else "ok",
            "role": "router",
            "graph_fingerprint": self._fingerprint,
            "shards": self._manager.num_shards,
            "replicas_per_shard": self._manager.replicas_per_shard,
            "placement": self._manager.placement,
            "degraded_shards": degraded_shards,
            "inflight": self._inflight,
            "max_inflight": self._max_inflight,
            "replicas": replicas,
            "store": self._store.stats(),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        address = await super().start()
        self._prober_task = asyncio.create_task(self._probe_loop())
        return address

    async def stop(self) -> None:
        if self._prober_task is not None:
            self._prober_task.cancel()
            await asyncio.gather(
                self._prober_task, return_exceptions=True
            )
            self._prober_task = None
        await super().stop()

    # ------------------------------------------------------------------
    # Health probing: ejection and re-admission
    # ------------------------------------------------------------------

    async def _probe_loop(self) -> None:
        while True:
            await asyncio.sleep(self._probe_interval)
            await asyncio.gather(
                *(
                    self._probe_one(state)
                    for state in self._states.values()
                ),
                return_exceptions=True,
            )

    async def _probe_one(self, state: _ReplicaState) -> None:
        try:
            response = await http_request(
                *state.handle.address,
                "GET",
                "/healthz",
                timeout=self._probe_timeout,
            )
            payload = response.json()
            healthy = (
                response.status == 200
                and isinstance(payload, dict)
                and payload.get("status") == "ok"
            )
            fingerprint = (
                payload.get("graph_fingerprint")
                if isinstance(payload, dict)
                else None
            )
        except Exception:  # noqa: BLE001 — any probe failure counts
            healthy = False
            fingerprint = None
        if healthy:
            state.consecutive_failures = 0
            state.synced = fingerprint == self._fingerprint
            if state.ejected and state.synced:
                state.ejected = False
                log.info("re-admitted %s (healthy probe)", state.name)
                self._registry.counter(
                    "repro_cluster_readmissions_total",
                    "Replicas re-admitted after passing health probes.",
                ).inc()
        else:
            state.consecutive_failures += 1
            if (
                not state.ejected
                and state.consecutive_failures >= self._eject_threshold
            ):
                state.ejected = True
                log.warning(
                    "ejected %s after %d failed probes",
                    state.name,
                    state.consecutive_failures,
                )
                self._registry.counter(
                    "repro_cluster_ejections_total",
                    "Replicas ejected after consecutive failed "
                    "health probes.",
                ).inc()
        self._registry.gauge(
            "repro_cluster_breaker_state",
            "Circuit-breaker state per replica "
            "(0 closed, 1 half-open, 2 open).",
            replica=state.name,
        ).set(state.breaker.state_code)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: dict[str, str] | None = None,
    ):
        headers = headers or {}
        try:
            if path == "/healthz":
                if method != "GET":
                    return 405, {"error": "use GET"}, _JSON
                return 200, self.cluster_health(), _JSON
            if path == "/metrics":
                if method != "GET":
                    return 405, {"error": "use GET"}, _JSON
                text = to_prometheus_text(self._registry.snapshot())
                return 200, text, _TEXT
            if path in ("/rank", "/search", "/semantic-search"):
                if method != "POST":
                    return 405, {"error": "use POST"}, _JSON
                return await self._forward_ranked(path, body, headers)
            if path == "/update":
                if method != "POST":
                    return 405, {"error": "use POST"}, _JSON
                return await self._handle_update(body)
            return 404, {"error": f"unknown path {path}"}, _JSON
        except (ServiceOverloadedError, DeadlineExceededError) as exc:
            return 503, {
                "error": str(exc),
                "kind": type(exc).__name__,
            }, _JSON
        except (SubgraphError, GraphError, DatasetError, ValueError) as exc:
            return 400, {
                "error": str(exc),
                "kind": type(exc).__name__,
            }, _JSON
        except ReproError as exc:
            return 500, {
                "error": str(exc),
                "kind": type(exc).__name__,
            }, _JSON
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            return 500, {
                "error": f"internal error: {exc}",
                "kind": type(exc).__name__,
            }, _JSON

    def _count_outcome(self, endpoint: str, outcome: str) -> None:
        self._registry.counter(
            "repro_cluster_requests_total",
            "Requests through the shard router, by endpoint and "
            "outcome.",
            endpoint=endpoint,
            outcome=outcome,
        ).inc()

    def _count_retry(self, error: str) -> None:
        self._registry.counter(
            "repro_cluster_retries_total",
            "Forward attempts that failed and were retried or "
            "abandoned, by error type.",
            error=error,
        ).inc()

    def _resolve_damping(self, damping) -> float:
        if damping is None:
            return self._manager.settings.damping
        return float(damping)

    async def _forward_ranked(
        self, path: str, body: bytes, headers: dict[str, str]
    ):
        if self._inflight >= self._max_inflight:
            self._count_outcome(path, "shed")
            raise ServiceOverloadedError(
                f"router at max inflight ({self._max_inflight}); "
                "retry later"
            )
        self._inflight += 1
        started = time.perf_counter()
        try:
            return await self._forward_inner(path, body, headers)
        finally:
            self._inflight -= 1
            self._registry.histogram(
                "repro_cluster_forward_seconds",
                "End-to-end routed request latency (including "
                "retries and failover).",
                buckets=SECONDS_BUCKETS,
                endpoint=path,
            ).observe(time.perf_counter() - started)

    async def _forward_inner(
        self, path: str, body: bytes, headers: dict[str, str]
    ):
        request = self._parse_json(body)
        damping = self._resolve_damping(request.get("damping"))
        # The connection handler strips the query string into a
        # pseudo-header; put it back on the forwarded target or the
        # replica never sees ?estimator= (and friends).
        query = headers.get(_QUERY_PSEUDO_HEADER, "")
        forward_path = path + "?" + query if query else path
        if path == "/semantic-search":
            # No node set in the body — the replica derives G_l from
            # the query.  Placement uses the query-terms digest (the
            # semantic analogue of the subgraph digest), so a hot
            # query always warms the same shard's selection and
            # score caches.
            terms = self._require_terms(request)
            local = None
            shard = self.ring.shard_for(_terms_digest(terms))
        else:
            nodes = self._require_nodes(request)
            local = np.unique(np.asarray(nodes, dtype=np.int64))
            shard = self.ring.shard_for(subgraph_digest(local))
        deadline = self._effective_deadline(request, headers)
        if deadline is None:
            deadline = self._default_deadline
        start = time.monotonic()
        deadline_at = (
            start + float(deadline) if deadline is not None else None
        )
        policy = self._retry_policy
        attempts: list[AttemptRecord] = []
        rotation = 0

        for attempt in range(1, policy.max_attempts + 1):
            last = attempt == policy.max_attempts
            remaining = None
            if deadline_at is not None:
                remaining = deadline_at - time.monotonic()
                if remaining <= 0:
                    attempts.append(self._attempt(
                        attempt, "DeadlineExceededError",
                        "end-to-end deadline spent before forwarding",
                        retryable=False, action="degrade", start=start,
                    ))
                    break
            state = self._pick_replica(shard, rotation)
            if state is None:
                attempts.append(self._attempt(
                    attempt, "NoReplicaAvailable",
                    f"no admissible replica for shard {shard}",
                    retryable=True,
                    action="degrade" if last else "retry",
                    start=start,
                ))
                if not last:
                    await self._pause(policy.backoff(attempt), deadline_at)
                continue
            rotation += 1
            timeout = self._attempt_timeout
            forward_headers: dict[str, str] = {}
            if remaining is not None:
                timeout = min(timeout, remaining)
                forward_headers[DEADLINE_HEADER] = f"{remaining:.6f}"
            try:
                response = await http_request(
                    *state.handle.address,
                    "POST",
                    forward_path,
                    body=body,
                    headers=forward_headers,
                    timeout=timeout,
                )
            except Exception as exc:  # noqa: BLE001 — classified below
                decision = classify_failure(exc)
                state.breaker.record_failure()
                self._count_retry(type(exc).__name__)
                attempts.append(self._attempt(
                    attempt, type(exc).__name__, str(exc),
                    retryable=decision.retryable,
                    action=(
                        "degrade"
                        if last or not decision.retryable
                        else "retry"
                    ),
                    start=start,
                ))
                if not decision.retryable:
                    break
                if not last:
                    await self._pause(policy.backoff(attempt), deadline_at)
                continue

            if response.status < 400:
                payload = response.json()
                if not isinstance(payload, dict):
                    payload = {}
                replica_fp = payload.get("graph_fingerprint")
                if (
                    path in ("/rank", "/semantic-search")
                    and replica_fp is not None
                    and replica_fp != self._fingerprint
                ):
                    # The replica answered from a different graph —
                    # correct bytes for the wrong operator.  Retryable:
                    # the prober re-admits it once it catches up.
                    state.synced = False
                    state.breaker.record_failure()
                    self._count_retry("GraphFingerprintMismatch")
                    attempts.append(self._attempt(
                        attempt, "GraphFingerprintMismatch",
                        f"{state.name} served graph {replica_fp}, "
                        f"cluster is at {self._fingerprint}",
                        retryable=True,
                        action="degrade" if last else "retry",
                        start=start,
                    ))
                    continue
                state.breaker.record_success()
                if path == "/rank":
                    self._remember(payload, damping)
                self._count_outcome(
                    path, "stale" if payload.get("stale") else "ok"
                )
                return 200, payload, _JSON

            decision = classify_http_status(response.status)
            if not decision.retryable:
                # The replica is healthy; the *request* is wrong (4xx)
                # or deterministically failing (500).  Pass it through
                # verbatim — replaying it elsewhere replays the bug.
                state.breaker.record_success()
                self._count_outcome(path, "fatal")
                return response.status, response.json(), _JSON
            state.breaker.record_failure()
            self._count_retry(f"http_{response.status}")
            attempts.append(self._attempt(
                attempt, f"Http{response.status}",
                str(
                    (response.json() or {}).get("error", "")
                    if isinstance(response.json(), dict)
                    else ""
                ),
                retryable=True,
                action="degrade" if last else "retry",
                start=start,
            ))
            if not last:
                pause = policy.backoff(attempt)
                retry_after = response.headers.get("retry-after")
                if retry_after:
                    try:
                        pause = max(
                            pause,
                            min(
                                float(retry_after),
                                policy.backoff_max,
                            ),
                        )
                    except ValueError:
                        pass
                await self._pause(pause, deadline_at)

        return self._degraded_answer(
            path, local, damping, shard, attempts
        )

    def _attempt(
        self,
        attempt: int,
        error_type: str,
        message: str,
        retryable: bool,
        action: str,
        start: float,
    ) -> AttemptRecord:
        record = AttemptRecord(
            attempt=attempt,
            stage="forward",
            error_type=error_type,
            message=message[:200],
            retryable=retryable,
            action=action,
            elapsed_seconds=time.monotonic() - start,
        )
        log.info("router: %s", record.describe())
        return record

    async def _pause(
        self, seconds: float, deadline_at: float | None
    ) -> None:
        if deadline_at is not None:
            seconds = min(
                seconds, max(deadline_at - time.monotonic(), 0.0)
            )
        if seconds > 0:
            await asyncio.sleep(seconds)

    def _pick_replica(
        self, shard: int, rotation: int
    ) -> _ReplicaState | None:
        ready = [
            self._states[(shard, replica)]
            for replica in range(self._manager.replicas_per_shard)
            if self._states[(shard, replica)].admissible
        ]
        if not ready:
            return None
        return ready[rotation % len(ready)]

    # ------------------------------------------------------------------
    # Degraded serving (router-local replicated store)
    # ------------------------------------------------------------------

    def _remember(self, payload: dict, damping: float) -> None:
        """Replicate a successful /rank answer into the router store.

        These are the last-known scores degraded mode serves; entries
        inherit the payload's staleness accounting verbatim, and
        update-time charging (:meth:`ScoreStore.apply_update`) plus
        the store's lookup-time budget double-check keep the Theorem-2
        guarantee intact even for answers served with every shard
        dark.
        """
        try:
            extras = {}
            if "lambda_score" in payload:
                extras["lambda_score"] = payload["lambda_score"]
            scores = SubgraphScores(
                local_nodes=np.asarray(
                    payload["nodes"], dtype=np.int64
                ),
                scores=np.asarray(
                    payload["scores"], dtype=np.float64
                ),
                method=payload["method"],
                iterations=int(payload["iterations"]),
                residual=float(payload["residual"]),
                converged=bool(payload["converged"]),
                runtime_seconds=float(payload["runtime_seconds"]),
                extras=extras,
            )
        except (KeyError, TypeError, ValueError):
            return
        self._store.put(
            self._graph,
            np.asarray(scores.local_nodes),
            damping,
            scores,
            stale=bool(payload.get("stale")),
            staleness=float(payload.get("staleness", 0.0)),
        )

    def _degraded_answer(
        self,
        path: str,
        local: np.ndarray,
        damping: float,
        shard: int,
        attempts: list[AttemptRecord],
    ):
        if path == "/rank":
            hit = self._store.lookup(self._graph, local, damping)
            if hit is not None:
                payload = _scores_payload(
                    hit.scores,
                    cache_hit=True,
                    stale=hit.stale,
                    staleness=hit.staleness,
                )
                payload["degraded"] = True
                payload["graph_fingerprint"] = self._fingerprint
                self._count_outcome(path, "degraded")
                log.warning(
                    "shard %d unavailable; served last-known scores "
                    "(stale=%s, staleness=%.3g) after %d attempt(s)",
                    shard,
                    hit.stale,
                    hit.staleness,
                    len(attempts),
                )
                return 200, payload, _JSON
        self._count_outcome(path, "unavailable")
        return 503, {
            "error": (
                f"shard {shard} is unavailable and no last-known "
                "scores are within the staleness budget"
            ),
            "kind": "ShardUnavailableError",
            "shard": shard,
            "attempts": [record.describe() for record in attempts],
        }, _JSON

    # ------------------------------------------------------------------
    # Cluster-wide updates
    # ------------------------------------------------------------------

    async def _handle_update(self, body: bytes):
        request = self._parse_json(body)
        delta = GraphDelta.from_payload(request.get("delta", request))
        loop = asyncio.get_running_loop()
        async with self._update_lock:
            old_graph = self._graph
            new_graph = await loop.run_in_executor(
                None, apply_delta, old_graph, delta
            )
            report = await loop.run_in_executor(
                None,
                lambda: self._store.apply_update(
                    old_graph, new_graph, delta=delta
                ),
            )
            # Flip identity *before* pushing: from this instant,
            # answers from not-yet-updated replicas fail the
            # fingerprint gate (retry → degrade) instead of being
            # served as silently-wrong fresh results.
            self._graph = new_graph
            self._fingerprint = graph_fingerprint(new_graph)[:16]
            self._manager.note_graph(new_graph)
            for state in self._states.values():
                state.synced = False
            results = await asyncio.gather(
                *(
                    self._push_update(state, body)
                    for state in self._states.values()
                ),
                return_exceptions=True,
            )
        updated = sum(1 for result in results if result is True)
        return 200, {
            "graph_fingerprint": self._fingerprint,
            "graph_nodes": self._graph.num_nodes,
            "replicas_updated": updated,
            "replicas_total": len(self._states),
            "router_store": {
                "stale": report.stale,
                "evicted": report.evicted,
                "migrated": report.migrated,
                "staleness_charge": report.staleness_charge,
            },
        }, _JSON

    async def _push_update(
        self, state: _ReplicaState, body: bytes
    ) -> bool:
        try:
            response = await http_request(
                *state.handle.address,
                "POST",
                "/update",
                body=body,
                timeout=self._update_timeout,
            )
        except Exception as exc:  # noqa: BLE001 — prober re-syncs later
            log.warning(
                "update push to %s failed: %s; the prober will "
                "re-admit it once restarted against the new graph",
                state.name,
                exc,
            )
            return False
        if response.status != 200:
            return False
        payload = response.json()
        if (
            isinstance(payload, dict)
            and payload.get("graph_fingerprint") == self._fingerprint
        ):
            state.synced = True
            return True
        return False


# ----------------------------------------------------------------------
# One-call cluster bootstrap
# ----------------------------------------------------------------------


class ClusterHandle:
    """A running cluster: fleet + router, both stoppable in one call."""

    def __init__(
        self,
        manager: ShardManager,
        router: ShardRouter,
        background: BackgroundServer,
    ):
        self.manager = manager
        self.router = router
        self.background = background

    @property
    def address(self) -> tuple[str, int]:
        """The router's bound (host, port)."""
        return self.background.address

    def stop(self) -> None:
        self.background.stop()
        self.manager.stop()

    def __enter__(self) -> "ClusterHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_cluster(
    graph: CSRGraph,
    num_shards: int = 2,
    replicas_per_shard: int = 1,
    placement: str = "thread",
    manager_kwargs: dict | None = None,
    **router_kwargs,
) -> ClusterHandle:
    """Boot a full cluster (fleet + router) on background threads.

    Returns a :class:`ClusterHandle`; its ``address`` is the router's
    front door.  Keyword arguments beyond the fleet shape go to
    :class:`ShardRouter`.
    """
    manager = ShardManager(
        graph,
        num_shards=num_shards,
        replicas_per_shard=replicas_per_shard,
        placement=placement,
        **(manager_kwargs or {}),
    ).start()
    try:
        router = ShardRouter(manager, **router_kwargs)
        background = BackgroundServer(router).start()
    except BaseException:
        manager.stop()
        raise
    return ClusterHandle(manager, router, background)
