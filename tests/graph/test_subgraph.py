"""Unit tests for subgraph extraction and boundary queries."""

import numpy as np
import pytest

from repro.exceptions import SubgraphError
from repro.graph.builder import graph_from_edges
from repro.graph.subgraph import (
    boundary_in_edges,
    boundary_out_edges,
    frontier,
    induced_subgraph,
    membership_mask,
    normalize_node_set,
    restrict_vector,
    subgraph_density_report,
)


@pytest.fixture
def example_graph():
    # Local set will be {0, 1, 2}; externals {3, 4}.
    return graph_from_edges(
        5,
        [
            (0, 1), (1, 2), (2, 0),      # local triangle
            (0, 3), (2, 4),              # out-boundary
            (3, 1), (3, 2), (4, 2),      # in-boundary
            (3, 4),                      # external-external
        ],
    )


class TestNormalize:
    def test_sorts_input(self, example_graph):
        result = normalize_node_set(example_graph, [2, 0, 1])
        assert result.tolist() == [0, 1, 2]

    def test_rejects_empty(self, example_graph):
        with pytest.raises(SubgraphError, match="empty"):
            normalize_node_set(example_graph, [])

    def test_rejects_duplicates(self, example_graph):
        with pytest.raises(SubgraphError, match="duplicate"):
            normalize_node_set(example_graph, [0, 0, 1])

    def test_rejects_out_of_range(self, example_graph):
        with pytest.raises(SubgraphError, match="must lie in"):
            normalize_node_set(example_graph, [0, 5])

    def test_membership_mask(self, example_graph):
        nodes = normalize_node_set(example_graph, [0, 2])
        mask = membership_mask(example_graph, nodes)
        assert mask.tolist() == [True, False, True, False, False]


class TestInducedSubgraph:
    def test_keeps_only_internal_edges(self, example_graph):
        induced = induced_subgraph(example_graph, [0, 1, 2])
        assert induced.graph.num_nodes == 3
        assert induced.graph.num_edges == 3  # the triangle only

    def test_id_mappings(self, example_graph):
        induced = induced_subgraph(example_graph, [1, 3])
        assert induced.local_to_global.tolist() == [1, 3]
        assert induced.to_local(np.array([3])).tolist() == [1]
        assert induced.to_local(np.array([0])).tolist() == [-1]
        assert induced.to_global(np.array([0, 1])).tolist() == [1, 3]

    def test_num_local(self, example_graph):
        assert induced_subgraph(example_graph, [0, 4]).num_local == 2

    def test_edge_weights_preserved(self):
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder(3)
        builder.add_edge(0, 1, 2.5)
        builder.add_edge(1, 2, 4.0)
        graph = builder.build()
        induced = induced_subgraph(graph, [0, 1])
        assert induced.graph.edge_weight(0, 1) == 2.5

    def test_unsorted_input_canonicalised(self, example_graph):
        induced = induced_subgraph(example_graph, [2, 0, 1])
        assert induced.local_to_global.tolist() == [0, 1, 2]


class TestBoundaries:
    def test_out_boundary(self, example_graph):
        sources, targets, weights = boundary_out_edges(
            example_graph, [0, 1, 2]
        )
        pairs = set(zip(sources.tolist(), targets.tolist()))
        assert pairs == {(0, 3), (2, 4)}
        assert np.all(weights == 1.0)

    def test_in_boundary(self, example_graph):
        sources, targets, __ = boundary_in_edges(example_graph, [0, 1, 2])
        pairs = set(zip(sources.tolist(), targets.tolist()))
        assert pairs == {(3, 1), (3, 2), (4, 2)}

    def test_external_external_edges_excluded(self, example_graph):
        out_src, out_tgt, __ = boundary_out_edges(example_graph, [0, 1, 2])
        assert (3, 4) not in set(zip(out_src.tolist(), out_tgt.tolist()))

    def test_whole_graph_has_empty_boundary(self, example_graph):
        sources, __, __ = boundary_out_edges(
            example_graph, range(example_graph.num_nodes)
        )
        assert sources.size == 0

    def test_frontier(self, example_graph):
        assert frontier(example_graph, [0, 1, 2]).tolist() == [3, 4]

    def test_frontier_empty_when_closed(self):
        graph = graph_from_edges(4, [(0, 1), (1, 0), (2, 3)])
        assert frontier(graph, [0, 1]).size == 0


class TestDensityReport:
    def test_report_fields(self, example_graph):
        report = subgraph_density_report(example_graph, [0, 1, 2])
        assert report["num_local"] == 3
        assert report["internal_edges"] == 3
        assert report["outgoing_boundary_edges"] == 2
        assert report["incoming_boundary_edges"] == 3
        assert 0 < report["internal_link_fraction"] < 1
        assert report["fraction_of_global"] == pytest.approx(0.6)

    def test_closed_subgraph_fraction_one(self):
        graph = graph_from_edges(4, [(0, 1), (1, 0), (2, 3)])
        report = subgraph_density_report(graph, [0, 1])
        assert report["internal_link_fraction"] == 1.0


class TestRestrictVector:
    def test_plain_restriction(self):
        values = np.array([0.1, 0.2, 0.3, 0.4])
        nodes = np.array([1, 3])
        assert restrict_vector(values, nodes).tolist() == [0.2, 0.4]

    def test_normalised_restriction(self):
        values = np.array([0.1, 0.2, 0.3, 0.4])
        nodes = np.array([1, 3])
        restricted = restrict_vector(values, nodes, normalize=True)
        assert restricted.sum() == pytest.approx(1.0)
        assert restricted[1] / restricted[0] == pytest.approx(2.0)

    def test_zero_mass_left_unnormalised(self):
        values = np.zeros(3)
        restricted = restrict_vector(values, np.array([0, 1]), normalize=True)
        assert restricted.tolist() == [0.0, 0.0]
