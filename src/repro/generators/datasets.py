"""Canonical synthetic datasets mirroring the paper's two crawls.

Two datasets drive the evaluation in §V:

* **politics** — a dmoz-seeded topical crawl (4.4M pages, 17.3M links)
  whose TS subgraphs are the categories *conservatism*, *liberalism*
  and *socialism*;
* **AU** — a crawl of 38 Australian university domains (3.88M pages,
  23.9M links) whose DS subgraphs are the 12 domains of Table IV and
  whose BFS subgraphs drive Figure 7.

Neither crawl is redistributable, so :func:`make_politics_like` and
:func:`make_au_like` generate scaled synthetic equivalents preserving
the structural quantities the experiments depend on: the named
subgroup *shares* (Table IV column 2 for AU; ≈0.3–1.4 % topic cores
for politics), the average out-degree (≈6.15 for AU, ≈3.9 for
politics), the intra-domain link majority, and a heavy-tailed degree
distribution.  The default sizes (tens of thousands of pages) keep a
full experiment run at laptop scale; pass a larger ``num_pages`` to
stress-test — all shares scale with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.exceptions import DatasetError
from repro.generators.config import WebGraphConfig
from repro.generators.weblike import generate_web_graph
from repro.graph.digraph import CSRGraph

#: The 12 DS domains of Table IV with their share (%) of the AU crawl.
AU_NAMED_DOMAINS: tuple[tuple[str, float], ...] = (
    ("acu.edu.au", 0.35),
    ("bond.edu.au", 0.50),
    ("canberra.edu.au", 0.66),
    ("cdu.edu.au", 0.75),
    ("ballarat.edu.au", 0.82),
    ("cqu.edu.au", 0.95),
    ("csu.edu.au", 2.58),
    ("adelaide.edu.au", 2.91),
    ("curtin.edu.au", 2.91),
    ("jcu.edu.au", 5.04),
    ("monash.edu.au", 8.45),
    ("anu.edu.au", 10.42),
)

#: Total domain count in the AU crawl (the paper: "38 domains").
AU_TOTAL_DOMAINS = 38

#: TS topics of §V-C with approximate category-core shares (%).  The
#: paper's subgraphs (category + 3-link crawl) are 0.3–1.4 % of the
#: 4.4M-page crawl; the cores here are sized so the focused-crawl
#: extractor lands in the same relative band.
POLITICS_TOPICS: tuple[tuple[str, float], ...] = (
    ("conservatism", 0.80),
    ("liberalism", 1.10),
    ("socialism", 0.25),
    ("environment", 0.90),
    ("elections", 0.70),
)

#: Label for pages outside every named topic.
GENERAL_TOPIC = "general"


@dataclass(frozen=True)
class WebDataset:
    """A generated web graph plus its experiment-relevant labelling.

    Attributes
    ----------
    name:
        Dataset identifier (``"au-like"`` / ``"politics-like"`` / ...).
    graph:
        The global graph ``G_g``.
    labels:
        Per-node label arrays keyed by dimension, e.g.
        ``labels["domain"][page]`` is the page's domain index.
    label_names:
        Human-readable names per dimension, e.g.
        ``label_names["domain"][3]``.
    seed:
        The generation seed (datasets are deterministic functions of
        ``(name, num_pages, seed)``).
    """

    name: str
    graph: CSRGraph
    labels: Mapping[str, np.ndarray]
    label_names: Mapping[str, tuple[str, ...]]
    seed: int
    description: str = ""

    def label_index(self, dimension: str, name: str) -> int:
        """Index of a named label, e.g. ``("domain", "anu.edu.au")``."""
        names = self.label_names.get(dimension)
        if names is None:
            raise DatasetError(
                f"dataset {self.name!r} has no dimension {dimension!r}; "
                f"available: {sorted(self.label_names)}"
            )
        try:
            return names.index(name)
        except ValueError:
            raise DatasetError(
                f"{name!r} is not a {dimension} of dataset "
                f"{self.name!r}"
            ) from None

    def pages_with_label(self, dimension: str, name: str) -> np.ndarray:
        """Global ids of all pages carrying the named label."""
        index = self.label_index(dimension, name)
        return np.flatnonzero(self.labels[dimension] == index)


def _filler_shares(count: int, remaining: float) -> list[float]:
    """Split the unnamed remainder into ``count`` declining shares."""
    weights = np.linspace(1.8, 0.4, count)
    weights = weights / weights.sum() * remaining
    return [float(w) for w in weights]


def make_au_like(
    num_pages: int = 50_000, seed: int = 7
) -> WebDataset:
    """The AU-crawl stand-in: 38 domains, Table IV shares, out-degree ≈6.

    The 12 named domains of Table IV keep their exact percentage share
    of the graph; 26 filler domains split the remaining ~63.7 %.
    """
    named_total = sum(share for __, share in AU_NAMED_DOMAINS)
    filler_count = AU_TOTAL_DOMAINS - len(AU_NAMED_DOMAINS)
    filler = _filler_shares(filler_count, 100.0 - named_total)
    names = [name for name, __ in AU_NAMED_DOMAINS] + [
        f"filler{i:02d}.edu.au" for i in range(filler_count)
    ]
    shares = [share for __, share in AU_NAMED_DOMAINS] + filler
    config = WebGraphConfig(
        num_pages=num_pages,
        group_shares=tuple(shares),
        mean_out_degree=6.15,  # 23.9M links / 3.88M pages
        intra_group_fraction=0.8,
        intra_size_exponent=0.35,  # larger domains more self-contained
        external_attractiveness_correlation=0.3,  # external fame is
        # only loosely predicted by internal centrality
        dangling_fraction=0.03,
        seed=seed,
    )
    graph, group_of = generate_web_graph(config)
    return WebDataset(
        name="au-like",
        graph=graph,
        labels={"domain": group_of},
        label_names={"domain": tuple(names)},
        seed=seed,
        description=(
            "Synthetic stand-in for the AU crawl (3.88M pages, 38 "
            "domains): Table IV domain shares, avg out-degree 6.15, "
            "80% intra-domain links."
        ),
    )


def make_politics_like(
    num_pages: int = 60_000, seed: int = 13
) -> WebDataset:
    """The politics-crawl stand-in: topic-clustered linking.

    Groups are *topics*; pages of a topic link mostly within it, which
    is what keeps a focused 3-link crawl from a topic core topical
    (the TS-subgraph construction of §V-C).
    """
    named_total = sum(share for __, share in POLITICS_TOPICS)
    names = [GENERAL_TOPIC] + [name for name, __ in POLITICS_TOPICS]
    shares = [100.0 - named_total] + [
        share for __, share in POLITICS_TOPICS
    ]
    config = WebGraphConfig(
        num_pages=num_pages,
        group_shares=tuple(shares),
        mean_out_degree=3.93,  # 17.3M links / 4.4M pages
        intra_group_fraction=0.75,
        dangling_fraction=0.04,
        seed=seed,
    )
    graph, group_of = generate_web_graph(config)
    return WebDataset(
        name="politics-like",
        graph=graph,
        labels={"topic": group_of},
        label_names={"topic": tuple(names)},
        seed=seed,
        description=(
            "Synthetic stand-in for the dmoz politics crawl (4.4M "
            "pages): topic-clustered linking, avg out-degree 3.93."
        ),
    )


def make_tiny_web(
    num_pages: int = 600, num_groups: int = 4, seed: int = 3
) -> WebDataset:
    """A small multi-domain web for tests, examples and quick runs."""
    if num_groups < 1:
        raise DatasetError(f"num_groups must be >= 1, got {num_groups}")
    shares = tuple(
        float(s) for s in np.linspace(2.0, 1.0, num_groups)
    )
    config = WebGraphConfig(
        num_pages=num_pages,
        group_shares=shares,
        mean_out_degree=5.0,
        intra_group_fraction=0.75,
        dangling_fraction=0.05,
        seed=seed,
    )
    graph, group_of = generate_web_graph(config)
    names = tuple(f"site{i}.example" for i in range(num_groups))
    return WebDataset(
        name="tiny-web",
        graph=graph,
        labels={"domain": group_of},
        label_names={"domain": names},
        seed=seed,
        description="Small multi-domain synthetic web for tests/examples.",
    )
