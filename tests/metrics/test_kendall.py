"""Unit tests for the Kendall distance."""

import numpy as np
import pytest

from repro.exceptions import MetricError
from repro.metrics.kendall import kendall_distance


class TestKendallDistance:
    def test_identical_zero(self):
        scores = np.array([0.5, 0.3, 0.2])
        assert kendall_distance(scores, scores) == 0.0

    def test_same_order_zero(self):
        assert kendall_distance(
            np.array([0.9, 0.5, 0.1]), np.array([3.0, 2.0, 1.0])
        ) == pytest.approx(0.0)

    def test_reversed_is_one(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert kendall_distance(a, a[::-1].copy()) == pytest.approx(1.0)

    def test_constant_vector_returns_half(self):
        assert kendall_distance(
            np.ones(5), np.arange(5, dtype=float)
        ) == 0.5

    def test_single_item_zero(self):
        assert kendall_distance(np.array([1.0]), np.array([2.0])) == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(7)
        a, b = rng.random(25), rng.random(25)
        assert kendall_distance(a, b) == pytest.approx(
            kendall_distance(b, a)
        )

    def test_bounded(self):
        rng = np.random.default_rng(8)
        for __ in range(10):
            a, b = rng.random(20), rng.random(20)
            assert 0.0 <= kendall_distance(a, b) <= 1.0

    def test_rejects_mismatched(self):
        with pytest.raises(MetricError, match="aligned"):
            kendall_distance(np.ones(2), np.ones(3))

    def test_rejects_empty(self):
        with pytest.raises(MetricError, match="empty"):
            kendall_distance(np.array([]), np.array([]))

    def test_diaconis_graham_vs_footrule(self):
        """K <= F <= 2K (Diaconis-Graham) on strict rankings, where F
        and K are the unnormalised metrics.  Checked via the
        normalised versions' consistent ordering on random data."""
        from repro.metrics.footrule import footrule_from_scores

        rng = np.random.default_rng(9)
        a = rng.permutation(30).astype(float)
        b = rng.permutation(30).astype(float)
        footrule = footrule_from_scores(a, b)
        kendall = kendall_distance(a, b)
        # Both metrics should agree that these random permutations are
        # far apart (sanity coupling, not the sharp inequality).
        assert footrule > 0.2
        assert kendall > 0.2
