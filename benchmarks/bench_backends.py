#!/usr/bin/env python
"""Benchmark the solver backends and emit ``BENCH_backend.json``.

Sweeps the pluggable solver backends over one AU-like reference
workload: a full global solve on every (backend, dtype) cell —
reference/numba × float64/float32 — plus a 1/2/4-thread
``rank_many_threaded`` sweep on the best available backend.

Usage::

    PYTHONPATH=src python benchmarks/bench_backends.py           # full
    PYTHONPATH=src python benchmarks/bench_backends.py --smoke   # CI gate

Exit code is non-zero when the smoke gate fails.  Accuracy clauses
(numba/float64 ≤ 1e-12 L1 vs reference; float32 within its documented
bound) always apply; speedup clauses the environment cannot exercise
— numba absent, single-core box — are waived and recorded in the
JSON (``waivers``) instead of failed.  See ``make bench-backends-smoke``.
"""

from __future__ import annotations

import argparse
import sys

from repro.perf.backend_bench import (
    DEFAULT_OUTPUT,
    format_backend_summary,
    run_backend_benchmark,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Benchmark the pluggable solver backends (reference vs "
            "numba, float64 vs float32, thread scaling)."
        )
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workload + hard gate (CI tier-2 mode)",
    )
    parser.add_argument(
        "--pages", type=int, default=None,
        help="override the AU-like dataset size (pages)",
    )
    parser.add_argument(
        "--seed", type=int, default=2009, help="RNG seed",
    )
    parser.add_argument(
        "--output", type=str, default=DEFAULT_OUTPUT,
        help=f"JSON record path (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    record = run_backend_benchmark(
        smoke=args.smoke,
        pages=args.pages,
        seed=args.seed,
        output_path=args.output,
    )
    print(format_backend_summary(record))
    if args.smoke and not record["gate_passed"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
