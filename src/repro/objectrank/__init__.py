"""ObjectRank-style semantic ranking on authority-transfer graphs.

§I of the paper motivates subgraph ranking with ObjectRank (Balmin,
Hristidis, Papakonstantinou — VLDB'04): a domain expert assigns
authority-transfer rates to the edge *types* of a schema graph
(Figure 2 shows DBLP's), the data graph inherits those rates as edge
weights, and ranking runs on the weighted graph.  Figure 3 then frames
the ApproxRank use case: the expert only cares about a subgraph of
entity types, and the external region's scores can be treated as
background.

This package provides the schema/data-graph machinery and wires it to
the core algorithms, so the paper's "our general approaches can be
applied to estimate ObjectRank scores as well" claim is executable.
"""

from repro.objectrank.datagraph import DataGraph, DataGraphBuilder
from repro.objectrank.dblp import dblp_schema, make_dblp_like
from repro.objectrank.rank import (
    objectrank,
    objectrank_multi,
    semantic_subgraph_rank,
)
from repro.objectrank.schema import AuthoritySchema, TransferEdge

__all__ = [
    "AuthoritySchema",
    "DataGraph",
    "DataGraphBuilder",
    "TransferEdge",
    "dblp_schema",
    "make_dblp_like",
    "objectrank",
    "objectrank_multi",
    "semantic_subgraph_rank",
]
