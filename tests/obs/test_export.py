"""Export sinks: Prometheus text, JSON snapshots, the obs-report view."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import obs
from repro.obs import telemetry
from repro.obs.export import (
    SNAPSHOT_SCHEMA,
    build_snapshot,
    load_snapshot,
    parse_prometheus_text,
    render_report,
    to_prometheus_text,
    write_snapshot,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, set_tracer

pytestmark = pytest.mark.obs

GOLDEN_PATH = Path(__file__).parent / "data" / "prometheus_golden.txt"
UPDATES_GOLDEN_PATH = (
    Path(__file__).parent / "data" / "prometheus_updates_golden.txt"
)
ESTIMATE_GOLDEN_PATH = (
    Path(__file__).parent / "data" / "prometheus_estimate_golden.txt"
)
SEMANTIC_GOLDEN_PATH = (
    Path(__file__).parent / "data" / "prometheus_semantic_golden.txt"
)


def golden_registry() -> MetricsRegistry:
    """A fixed workload whose text exposition is pinned by the golden file."""
    reg = MetricsRegistry()
    reg.counter(
        "repro_cache_hits_total", "Transition-matrix cache hits"
    ).inc(42)
    reg.counter(
        "repro_cache_misses_total", "Transition-matrix cache misses"
    ).inc(7)
    reg.gauge(
        "repro_cache_graphs_tracked", "Graphs currently cached"
    ).set(3)
    reg.counter(
        "repro_solver_solves_total",
        "Completed power-iteration solves",
        solver="power",
    ).inc(10)
    reg.counter(
        "repro_solver_solves_total",
        "Completed power-iteration solves",
        solver="batched",
    ).inc(2)
    hist = reg.histogram(
        "repro_solver_iterations",
        "Power-iteration sweeps per solve (per column for batched)",
        buckets=(10, 50, 100),
        solver="power",
    )
    for its in (5, 10, 11, 49, 50, 99, 150):
        hist.observe(its)
    reg.gauge(
        'repro_test_escaping', "Label escaping", path='a"b\\c\nd'
    ).set(1.5)
    return reg


def updates_golden_registry() -> MetricsRegistry:
    """A fixed update-stream workload pinned by the updates golden file.

    The ``repro_update_*`` family the incremental re-ranking engine
    emits: update counts, regions re-ranked, iterations saved by warm
    starts, staleness spend against the Theorem-2 budget, and
    background/eager refresh counts.
    """
    reg = MetricsRegistry()
    reg.counter(
        "repro_update_applied_total",
        "Graph updates absorbed by the score store.",
    ).inc(3)
    reg.counter(
        "repro_update_regions_reranked_total",
        "Affected regions re-ranked by the incremental engine.",
    ).inc(3)
    reg.counter(
        "repro_update_iterations_saved_total",
        "Power-iteration sweeps skipped by warm-started re-ranks "
        "relative to projected cold solves.",
    ).inc(250)
    reg.counter(
        "repro_update_staleness_spent_total",
        "Cumulative Theorem-2 staleness charge applied to store "
        "entries (L1 score-mass units).",
    ).inc(0.125)
    reg.gauge(
        "repro_update_staleness_budget",
        "Per-entry Theorem-2 staleness budget of the score store.",
    ).set(1.0)
    reg.gauge(
        "repro_update_stale_entries",
        "Store entries currently served in the stale-but-bounded "
        "state.",
    ).set(2)
    reg.counter(
        "repro_update_background_refreshes_total",
        "Stale store entries re-ranked after a graph update, by "
        "scheduling mode.",
        mode="background",
    ).inc(2)
    reg.counter(
        "repro_update_background_refreshes_total",
        "Stale store entries re-ranked after a graph update, by "
        "scheduling mode.",
        mode="eager",
    ).inc(1)
    return reg


def estimate_golden_registry() -> MetricsRegistry:
    """A fixed estimator workload pinned by the estimate golden file.

    Populated through :func:`record_estimate_metrics` itself — the
    exact publishing path the engines use — with synthetic
    ``SubgraphScores`` carrying fixed accounting, so the golden file
    pins the ``repro_estimate_*`` family names, labels and bucket
    layouts end to end.
    """
    import numpy as np

    from repro.estimation.base import record_estimate_metrics
    from repro.pagerank.result import SubgraphScores

    reg = MetricsRegistry()
    record_estimate_metrics(
        SubgraphScores(
            local_nodes=np.arange(3, dtype=np.int64),
            scores=np.full(3, 1 / 3),
            method="approxrank-montecarlo",
            iterations=0,
            residual=0.02,
            converged=True,
            runtime_seconds=0.25,
            extras={
                "estimator": "montecarlo",
                "error_bound": 0.02,
                "edges_touched": 1200,
                "walks": 500,
            },
        ),
        registry=reg,
    )
    record_estimate_metrics(
        SubgraphScores(
            local_nodes=np.arange(3, dtype=np.int64),
            scores=np.full(3, 1 / 3),
            method="approxrank-push",
            iterations=4,
            residual=8e-4,
            converged=True,
            runtime_seconds=0.004,
            extras={
                "estimator": "push",
                "error_bound": 8e-4,
                "edges_touched": 300,
                "pushes": 25,
            },
        ),
        registry=reg,
    )
    return reg


def semantic_golden_registry() -> MetricsRegistry:
    """A fixed semantic workload pinned by the semantic golden file.

    Populated through :func:`record_semantic_metrics` itself — the
    publishing path shared by the serving route, the CLI and the
    bench — with synthetic :class:`SemanticAnswer` accounting, so the
    golden file pins the ``repro_semantic_*`` family names, labels
    and the neighborhood bucket layout end to end.
    """
    import numpy as np

    from repro.pagerank.result import SubgraphScores
    from repro.semantic.metrics import record_semantic_metrics
    from repro.semantic.pipeline import SemanticAnswer

    def answer(estimator, estimated, bound, pruned, merges, size):
        return SemanticAnswer(
            hits=(),
            local_nodes=np.arange(size, dtype=np.int64),
            scores=SubgraphScores(
                local_nodes=np.arange(size, dtype=np.int64),
                scores=np.full(size, 1 / size),
                method="approxrank",
                iterations=8,
                residual=1e-10,
                converged=True,
                runtime_seconds=0.01,
                extras={},
            ),
            query_digest="0" * 64,
            estimator=estimator,
            estimated=estimated,
            error_bound=bound,
            candidates_pruned=pruned,
            dedup_merges=merges,
            neighborhood_size=size,
        )

    reg = MetricsRegistry()
    record_semantic_metrics(
        answer("exact", False, 0.0, 83, 2, 51), registry=reg
    )
    record_semantic_metrics(
        answer("montecarlo", True, 0.02, 40, 0, 7), registry=reg
    )
    return reg


class TestPrometheusText:
    def test_matches_golden_file(self):
        text = to_prometheus_text(golden_registry().snapshot())
        assert text == GOLDEN_PATH.read_text(encoding="utf-8")

    def test_updates_family_matches_golden_file(self):
        text = to_prometheus_text(updates_golden_registry().snapshot())
        assert text == UPDATES_GOLDEN_PATH.read_text(encoding="utf-8")

    def test_semantic_family_matches_golden_file(self):
        text = to_prometheus_text(semantic_golden_registry().snapshot())
        assert text == SEMANTIC_GOLDEN_PATH.read_text(encoding="utf-8")

    def test_estimate_family_matches_golden_file(self):
        text = to_prometheus_text(estimate_golden_registry().snapshot())
        assert text == ESTIMATE_GOLDEN_PATH.read_text(encoding="utf-8")

    def test_histogram_buckets_are_cumulative_and_end_at_count(self):
        text = to_prometheus_text(golden_registry().snapshot())
        lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_solver_iterations_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        # le="10", le="50", le="100", le="+Inf": inclusive bounds.
        assert counts == [2, 5, 6, 7]
        assert 'le="+Inf"' in lines[-1]
        assert "repro_solver_iterations_count{solver=\"power\"} 7" in text

    def test_integers_render_without_decimal_point(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_total").inc(5)
        reg.gauge("repro_test_fractional").set(2.25)
        text = to_prometheus_text(reg.snapshot())
        assert "repro_test_total 5\n" in text
        assert "repro_test_fractional 2.25" in text

    def test_empty_registry_renders_empty_string(self):
        assert to_prometheus_text(MetricsRegistry().snapshot()) == ""


class TestParsePrometheusText:
    """The exposition parser is the exact inverse of the renderer."""

    def test_round_trip_is_exact(self):
        # Tied to the same fixed workload the golden file pins: what
        # the renderer emits, the parser must reconstruct exactly —
        # histograms de-cumulated, label escapes unwound, ints intact.
        snapshot = golden_registry().snapshot()
        text = to_prometheus_text(snapshot)
        assert parse_prometheus_text(text)["families"] == (
            snapshot["families"]
        )

    def test_golden_file_parses_back_to_the_registry(self):
        parsed = parse_prometheus_text(
            GOLDEN_PATH.read_text(encoding="utf-8")
        )
        assert parsed["families"] == (
            golden_registry().snapshot()["families"]
        )

    def test_updates_golden_file_parses_back_to_the_registry(self):
        parsed = parse_prometheus_text(
            UPDATES_GOLDEN_PATH.read_text(encoding="utf-8")
        )
        assert parsed["families"] == (
            updates_golden_registry().snapshot()["families"]
        )

    def test_estimate_golden_file_parses_back_to_the_registry(self):
        parsed = parse_prometheus_text(
            ESTIMATE_GOLDEN_PATH.read_text(encoding="utf-8")
        )
        assert parsed["families"] == (
            estimate_golden_registry().snapshot()["families"]
        )

    def test_semantic_golden_file_parses_back_to_the_registry(self):
        parsed = parse_prometheus_text(
            SEMANTIC_GOLDEN_PATH.read_text(encoding="utf-8")
        )
        assert parsed["families"] == (
            semantic_golden_registry().snapshot()["families"]
        )

    def test_histogram_buckets_decumulated(self):
        parsed = parse_prometheus_text(
            to_prometheus_text(golden_registry().snapshot())
        )
        family = parsed["families"]["repro_solver_iterations"]
        sample = family["samples"][0]
        # Per-bucket counts for (10, 50, 100, +Inf), not cumulative.
        assert sample["bucket_counts"] == [2, 3, 1, 1]
        assert sample["count"] == 7
        assert family["buckets"] == [10, 50, 100]

    def test_label_escapes_unwound(self):
        parsed = parse_prometheus_text(
            to_prometheus_text(golden_registry().snapshot())
        )
        sample = parsed["families"]["repro_test_escaping"]["samples"][0]
        assert sample["labels"]["path"] == 'a"b\\c\nd'

    def test_empty_text_parses_to_no_families(self):
        assert parse_prometheus_text("")["families"] == {}

    def test_garbage_line_rejected(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_prometheus_text("!!! not an exposition line")


class TestSnapshotRoundTrip:
    def test_build_snapshot_is_json_serialisable(self):
        obs.enable()
        telemetry.reset()
        tracer = Tracer()
        set_tracer(tracer)
        with tracer.span("unit-test"):
            telemetry.record_solve(
                "power",
                iterations=3,
                residual=1e-8,
                converged=True,
                damping=0.85,
                runtime_seconds=0.001,
            )
        snapshot = build_snapshot(golden_registry())
        encoded = json.dumps(snapshot)  # must not raise
        decoded = json.loads(encoded)
        assert decoded["schema"] == SNAPSHOT_SCHEMA
        assert decoded["obs_enabled"] is True
        assert decoded["spans"][0]["name"] == "unit-test"
        assert decoded["solve_history"][0]["solver"] == "power"

    def test_write_then_load(self, tmp_path):
        target = tmp_path / "nested" / "obs.json"
        written = write_snapshot(target, registry=golden_registry())
        loaded = load_snapshot(target)
        assert loaded == json.loads(json.dumps(written))

    def test_load_rejects_non_snapshot_json(self, tmp_path):
        bogus = tmp_path / "not_obs.json"
        bogus.write_text('{"hello": "world"}', encoding="utf-8")
        with pytest.raises(ValueError, match="not a repro obs snapshot"):
            load_snapshot(bogus)


class TestRenderReport:
    def test_empty_snapshot_renders_placeholder(self):
        snapshot = {
            "schema": SNAPSHOT_SCHEMA,
            "obs_enabled": False,
            "metrics": {"families": {}},
            "spans": [],
            "solve_history": [],
        }
        assert (
            render_report(snapshot)
            == "observability report: no recorded activity\n"
        )

    def test_sections_render_from_a_real_workload(self):
        obs.enable()
        telemetry.reset()
        tracer = Tracer()
        set_tracer(tracer)
        reg = golden_registry()
        with tracer.span("experiment:unit") as node:
            node.add_counter("subgraphs", 4)
            telemetry.record_solve(
                "power",
                iterations=77,
                residual=2e-6,
                converged=True,
                damping=0.85,
                runtime_seconds=0.01,
                residual_trace=[1e-2, 1e-4, 2e-6],
            )
        report = render_report(build_snapshot(reg))
        assert report.startswith(
            f"observability report (schema {SNAPSHOT_SCHEMA}, obs enabled)"
        )
        assert "Transition cache" in report
        assert "hit-rate 85.7%" in report  # 42 / (42 + 7)
        assert "Solver iterations (per solve)" in report
        assert "Span tree" in report
        assert "experiment:unit" in report
        assert "[subgraphs=4]" in report
        assert "Recent solves" in report
        assert "tail" in report

    def test_serve_section_renders_from_serve_metrics(self):
        reg = MetricsRegistry()
        reg.counter(
            "repro_serve_requests_total",
            "HTTP requests served, by endpoint and status.",
            endpoint="/rank", status="200",
        ).inc(12)
        reg.counter(
            "repro_serve_requests_total",
            "HTTP requests served, by endpoint and status.",
            endpoint="/rank", status="503",
        ).inc(2)
        reg.histogram(
            "repro_serve_request_seconds",
            "End-to-end request handling latency.",
            buckets=(0.01, 0.1, 1.0),
            endpoint="/rank",
        ).observe(0.05)
        hist = reg.histogram(
            "repro_serve_batch_size",
            "Distinct solve columns per flushed micro-batch.",
            buckets=(1, 2, 4, 8),
        )
        hist.observe(4)
        hist.observe(2)
        reg.counter("repro_serve_store_hits_total").inc(9)
        reg.counter("repro_serve_store_misses_total").inc(3)
        reg.counter(
            "repro_serve_store_evictions_total", reason="ttl"
        ).inc(1)
        reg.counter(
            "repro_serve_rejected_total", reason="overloaded"
        ).inc(2)
        report = render_report(build_snapshot(reg))
        assert "Serving" in report
        assert "/rank" in report
        assert "micro-batches 2  mean columns 3.00" in report
        assert "hit-rate 75.0%" in report
        assert "ttl=1" in report
        assert "rejected: overloaded=2" in report

    def test_serve_section_absent_without_serve_traffic(self):
        report = render_report(build_snapshot(golden_registry()))
        assert "Serving" not in report

    def test_updates_section_renders_from_update_metrics(self):
        report = render_report(build_snapshot(updates_golden_registry()))
        assert "Updates (incremental re-ranking)" in report
        assert "updates applied 3" in report
        assert "staleness spent 0.125" in report
        assert "budget 1" in report
        assert "regions re-ranked 3" in report
        assert "iterations saved 250" in report
        assert "refreshes: background=2  eager=1" in report
        assert "stale-but-bounded entries 2" in report

    def test_updates_section_absent_without_update_traffic(self):
        report = render_report(build_snapshot(golden_registry()))
        assert "Updates (incremental re-ranking)" not in report

    def test_estimation_section_renders_from_estimate_metrics(self):
        report = render_report(
            build_snapshot(estimate_golden_registry())
        )
        assert "Estimation (sublinear engines)" in report
        assert "montecarlo" in report
        assert "edges 1200" in report
        assert "mean 250.0ms" in report
        assert "mean bound 2.00e-02" in report
        assert "push" in report
        assert "edges 300" in report
        assert "walks simulated 500  residual pushes 25" in report

    def test_estimation_section_absent_without_estimate_traffic(self):
        report = render_report(build_snapshot(golden_registry()))
        assert "Estimation (sublinear engines)" not in report

    def test_semantic_section_renders_from_semantic_metrics(self):
        report = render_report(
            build_snapshot(semantic_golden_registry())
        )
        assert "Semantic" in report
        assert "queries[exact] x1" in report
        assert "queries[montecarlo] x1" in report
        assert "candidates pruned 123  dedup merges 2" in report
        assert "neighborhoods 2  mean 29.0 pages" in report

    def test_semantic_section_absent_without_semantic_traffic(self):
        report = render_report(build_snapshot(golden_registry()))
        assert "Semantic" not in report

    def test_unconverged_solves_flagged(self):
        obs.enable()
        telemetry.reset()
        telemetry.record_solve(
            "power",
            iterations=1000,
            residual=1e-3,
            converged=False,
            damping=0.85,
            runtime_seconds=0.5,
        )
        reg = MetricsRegistry()
        reg.histogram(
            "repro_solver_iterations",
            buckets=(10, 100, 1000),
            solver="power",
        ).observe(1000)
        reg.counter(
            "repro_solver_unconverged_total", solver="power"
        ).inc()
        report = render_report(build_snapshot(reg))
        assert "UNCONVERGED" in report
        assert "unconverged 1" in report
