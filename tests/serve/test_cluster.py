"""Tier-1 tests for the sharded serving tier (no fault injection).

Boots small real clusters — threads, ephemeral ports — and drives
them through :class:`RankingClient`: routed answers are pinned
bit-identical to the offline solver, failover/degradation are
exercised by killing replicas explicitly (the chaos matrix in
``test_chaos_serve.py`` does it probabilistically), updates propagate
to every replica, and the circuit breaker's state machine is stepped
with a fake clock.  Client-side retries and the
``BackgroundServer.stop`` leak warning are pinned here too.
"""

import http.server
import logging
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.approxrank import approxrank
from repro.exceptions import (
    ServeRequestError,
    ServeRetriesExhaustedError,
)
from repro.generators.datasets import make_tiny_web
from repro.pagerank.solver import PowerIterationSettings
from repro.resilience.policy import RetryPolicy
from repro.serve.client import RankingClient
from repro.serve.cluster import CircuitBreaker, start_cluster
from repro.serve.server import (
    BackgroundServer,
    RankingServer,
    RankingService,
)
from repro.updates.delta import GraphDelta, apply_delta

pytestmark = pytest.mark.serve

SETTINGS = PowerIterationSettings(tolerance=1e-9)
NODES = list(range(30))

#: Fast retry/probe knobs so failover tests finish in milliseconds.
FAST_POLICY = RetryPolicy(
    max_attempts=3, backoff_base=0.01, backoff_max=0.05, seed=5
)
FAST_KWARGS = dict(
    retry_policy=FAST_POLICY,
    attempt_timeout=5.0,
    probe_interval=0.05,
    probe_timeout=0.5,
)


@pytest.fixture(scope="module")
def web():
    return make_tiny_web(num_pages=250, seed=11)


@pytest.fixture(scope="module")
def offline(web):
    return approxrank(
        web.graph, np.asarray(NODES, dtype=np.int64), SETTINGS
    )


def _cluster(web, shards=2, replicas=1, **router_kwargs):
    kwargs = {**FAST_KWARGS, **router_kwargs}
    manager_kwargs = kwargs.pop("manager_kwargs", {})
    manager_kwargs.setdefault("settings", SETTINGS)
    return start_cluster(
        web.graph,
        num_shards=shards,
        replicas_per_shard=replicas,
        placement="thread",
        manager_kwargs=manager_kwargs,
        **kwargs,
    )


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        self.now = 0.0
        kwargs.setdefault("clock", lambda: self.now)
        return CircuitBreaker(**kwargs)

    def test_opens_after_threshold(self):
        breaker = self._breaker(failure_threshold=3)
        for __ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allows()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allows()
        assert breaker.times_opened == 1

    def test_half_open_trial_then_close(self):
        breaker = self._breaker(
            failure_threshold=1, reset_timeout=1.0, jitter=0.0
        )
        breaker.record_failure()
        assert not breaker.allows()
        self.now = 1.0
        assert breaker.state == "half_open" and breaker.allows()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0

    def test_half_open_failure_reopens(self):
        breaker = self._breaker(
            failure_threshold=2, reset_timeout=1.0, jitter=0.0
        )
        breaker.record_failure()
        breaker.record_failure()
        self.now = 1.0
        assert breaker.allows()
        breaker.record_failure()  # the trial failed
        assert breaker.state == "open"
        assert breaker.times_opened == 2

    def test_jittered_reopen_is_deterministic(self):
        delays = []
        for __ in range(2):
            breaker = self._breaker(
                failure_threshold=1, reset_timeout=1.0,
                jitter=0.2, seed=42,
            )
            breaker.record_failure()
            delays.append(breaker._reopen_at)
        assert delays[0] == delays[1]
        assert 0.8 <= delays[0] <= 1.2
        assert delays[0] != 1.0  # jitter actually applied

    def test_state_code_matches_gauge_encoding(self):
        breaker = self._breaker(failure_threshold=1, jitter=0.0)
        assert breaker.state_code == 0
        breaker.record_failure()
        assert breaker.state_code == 2
        self.now = 10.0
        assert breaker.state_code == 1


class TestRoutedServing:
    @pytest.fixture(scope="class")
    def cluster(self, web):
        with _cluster(web, shards=2, replicas=1) as handle:
            yield handle

    @pytest.fixture(scope="class")
    def client(self, cluster):
        return RankingClient(*cluster.address)

    def test_routed_rank_bit_identical_to_offline(
        self, client, offline
    ):
        wire = client.rank_scores(NODES)
        assert np.array_equal(wire.scores, offline.scores)
        assert not wire.extras.get("stale")
        assert not wire.extras.get("degraded")

    def test_rank_payload_carries_fingerprint(self, client, cluster):
        payload = client.rank(NODES)
        assert (
            payload["graph_fingerprint"]
            == cluster.router.fingerprint
        )

    def test_same_digest_routes_to_same_shard(self, cluster):
        from repro.serve.store import subgraph_digest

        digest = subgraph_digest(np.asarray(NODES, dtype=np.int64))
        ring = cluster.router.ring
        assert ring.shard_for(digest) == ring.shard_for(digest)

    def test_cluster_health_reports_fleet(self, cluster, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["shards"] == 2
        assert health["degraded_shards"] == []
        assert len(health["replicas"]) == 2

    def test_bad_request_passes_through_without_retry(self, client):
        with pytest.raises(ServeRequestError) as excinfo:
            client.rank([10**9])
        assert excinfo.value.status == 400

    def test_search_routes_and_answers(self, client):
        payload = client.search(NODES, terms=[1, 2], k=3)
        assert "hits" in payload
        assert len(payload["hits"]) <= 3

    def test_empty_terms_is_fatal_400_through_router(self, client):
        with pytest.raises(ServeRequestError) as excinfo:
            client.search(NODES, terms=[], k=3)
        assert excinfo.value.status == 400

    def test_metrics_exposes_cluster_families(self, client):
        text = client.metrics_text()
        assert "repro_cluster_requests_total" in text


class TestFailover:
    def test_kill_one_replica_requests_still_fresh(
        self, web, offline
    ):
        with _cluster(web, shards=1, replicas=2) as handle:
            client = RankingClient(*handle.address)
            assert np.array_equal(
                client.rank_scores(NODES).scores, offline.scores
            )
            handle.manager.kill(0, 0)
            for __ in range(3):
                wire = client.rank_scores(NODES)
                assert np.array_equal(wire.scores, offline.scores)
                assert not wire.extras.get("degraded")

    def test_restart_rejoins_the_shard(self, web, offline):
        with _cluster(web, shards=1, replicas=2) as handle:
            client = RankingClient(*handle.address)
            client.rank(NODES)
            handle.manager.kill(0, 1)
            handle.manager.restart(0, 1)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                health = client.healthz()
                if all(
                    not state["ejected"]
                    for state in health["replicas"].values()
                ):
                    break
                time.sleep(0.05)
            wire = client.rank_scores(NODES)
            assert np.array_equal(wire.scores, offline.scores)


class TestDegradedServing:
    def test_last_known_scores_served_flagged(self, web, offline):
        with _cluster(
            web, shards=1, replicas=1, attempt_timeout=0.5
        ) as handle:
            client = RankingClient(*handle.address)
            client.rank(NODES)  # seeds the router-local store
            handle.manager.kill(0, 0)
            wire = client.rank_scores(NODES)
            assert wire.extras.get("degraded") is True
            assert np.array_equal(wire.scores, offline.scores)

    def test_no_cached_scores_is_honest_503(self, web):
        with _cluster(
            web, shards=1, replicas=1, attempt_timeout=0.5
        ) as handle:
            client = RankingClient(*handle.address)
            handle.manager.kill(0, 0)
            with pytest.raises(ServeRequestError) as excinfo:
                client.rank(list(range(40, 60)))
            assert excinfo.value.status == 503
            payload = excinfo.value.payload
            assert payload["kind"] == "ShardUnavailableError"
            assert payload["attempts"]  # the full recovery history

    def test_degraded_health_flags_dark_shard(self, web):
        with _cluster(
            web, shards=1, replicas=1, attempt_timeout=0.5
        ) as handle:
            client = RankingClient(*handle.address)
            handle.manager.kill(0, 0)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                health = client.healthz()
                if health["status"] == "degraded":
                    break
                time.sleep(0.05)
            assert health["status"] == "degraded"
            assert health["degraded_shards"] == [0]


class TestClusterUpdate:
    def test_update_propagates_to_every_replica(self, web):
        delta = GraphDelta(added_edges=((0, 5), (5, 9), (9, 0)))
        new_graph = apply_delta(web.graph, delta)
        with _cluster(web, shards=1, replicas=2) as handle:
            client = RankingClient(*handle.address)
            before = client.rank(NODES)["graph_fingerprint"]
            report = client.update(delta.to_payload())
            assert report["replicas_updated"] == 2
            assert report["graph_fingerprint"] != before
            wire = client.rank_scores(NODES)
            offline_new = approxrank(
                new_graph,
                np.asarray(NODES, dtype=np.int64),
                SETTINGS,
            )
            # The serving contract: bit-identical fresh, or flagged
            # stale within budget.  A warm-start refresh after the
            # update is the latter — converged on the NEW graph, with
            # the residual charged as staleness.
            if wire.extras.get("stale"):
                budget = handle.router.store.staleness_budget
                assert wire.extras["staleness"] <= budget
                assert np.allclose(
                    wire.scores, offline_new.scores, atol=1e-6
                )
            else:
                assert np.array_equal(
                    wire.scores, offline_new.scores
                )

    def test_stale_delta_is_a_400(self, web):
        # Removing an edge that does not exist marks the delta stale;
        # the replica's 400 must pass through the router verbatim.
        missing = next(
            t for t in range(web.graph.num_nodes)
            if t not in set(web.graph.out_neighbors(0).tolist())
        )
        delta = GraphDelta(removed_edges=((0, missing),))
        with _cluster(web, shards=1, replicas=1) as handle:
            client = RankingClient(*handle.address)
            with pytest.raises(ServeRequestError) as excinfo:
                client.update(delta.to_payload())
            assert excinfo.value.status == 400


class _ScriptedHandler(http.server.BaseHTTPRequestHandler):
    """Replays a scripted list of (status, headers) responses."""

    script: list[tuple[int, dict]] = []
    hits: list[int] = []

    def do_POST(self):  # noqa: N802 - stdlib naming
        self.rfile.read(int(self.headers.get("Content-Length", 0)))
        status, headers = (
            self.script.pop(0) if self.script else (200, {})
        )
        type(self).hits.append(status)
        body = b'{"ok": true}' if status < 400 else b'{"error": "x"}'
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # silence stderr
        pass


@pytest.fixture
def scripted_server():
    server = http.server.ThreadingHTTPServer(
        ("127.0.0.1", 0), _ScriptedHandler
    )
    _ScriptedHandler.script = []
    _ScriptedHandler.hits = []
    thread = threading.Thread(
        target=server.serve_forever, daemon=True
    )
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


class TestClientRetries:
    POLICY = RetryPolicy(
        max_attempts=3, backoff_base=0.01, backoff_max=0.05, seed=3
    )

    def test_retries_503_honouring_retry_after(
        self, scripted_server
    ):
        _ScriptedHandler.script = [
            (503, {"Retry-After": "0.01"}),
            (200, {}),
        ]
        client = RankingClient(
            *scripted_server.server_address,
            retry_policy=self.POLICY,
        )
        assert client.rank([1]) == {"ok": True}
        assert len(client.last_attempts) == 1
        record = client.last_attempts[0]
        assert record.error_type == "Http503"
        assert record.retryable and record.action == "retry"

    def test_fatal_400_raises_immediately(self, scripted_server):
        _ScriptedHandler.script = [(400, {}), (200, {})]
        client = RankingClient(
            *scripted_server.server_address,
            retry_policy=self.POLICY,
        )
        with pytest.raises(ServeRequestError) as excinfo:
            client.rank([1])
        assert excinfo.value.status == 400
        assert _ScriptedHandler.hits == [400]  # no second attempt

    def test_exhausted_retries_carry_history(self, scripted_server):
        _ScriptedHandler.script = [(503, {})] * 5
        client = RankingClient(
            *scripted_server.server_address,
            retry_policy=self.POLICY,
        )
        with pytest.raises(ServeRetriesExhaustedError) as excinfo:
            client.rank([1])
        assert excinfo.value.status == 503
        assert len(excinfo.value.attempts) == 3
        assert _ScriptedHandler.hits == [503, 503, 503]

    def test_connection_refused_is_retried_then_raised(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        client = RankingClient(
            "127.0.0.1", port, retry_policy=self.POLICY
        )
        with pytest.raises(ServeRetriesExhaustedError) as excinfo:
            client.healthz()
        assert len(excinfo.value.attempts) == 3
        assert all(
            record.retryable for record in excinfo.value.attempts
        )

    def test_no_policy_keeps_single_attempt(self, scripted_server):
        _ScriptedHandler.script = [(503, {}), (200, {})]
        client = RankingClient(*scripted_server.server_address)
        with pytest.raises(ServeRequestError) as excinfo:
            client.rank([1])
        assert excinfo.value.status == 503
        assert _ScriptedHandler.hits == [503]


class TestBackgroundServerStop:
    def test_wedged_loop_warns_and_returns_false(self, web, caplog):
        service = RankingService(web.graph, settings=SETTINGS)
        background = BackgroundServer(
            RankingServer(service, host="127.0.0.1", port=0)
        ).start()
        # Wedge the event loop: a blocking callback starves both the
        # stop event and the join.
        release = threading.Event()
        background.loop.call_soon_threadsafe(
            lambda: release.wait(10.0)
        )
        with caplog.at_level(logging.WARNING, logger="repro.serve"):
            assert background.stop(timeout=0.2) is False
        assert any(
            "failed to stop" in record.message
            for record in caplog.records
        )
        release.set()  # unwedge; the loop drains and exits
        assert background.stop(timeout=10.0) is True
