"""Deriving the region a graph update can have (strongly) affected.

A changed transition row immediately changes the scores of the pages it
points to; the perturbation then decays geometrically (by the damping
factor) along out-paths.  ``affected_region`` therefore takes the pages
whose rows changed and expands forward a configurable number of hops —
a standard locality heuristic for PageRank updating (cf. Langville &
Meyer's updating work, which the paper cites as [15]).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graph.digraph import CSRGraph
from repro.graph.traversal import bfs_within_depth
from repro.updates.delta import GraphDelta


def changed_pages(
    old_graph: CSRGraph, new_graph: CSRGraph
) -> np.ndarray:
    """Pages whose out-rows differ between two graphs (sorted ids).

    New pages (ids beyond the old graph) are always included.

    Both adjacency matrices are canonical CSR (``CSRGraph.__init__``
    sums duplicates, drops explicit zeros and sorts indices), so two
    rows are equal iff their index/data slices are — the comparison is
    a handful of vectorised gathers over the shared rows, with no
    padded intermediate matrix even when the graph grew.
    """
    old_n = old_graph.num_nodes
    new_n = new_graph.num_nodes
    if new_n < old_n:
        raise GraphError(
            "updated graph cannot shrink: "
            f"{new_n} < {old_n} pages"
        )
    a = old_graph.adjacency
    b = new_graph.adjacency
    counts = np.diff(a.indptr)
    counts_b = np.diff(b.indptr[: old_n + 1])
    changed_mask = counts != counts_b
    same = np.flatnonzero(~changed_mask)
    cnt = counts[same]
    total = int(cnt.sum())
    if total:
        # Flat nnz indices of every shared equal-length row: for row r
        # with k entries, positions start(r) .. start(r)+k-1 in each
        # matrix.  A single elementwise compare then finds any row
        # whose sorted (column, weight) sequence moved.
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(cnt) - cnt, cnt
        )
        a_idx = np.repeat(a.indptr[same], cnt) + offsets
        b_idx = np.repeat(b.indptr[same], cnt) + offsets
        mismatch = (a.indices[a_idx] != b.indices[b_idx]) | (
            a.data[a_idx] != b.data[b_idx]
        )
        if mismatch.any():
            rows = np.repeat(same, cnt)
            changed_mask[np.unique(rows[mismatch])] = True
    changed = np.flatnonzero(changed_mask).astype(np.int64)
    new_ids = np.arange(old_n, new_n, dtype=np.int64)
    return np.concatenate([changed, new_ids])


def affected_region(
    old_graph: CSRGraph,
    new_graph: CSRGraph,
    hops: int = 2,
    delta: GraphDelta | None = None,
) -> np.ndarray:
    """Changed pages plus a forward halo of ``hops`` out-link steps.

    Parameters
    ----------
    old_graph / new_graph:
        The graphs before and after the update.
    hops:
        Forward expansion depth in the *new* graph.  2 captures the
        bulk of a typical perturbation at ε = 0.85 (each hop decays
        the perturbation by ε and spreads it by out-degree).
    delta:
        When the delta is available, its touched sources are used as a
        cheap starting set and the row diff is skipped.

    Returns
    -------
    Sorted page ids (in new-graph id space).  Guaranteed non-empty for
    a non-empty update, and never the whole graph unless the update
    genuinely reaches everything.
    """
    if hops < 0:
        raise GraphError(f"hops must be >= 0, got {hops}")
    if delta is not None and not delta.is_empty:
        seeds = delta.touched_sources()
        new_ids = np.arange(
            old_graph.num_nodes, new_graph.num_nodes, dtype=np.int64
        )
        seeds = np.union1d(seeds, new_ids)
    else:
        seeds = changed_pages(old_graph, new_graph)
    if seeds.size == 0:
        return seeds
    return bfs_within_depth(new_graph, seeds, hops)
