"""Property-based tests: metric axioms for the ranking distances."""

import numpy as np
import pytest
from hypothesis import given, settings as hsettings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics.buckets import bucket_positions, buckets_from_scores
from repro.metrics.footrule import footrule_distance, footrule_from_scores
from repro.metrics.kendall import kendall_distance
from repro.metrics.l1 import l1_distance
from repro.metrics.topk import top_k_overlap

score_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 40),
    elements=st.floats(
        min_value=0.0, max_value=100.0,
        allow_nan=False, allow_infinity=False,
    ),
)


@st.composite
def aligned_score_pairs(draw):
    size = draw(st.integers(1, 40))
    elements = st.floats(
        min_value=0.0, max_value=100.0,
        allow_nan=False, allow_infinity=False,
    )
    a = draw(hnp.arrays(np.float64, size, elements=elements))
    b = draw(hnp.arrays(np.float64, size, elements=elements))
    return a, b


class TestBucketProperties:
    @given(score_arrays)
    @hsettings(max_examples=100, deadline=None)
    def test_buckets_partition(self, scores):
        buckets = buckets_from_scores(scores)
        flattened = np.sort(np.concatenate(buckets))
        assert flattened.tolist() == list(range(scores.size))

    @given(score_arrays)
    @hsettings(max_examples=100, deadline=None)
    def test_positions_conserve_rank_mass(self, scores):
        positions = bucket_positions(scores)
        n = scores.size
        assert positions.sum() == pytest.approx(n * (n + 1) / 2)

    @given(score_arrays)
    @hsettings(max_examples=100, deadline=None)
    def test_higher_score_never_worse_position(self, scores):
        positions = bucket_positions(scores)
        order = np.argsort(-scores, kind="stable")
        sorted_positions = positions[order]
        assert np.all(np.diff(sorted_positions) >= -1e-12)


class TestFootruleAxioms:
    @given(score_arrays)
    @hsettings(max_examples=100, deadline=None)
    def test_identity(self, scores):
        assert footrule_from_scores(scores, scores) == 0.0

    @given(aligned_score_pairs())
    @hsettings(max_examples=100, deadline=None)
    def test_symmetry_and_bounds(self, pair):
        a, b = pair
        forward = footrule_from_scores(a, b)
        backward = footrule_from_scores(b, a)
        assert forward == pytest.approx(backward)
        assert 0.0 <= forward <= 1.0

    @given(
        st.integers(1, 40).flatmap(
            lambda n: st.tuples(
                hnp.arrays(
                    np.float64, n,
                    elements=st.integers(0, 6400).map(lambda v: v / 64.0),
                ),
                hnp.arrays(
                    np.float64, n,
                    elements=st.integers(0, 6400).map(lambda v: v / 64.0),
                ),
            )
        )
    )
    @hsettings(max_examples=100, deadline=None)
    def test_monotone_transform_invariance(self, pair):
        # Scores quantised to multiples of 1/64 so the affine transforms
        # are exact in binary and cannot merge or split ties.
        a, b = pair
        assert footrule_from_scores(a, b) == pytest.approx(
            footrule_from_scores(a * 3.0 + 1.0, b * 7.0 + 2.0)
        )

    @given(aligned_score_pairs())
    @hsettings(max_examples=60, deadline=None)
    def test_triangle_inequality_positions(self, pair):
        a, b = pair
        pa, pb = bucket_positions(a), bucket_positions(b)
        pc = bucket_positions(np.sort(a)[::-1].copy())
        assert footrule_distance(pa, pc) <= (
            footrule_distance(pa, pb) + footrule_distance(pb, pc) + 1e-9
        )


class TestKendallAxioms:
    @given(score_arrays)
    @hsettings(max_examples=60, deadline=None)
    def test_identity_and_bounds(self, scores):
        assert kendall_distance(scores, scores) == pytest.approx(
            0.0, abs=1e-12
        ) or kendall_distance(scores, scores) == 0.5  # constant vector
        assert 0.0 <= kendall_distance(scores, scores) <= 1.0

    @given(aligned_score_pairs())
    @hsettings(max_examples=60, deadline=None)
    def test_symmetry(self, pair):
        a, b = pair
        assert kendall_distance(a, b) == pytest.approx(
            kendall_distance(b, a)
        )


class TestL1Axioms:
    @given(aligned_score_pairs())
    @hsettings(max_examples=100, deadline=None)
    def test_symmetry_nonneg(self, pair):
        a, b = pair
        d = l1_distance(a, b, normalize=False)
        assert d >= 0
        assert d == pytest.approx(l1_distance(b, a, normalize=False))

    @given(aligned_score_pairs())
    @hsettings(max_examples=100, deadline=None)
    def test_normalised_bounded_by_two(self, pair):
        a, b = pair
        if a.sum() > 0 and b.sum() > 0:
            assert 0.0 <= l1_distance(a, b) <= 2.0 + 1e-12


class TestTopKAxioms:
    @given(aligned_score_pairs(), st.integers(1, 10))
    @hsettings(max_examples=100, deadline=None)
    def test_bounds_and_identity(self, pair, k):
        a, b = pair
        assert 0.0 <= top_k_overlap(a, b, k) <= 1.0
        assert top_k_overlap(a, a, k) == 1.0
