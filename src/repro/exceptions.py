"""Typed exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing unrelated bugs::

    try:
        result = approxrank(graph, local_nodes)
    except ReproError as exc:
        log.error("ranking failed: %s", exc)
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """A graph is malformed or an operation on it is invalid."""


class GraphBuildError(GraphError):
    """Raised while assembling a graph from edges or arrays."""


class SubgraphError(ReproError):
    """A subgraph specification is invalid for the given global graph.

    Typical causes: node ids out of range, duplicates in the local node
    set, an empty local set, or a local set equal to the whole graph
    (so there is no external world for the Lambda node to represent).
    """


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration cap.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        The final L1 residual when the solver stopped.
    """

    def __init__(self, message: str, *, iterations: int, residual: float):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual

    def __reduce__(self):
        # Keyword-only constructor arguments do not survive the default
        # Exception pickling (args-only); rebuild through kwargs so the
        # error can cross a process boundary intact.
        return (
            _rebuild_convergence_error,
            (type(self), self.args[0] if self.args else "", self.__dict__.copy()),
        )


def _rebuild_convergence_error(cls, message, state):
    exc = cls.__new__(cls)
    Exception.__init__(exc, message)
    exc.__dict__.update(state)
    return exc


class DivergenceError(ConvergenceError):
    """An iterative solver is actively diverging (not merely slow).

    Raised by the solver guards when the residual becomes non-finite
    (NaN/Inf contamination) or stops improving for a sustained stretch
    of sweeps — conditions under which running to the iteration cap
    would only waste time or overflow.

    Attributes
    ----------
    residual_trace:
        The per-sweep L1 residuals observed up to the failure, newest
        last — the forensic record of *how* the iteration went wrong.
    """

    def __init__(
        self,
        message: str,
        *,
        iterations: int,
        residual: float,
        residual_trace: "tuple[float, ...] | list[float]" = (),
    ):
        super().__init__(message, iterations=iterations, residual=residual)
        self.residual_trace = tuple(float(r) for r in residual_trace)


class ParallelError(ReproError):
    """Multi-process ranking failed.

    Raised by :mod:`repro.parallel` when a worker task fails fatally or
    when every recovery path (chunk retries, pool rebuilds, the serial
    fallback) has been exhausted.  The message is the historical
    human-readable string; structured context rides along as
    attributes.

    Attributes
    ----------
    subgraph:
        Name of the failing subgraph, when one task is to blame.
    algorithm:
        Algorithm of the failing task, when known.
    attempts:
        Tuple of :class:`repro.resilience.policy.AttemptRecord` — the
        full recovery history (retries, pool rebuilds, the serial
        fallback) that preceded this error.
    worker_traceback:
        Formatted traceback captured inside the worker process, when
        the failure happened on the far side of the pool.
    error_type:
        Class name of the original worker-side exception; the parent's
        retry machinery classifies retryable-vs-fatal from it.
    """

    def __init__(
        self,
        message: str,
        *,
        subgraph: str | None = None,
        algorithm: str | None = None,
        attempts: tuple = (),
        worker_traceback: str | None = None,
        error_type: str | None = None,
    ):
        super().__init__(message)
        self.subgraph = subgraph
        self.algorithm = algorithm
        self.attempts = tuple(attempts)
        self.worker_traceback = worker_traceback
        self.error_type = error_type

    def __reduce__(self):
        # Preserve the structured fields across pickling (the pool
        # round-trips worker exceptions through pickle).
        return (
            _rebuild_parallel_error,
            (type(self), self.args[0] if self.args else "", self.__dict__.copy()),
        )


def _rebuild_parallel_error(cls, message, state):
    exc = cls.__new__(cls)
    Exception.__init__(exc, message)
    exc.__dict__.update(state)
    return exc


class ChunkTimeoutError(ParallelError):
    """A chunk of parallel ranking work missed its per-attempt deadline.

    Attributes
    ----------
    timeout_seconds:
        The deadline that was exceeded.
    """

    def __init__(self, message: str, *, timeout_seconds: float | None = None, **kwargs):
        super().__init__(message, **kwargs)
        self.timeout_seconds = timeout_seconds


class CheckpointError(ReproError):
    """A checkpoint journal is unusable or inconsistent with the run.

    Raised when a journal cannot be written, or when resuming against a
    journal whose recorded configuration fingerprint does not match the
    current run (resuming would silently mix results from two different
    experiments).
    """


class InjectedFaultError(ReproError):
    """Base class for failures raised by the chaos fault injector."""


class TransientFaultError(InjectedFaultError):
    """An injected *transient* failure — retryable by definition.

    The fault injector raises this inside worker chunks to exercise the
    retry path; the error classifier always treats it as retryable.
    """


class ServeError(ReproError):
    """Base class for failures of the online ranking service."""


class ServiceOverloadedError(ServeError):
    """The admission queue is full; the request was rejected on arrival.

    The micro-batcher bounds its pending-request depth so a burst that
    outpaces the solver fails fast (a 503 on the wire) instead of
    queueing unboundedly and timing every caller out.
    """


class DeadlineExceededError(ServeError):
    """A request's deadline expired before its result was ready.

    Raised both when a queued request's deadline passes before its
    batch is solved (it is dropped without wasting solver time) and
    when the caller's wait on an in-flight solve times out.
    """

    def __init__(self, message: str, *, deadline_seconds: float | None = None):
        super().__init__(message)
        self.deadline_seconds = deadline_seconds


class ServeRequestError(ServeError):
    """A ranking-service HTTP request returned a non-success status.

    Raised client-side by :class:`repro.serve.client.RankingClient`.

    Attributes
    ----------
    status:
        The HTTP status code of the response.
    payload:
        The decoded JSON error body, when the server sent one.
    """

    def __init__(self, message: str, *, status: int, payload: dict | None = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ServeRetriesExhaustedError(ServeRequestError):
    """Every client-side retry of a ranking request failed.

    Raised by :class:`repro.serve.client.RankingClient` only when the
    caller opted into retries (a ``retry_policy`` was supplied); the
    single-attempt default raises the plain per-attempt errors.

    Attributes
    ----------
    attempts:
        Tuple of :class:`repro.resilience.policy.AttemptRecord` — one
        per attempt, mirroring the executor's recovery-history
        semantics (error type, retryable verdict, action taken).
    """

    def __init__(
        self,
        message: str,
        *,
        status: int,
        payload: dict | None = None,
        attempts: tuple = (),
    ):
        super().__init__(message, status=status, payload=payload)
        self.attempts = tuple(attempts)


class EstimationError(ReproError):
    """A sublinear rank estimator was misconfigured or failed to certify.

    Raised by :mod:`repro.estimation` for unknown estimator specs,
    invalid parameters (non-positive walk budgets, thresholds), or when
    a push sweep fails to drive the residual below its certificate
    within the safety cap.
    """


class MetricError(ReproError):
    """Inputs to a ranking metric are incompatible (e.g. length mismatch)."""


class DatasetError(ReproError):
    """A synthetic dataset request is inconsistent or unsatisfiable."""


class SchemaError(ReproError):
    """An ObjectRank authority-transfer schema is malformed."""
