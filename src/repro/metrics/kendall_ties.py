"""Kendall distance for partial rankings with ties — Fagin's K^(p).

The paper's footrule-with-ties metric comes from Fagin, Kumar, Mahdian,
Sivakumar and Vee (PODS'04, reference [36]); the same paper defines the
companion Kendall metric ``K^(p)`` for rankings with ties, which this
module implements from scratch (the tau-b in :mod:`repro.metrics.kendall`
is a correlation, not Fagin's distance):

For each unordered item pair {i, j}:

* both rankings order the pair, same way              → penalty 0
* both rankings order the pair, opposite ways         → penalty 1
* one ranking ties the pair, the other orders it      → penalty p
* both rankings tie the pair                          → penalty 0

``K^(p)`` is the summed penalty; we also expose the normalised form
(divided by the number of pairs, so it lies in [0, 1]).  The neutral
choice p = 1/2 gives the metric used in rank-aggregation work.

Complexity: O(n²) over item pairs.  The evaluation subgraphs where an
exact tie-aware Kendall is wanted are, by the paper's own framing,
Top-K prefixes or modest subgraphs, and the tests cross-check this
implementation against the footrule's Diaconis–Graham band — for bulk
scoring the O(n log n) tau-b remains available.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MetricError


def kendall_p_distance(
    reference: np.ndarray,
    estimate: np.ndarray,
    p: float = 0.5,
    normalize: bool = True,
) -> float:
    """Fagin's K^(p) distance between two partial rankings.

    Parameters
    ----------
    reference, estimate:
        Aligned score vectors; equal scores are ties.
    p:
        Penalty for a pair tied in one ranking but ordered in the
        other (0 ≤ p ≤ 1; 1/2 is the neutral metric).
    normalize:
        Divide by the number of pairs ``n(n-1)/2`` (default).

    Returns
    -------
    float; 0 for identical partial rankings.
    """
    reference = _validated(reference)
    estimate = _validated(estimate)
    if reference.shape != estimate.shape:
        raise MetricError(
            "score vectors must be aligned, got shapes "
            f"{reference.shape} and {estimate.shape}"
        )
    if not 0.0 <= p <= 1.0:
        raise MetricError(f"p must lie in [0, 1], got {p}")
    n = reference.size
    if n < 2:
        return 0.0

    # Pairwise order signs: +1 / -1 / 0(tie), vectorised over pairs.
    ref_sign = np.sign(
        reference[:, None] - reference[None, :]
    )
    est_sign = np.sign(estimate[:, None] - estimate[None, :])
    upper = np.triu_indices(n, k=1)
    ref_pairs = ref_sign[upper]
    est_pairs = est_sign[upper]

    both_ordered = (ref_pairs != 0) & (est_pairs != 0)
    discordant = both_ordered & (ref_pairs != est_pairs)
    one_tied = (ref_pairs == 0) ^ (est_pairs == 0)

    penalty = float(discordant.sum()) + p * float(one_tied.sum())
    if not normalize:
        return penalty
    return penalty / (n * (n - 1) / 2)


def _validated(scores: np.ndarray) -> np.ndarray:
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise MetricError(
            f"scores must be 1-D, got shape {scores.shape}"
        )
    if scores.size == 0:
        raise MetricError("scores must not be empty")
    if not np.all(np.isfinite(scores)):
        raise MetricError("scores must be finite")
    return scores
