"""Partitioning a web graph across peers.

Two partitioners cover the scenarios of interest: by label (each peer
hosts whole domains — the natural deployment) and uniformly at random
(the adversarial baseline with maximal cross-peer linkage).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SubgraphError
from repro.generators.datasets import WebDataset
from repro.graph.digraph import CSRGraph


def partition_by_label(
    dataset: WebDataset,
    dimension: str = "domain",
    num_peers: int | None = None,
) -> list[np.ndarray]:
    """One peer per label value (optionally merged down to ``num_peers``).

    Parameters
    ----------
    dataset:
        A labelled dataset (e.g. AU-like with its ``"domain"`` labels).
    dimension:
        Which label dimension to partition on.
    num_peers:
        When given and smaller than the number of labels, labels are
        merged round-robin so every peer still holds whole labels.

    Returns
    -------
    List of sorted global-id arrays, one per peer, covering every page
    exactly once.
    """
    names = dataset.label_names.get(dimension)
    if names is None:
        raise SubgraphError(
            f"dataset {dataset.name!r} has no dimension {dimension!r}"
        )
    groups = [
        dataset.pages_with_label(dimension, name) for name in names
    ]
    if num_peers is None or num_peers >= len(groups):
        return groups
    if num_peers < 1:
        raise SubgraphError(f"num_peers must be >= 1, got {num_peers}")
    merged: list[list[np.ndarray]] = [[] for __ in range(num_peers)]
    for index, group in enumerate(groups):
        merged[index % num_peers].append(group)
    return [
        np.sort(np.concatenate(parts)) for parts in merged
    ]


def random_partition(
    graph: CSRGraph, num_peers: int, seed: int = 0
) -> list[np.ndarray]:
    """Assign every page to a uniformly random peer (deterministic).

    Every peer is guaranteed at least one page (requires
    ``num_peers <= num_nodes``).
    """
    if num_peers < 1:
        raise SubgraphError(f"num_peers must be >= 1, got {num_peers}")
    if num_peers > graph.num_nodes:
        raise SubgraphError(
            f"cannot spread {graph.num_nodes} pages over "
            f"{num_peers} peers"
        )
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, num_peers, graph.num_nodes)
    # Guarantee non-empty peers by seeding one distinct page each.
    seeds = rng.choice(graph.num_nodes, size=num_peers, replace=False)
    assignment[seeds] = np.arange(num_peers)
    return [
        np.flatnonzero(assignment == peer).astype(np.int64)
        for peer in range(num_peers)
    ]
