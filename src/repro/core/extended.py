"""The extended local graph ``G_e`` and its transition matrix.

This module is the heart of the reproduction.  Given a global graph
``G_g`` (N pages), a local node set (n pages) and a relative-importance
vector over external pages, it assembles the ``(n+1) × (n+1)``
transition matrix of §III-B / §IV-B:

* the upper-left ``n × n`` block copies the global transition entries
  between local pages (probabilities use *global* out-degrees);
* the upper-right column carries each local page's total probability of
  stepping to any external page (its residual row mass);
* the bottom row distributes Λ's outgoing probability over local pages
  as the E-weighted average of external rows, with the remaining mass
  on the Λ → Λ self-loop.

Dangling pages
--------------
Standard PageRank patches a dangling page's row with the uniform
distribution ``1/N`` over all N pages.  Collapsing that patched row
into the extended graph gives exactly ``1/N`` per local page and
``(N-n)/N`` for Λ — which is precisely ``P_ideal``.  We therefore leave
dangling local rows empty in the sparse matrix and let the solver
redistribute their mass through ``P_ideal``; this keeps Theorem 1 exact
without densifying anything.  Dangling *external* pages contribute
``w_j / N`` to every local entry of the Λ row analytically.

Complexity
----------
Everything is O(local edges + boundary edges) given the global
transition matrix; the global matrix itself is built once per graph
(and shared across subgraphs by
:class:`repro.core.precompute.ApproxRankPreprocessor`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np
from scipy import sparse

from repro.exceptions import SubgraphError
from repro.graph.digraph import CSRGraph
from repro.graph.subgraph import normalize_node_set
from repro.pagerank.batched import batched_power_iteration, stack_teleports
from repro.pagerank.result import SubgraphScores
from repro.pagerank.solver import (
    PowerIterationSettings,
    power_iteration,
)
from repro.pagerank.transition import csr_transpose


@dataclass(frozen=True)
class ExtendedLocalGraph:
    """A fully assembled extended local graph, ready to solve.

    Attributes
    ----------
    local_nodes:
        Sorted global ids of the n local pages.
    transition_ext_t:
        Transpose of the ``(n+1) × (n+1)`` extended transition matrix
        (CSR); index n is the external node Λ.  Rows of dangling local
        pages are empty (handled via ``dangling_mask_ext``).
    dangling_mask_ext:
        Length ``n+1`` mask; True for local pages that are dangling in
        the *global* graph.  Λ is never dangling.
    p_ideal:
        The extended personalisation vector: Equation (5)'s ``1/N``
        per local page and ``(N-n)/N`` for Λ under uniform teleport,
        or the collapsed form of a caller-supplied personalisation
        (see :func:`collapse_personalization`).
    num_global:
        N, the size of the global graph.
    mode:
        ``"ideal"``, ``"approx"`` or ``"custom"`` — which E was used.
    """

    local_nodes: np.ndarray
    transition_ext_t: sparse.csr_matrix
    dangling_mask_ext: np.ndarray
    p_ideal: np.ndarray
    num_global: int
    mode: str

    @property
    def num_local(self) -> int:
        """n, the number of local pages."""
        return int(self.local_nodes.size)

    @property
    def lambda_index(self) -> int:
        """Index of the external node Λ in the extended matrix."""
        return self.num_local

    def solve(
        self,
        settings: PowerIterationSettings | None = None,
        teleport_override: np.ndarray | None = None,
        initial: np.ndarray | None = None,
        backend=None,
    ) -> "ExtendedSolveOutcome":
        """Run the random walk of Equation (1)/(6) to its fixed point.

        Parameters
        ----------
        settings:
            Solver knobs.
        teleport_override:
            Replace ``P_ideal`` with another length-(n+1) distribution
            — an *ablation hook* for studying the paper's choice of
            personalisation vector (e.g. the naive uniform
            ``1/(n+1)``, which ignores how much teleport mass the
            external world really absorbs).  Dangling local pages
            redistribute through the same vector.
        initial:
            Optional length-(n+1) warm-start vector in the extended
            space (local scores followed by Λ); the solver normalises
            it.  A warm iterate close to the fixed point skips the
            burn-in sweeps a cold start needs (``warm_start`` /
            ``iterations_saved`` on the outcome record the savings).
        backend:
            Kernel implementation
            (:class:`~repro.pagerank.backends.SolverBackend`, spec
            string, or ``None`` for the process default).
        """
        teleport = (
            self.p_ideal if teleport_override is None
            else teleport_override
        )
        outcome = power_iteration(
            self.transition_ext_t,
            teleport=teleport,
            dangling_mask=self.dangling_mask_ext,
            dangling_dist=teleport,
            settings=settings,
            initial=initial,
            backend=backend,
        )
        return ExtendedSolveOutcome(
            local_scores=outcome.scores[: self.num_local],
            lambda_score=float(outcome.scores[self.lambda_index]),
            iterations=outcome.iterations,
            residual=outcome.residual,
            converged=outcome.converged,
            runtime_seconds=outcome.runtime_seconds,
            warm_start=outcome.warm_start,
            iterations_saved=outcome.iterations_saved,
        )

    def solve_many(
        self,
        teleports: "list[np.ndarray] | np.ndarray",
        settings: PowerIterationSettings | None = None,
        dampings: np.ndarray | None = None,
    ) -> "list[ExtendedSolveOutcome]":
        """Solve several personalisations of this graph in one batch.

        All K walks share the extended matrix, so they run through
        :func:`repro.pagerank.batched.batched_power_iteration` — one
        sparse mat-mat per iteration instead of K mat-vecs — with each
        column redistributing dangling mass through its own teleport
        vector, exactly as K :meth:`solve` calls would.

        Parameters
        ----------
        teleports:
            Either a list of length-(n+1) distributions or an
            ``(n+1, K)`` block.  Pass ``self.p_ideal`` as a column to
            include the paper's default walk in the batch.
        settings:
            Solver knobs shared by every column.
        dampings:
            Optional length-K per-column damping factors overriding
            ``settings.damping`` — a multi-damping sweep (or a
            micro-batched serving flush coalescing requests that
            differ only in ε) becomes one batched solve.

        Returns
        -------
        list[ExtendedSolveOutcome], one per column, in input order.
        """
        size = self.num_local + 1
        if isinstance(teleports, np.ndarray) and teleports.ndim == 2:
            block = np.ascontiguousarray(teleports, dtype=np.float64)
        else:
            block = stack_teleports(list(teleports), size)
        outcome = batched_power_iteration(
            self.transition_ext_t,
            teleports=block,
            dangling_mask=self.dangling_mask_ext,
            settings=settings,
            dampings=dampings,
        )
        per_column = outcome.runtime_seconds / outcome.num_columns
        return [
            ExtendedSolveOutcome(
                local_scores=outcome.scores[: self.num_local, k].copy(),
                lambda_score=float(outcome.scores[self.lambda_index, k]),
                iterations=int(outcome.iterations[k]),
                residual=float(outcome.residuals[k]),
                converged=bool(outcome.converged[k]),
                runtime_seconds=per_column,
            )
            for k in range(outcome.num_columns)
        ]


@dataclass(frozen=True)
class ExtendedSolveOutcome:
    """Solver output split into local scores and the Λ score.

    ``warm_start`` / ``iterations_saved`` carry the warm-start
    accounting of the underlying
    :class:`~repro.pagerank.solver.PowerIterationOutcome` (both
    zero/False for cold and batched solves).
    """

    local_scores: np.ndarray
    lambda_score: float
    iterations: int
    residual: float
    converged: bool
    runtime_seconds: float
    warm_start: bool = False
    iterations_saved: int = 0


def p_ideal_vector(num_global: int, num_local: int) -> np.ndarray:
    """Equation (5): the extended personalisation vector.

    ``P_ideal[i] = 1/N`` for local pages, ``(N-n)/N`` for Λ.
    """
    if not 0 < num_local < num_global:
        raise SubgraphError(
            f"need 0 < n < N, got n={num_local}, N={num_global}"
        )
    vector = np.full(num_local + 1, 1.0 / num_global, dtype=np.float64)
    vector[num_local] = (num_global - num_local) / num_global
    return vector


def collapse_personalization(
    personalization: np.ndarray,
    num_global: int,
    local_nodes: np.ndarray,
) -> np.ndarray:
    """Collapse a global personalisation vector into the extended space.

    Theorem 1's proof only uses ``Q2^T P = P_ideal``, so it holds for
    *any* global teleport distribution P, not just the uniform one —
    the collapsed vector is ``[P[local pages]..., Σ_external P]``.
    This is what makes personalised (ObjectRank base-set) subgraph
    ranking exact under IdealRank.
    """
    personalization = np.asarray(personalization, dtype=np.float64)
    if personalization.shape != (num_global,):
        raise SubgraphError(
            "personalization must cover the global graph: expected "
            f"({num_global},), got {personalization.shape}"
        )
    if np.any(personalization < 0):
        raise SubgraphError("personalization must be non-negative")
    total = personalization.sum()
    if not np.isclose(total, 1.0, rtol=0, atol=1e-8):
        raise SubgraphError(
            f"personalization must sum to 1, sums to {total!r}"
        )
    collapsed = np.empty(local_nodes.size + 1, dtype=np.float64)
    collapsed[: local_nodes.size] = personalization[local_nodes]
    collapsed[local_nodes.size] = (
        1.0 - personalization[local_nodes].sum()
    )
    np.clip(collapsed, 0.0, None, out=collapsed)
    return collapsed


def validate_external_weights(
    weights: np.ndarray,
    num_global: int,
    local_nodes: np.ndarray,
) -> np.ndarray:
    """Validate an E vector expressed over all N global positions.

    The vector must be zero on local pages, non-negative, and sum to 1
    (it is the relative importance of external pages).  Returns the
    validated float64 array.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (num_global,):
        raise SubgraphError(
            f"external weights must have shape ({num_global},), "
            f"got {weights.shape}"
        )
    if np.any(weights < 0):
        raise SubgraphError("external weights must be non-negative")
    if np.any(weights[local_nodes] != 0):
        raise SubgraphError("external weights must be zero on local pages")
    total = weights.sum()
    if not np.isclose(total, 1.0, rtol=0, atol=1e-8):
        raise SubgraphError(
            f"external weights must sum to 1, sum to {total!r}"
        )
    return weights


def build_extended_graph(
    graph: CSRGraph,
    local_nodes: Iterable[int],
    external_weights: np.ndarray,
    mode: str = "custom",
    personalization: np.ndarray | None = None,
    _transition: sparse.csr_matrix | None = None,
    _dangling_mask: np.ndarray | None = None,
) -> ExtendedLocalGraph:
    """Assemble ``G_e`` for an arbitrary external-importance vector E.

    Parameters
    ----------
    graph:
        The global graph ``G_g``.
    local_nodes:
        Global ids of the local pages (validated, deduplicated,
        sorted).
    external_weights:
        Length-N vector, zero on local pages, summing to 1: the
        relative importance of each external page (the paper's E for
        IdealRank, ``E_approx`` for ApproxRank, or anything in between
        for the Theorem 2 ablation).
    mode:
        Label recorded on the result (``"ideal"`` / ``"approx"`` /
        ``"custom"``).
    personalization:
        Optional global teleport distribution (length N, sums to 1).
        Defaults to the uniform vector of standard PageRank; a
        non-uniform P models ObjectRank base sets and personalised
        ranking, and Theorem 1 continues to hold (see
        :func:`collapse_personalization`).  Dangling pages — local and
        external — are assumed to jump according to the same P, which
        matches :func:`repro.pagerank.globalrank.global_pagerank`.
    _transition, _dangling_mask:
        Internal: a pre-built global transition matrix, supplied by
        :class:`~repro.core.precompute.ApproxRankPreprocessor` to avoid
        rebuilding it per subgraph.

    Returns
    -------
    ExtendedLocalGraph
    """
    local = normalize_node_set(graph, local_nodes)
    num_global = graph.num_nodes
    num_local = int(local.size)
    if num_local >= num_global:
        raise SubgraphError(
            "the local graph must be a proper subgraph: "
            f"n={num_local} >= N={num_global} leaves no external pages "
            "for the node Lambda to represent"
        )
    weights = validate_external_weights(external_weights, num_global, local)

    from repro.perf.cache import cached_local_block, cached_transition_matrix

    # Upper-left block plus derived vectors: memoized per (graph,
    # subgraph) — everything E-independent — so sweeping external
    # estimates over one subgraph assembles the local structure once.
    #   * local_block: global transition entries between local pages;
    #   * to_lambda: residual row mass = total probability of a local
    #     page stepping outside the subgraph (dangling local pages have
    #     zero rows here; their patched mass goes through P_ideal).
    if _transition is None or _dangling_mask is None:
        transition, dangling_mask = cached_transition_matrix(graph)
        bundle = cached_local_block(graph, local)
        local_block = bundle.local_block
        local_dangling = bundle.local_dangling
        to_lambda = bundle.to_lambda
    else:
        transition, dangling_mask = _transition, _dangling_mask
        local_block = transition[local][:, local].tocsr()
        row_sums = np.asarray(local_block.sum(axis=1)).ravel()
        local_dangling = dangling_mask[local]
        to_lambda = np.where(local_dangling, 0.0, 1.0 - row_sums)
        # Guard against -1e-17 style float residue.
        np.clip(to_lambda, 0.0, 1.0, out=to_lambda)

    # Bottom row: E-weighted average of the external pages' rows,
    # restricted to local columns.  (A^T w)[local] covers non-dangling
    # external pages; a dangling external page's patched row is the
    # teleport distribution P, so it contributes w_j * P[k] per local
    # entry (P uniform = the paper's w_j / N).
    weighted_inflow = transition.T @ weights
    dangling_external_mass = float(weights[dangling_mask].sum())
    if personalization is None:
        p_ext = p_ideal_vector(num_global, num_local)
        local_teleport = np.full(num_local, 1.0 / num_global)
    else:
        p_ext = collapse_personalization(
            personalization, num_global, local
        )
        local_teleport = np.asarray(
            personalization, dtype=np.float64
        )[local]
    lambda_row = (
        weighted_inflow[local]
        + dangling_external_mass * local_teleport
    )
    lambda_self = 1.0 - float(lambda_row.sum())
    lambda_self = max(lambda_self, 0.0)

    extended = _assemble_extended_matrix(
        local_block, to_lambda, lambda_row, lambda_self
    )

    dangling_ext = np.zeros(num_local + 1, dtype=bool)
    dangling_ext[:num_local] = local_dangling

    return ExtendedLocalGraph(
        local_nodes=local,
        transition_ext_t=csr_transpose(extended),
        dangling_mask_ext=dangling_ext,
        p_ideal=p_ext,
        num_global=num_global,
        mode=mode,
    )


def _assemble_extended_matrix(
    local_block: sparse.csr_matrix,
    to_lambda: np.ndarray,
    lambda_row: np.ndarray,
    lambda_self: float,
) -> sparse.csr_matrix:
    """Stack the four blocks of §III-B into one (n+1)×(n+1) CSR matrix."""
    num_local = local_block.shape[0]
    column = sparse.csr_matrix(to_lambda.reshape(num_local, 1))
    bottom = sparse.csr_matrix(
        np.concatenate([lambda_row, [lambda_self]]).reshape(1, num_local + 1)
    )
    top = sparse.hstack([local_block, column], format="csr")
    return sparse.vstack([top, bottom], format="csr")


def solve_to_subgraph_scores(
    extended: ExtendedLocalGraph,
    method: str,
    total_runtime: float,
    solve: ExtendedSolveOutcome,
    extras: dict | None = None,
) -> SubgraphScores:
    """Package an extended-graph solve as a harness-facing result."""
    merged_extras = {"lambda_score": solve.lambda_score}
    if solve.warm_start:
        merged_extras["warm_start"] = True
        merged_extras["iterations_saved"] = solve.iterations_saved
    if extras:
        merged_extras.update(extras)
    return SubgraphScores(
        local_nodes=extended.local_nodes.copy(),
        scores=solve.local_scores.copy(),
        method=method,
        iterations=solve.iterations,
        residual=solve.residual,
        converged=solve.converged,
        runtime_seconds=total_runtime,
        extras=merged_extras,
    )
