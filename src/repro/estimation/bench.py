"""Error-vs-time Pareto benchmark for the sublinear estimators.

The measurement harness behind ``benchmarks/bench_estimation.py`` and
the ``python -m repro bench-estimation`` CLI subcommand.  One BFS
subgraph of the 30k-page AU-like web is ranked three ways:

* **exact** — the power-iteration solver at a very tight tolerance
  (1e-12); this run is both the *baseline* every error is measured
  against and the cost yardstick for the sublinearity clause;
* **montecarlo** — a sweep over walk budgets;
* **push** — a sweep over residual thresholds ``r_max``.

Each sweep point records the measured error against the baseline, the
certified ``error_bound`` the engine itself reported, wall-clock
seconds, and ``edges_touched``.  Two clauses gate the record and are
**never** waived:

* **accuracy** — at *every* sweep point, the measured error must sit
  under the certified bound (∞-norm for Monte Carlo, L1 for push —
  each engine is held to the norm its certificate is stated in).  A
  tiny documented ``baseline_slack`` (1e-9) absorbs the baseline's own
  truncation error and float roundoff: push certificates are *exact*
  identities and routinely match the measured error to ~1e-16, which
  the slack must not mask but float comparison noise would otherwise
  fail.
* **sublinearity** — at the accuracy-matched operating point (the
  cheapest sweep point whose measured ∞-error is at or under
  ``target_accuracy``), ``edges_touched`` must be strictly below the
  *global* edge count — the estimate has to be genuinely cheaper than
  touching the whole graph once.

Monte Carlo certificates are probabilistic (δ = 1%), so a single
in-budget exceedance is possible in principle; the sweep's seeds are
fixed, making the committed record reproducible rather than flaky.
"""

from __future__ import annotations

import json
import time
from typing import Any

import numpy as np

from repro.core.precompute import ApproxRankPreprocessor
from repro.estimation.exact import ExactEstimator
from repro.estimation.montecarlo import MonteCarloEstimator
from repro.estimation.push import PushEstimator
from repro.generators.datasets import make_au_like
from repro.pagerank.solver import PowerIterationSettings
from repro.subgraphs.bfs import bfs_subgraph

__all__ = [
    "DEFAULT_OUTPUT",
    "run_estimation_benchmark",
    "format_estimation_summary",
]

#: Default record location (repo root when run from the checkout).
DEFAULT_OUTPUT = "BENCH_estimate.json"

FULL_PAGES = 30_000
SMOKE_PAGES = 3_000

#: BFS crawl fraction: the subgraph is a few percent of the web, the
#: regime ApproxRank targets.
SUBGRAPH_FRACTION = 0.025

#: Baseline tolerance: the "truth" the estimates are measured against
#: is solved ~7 orders tighter than the errors being certified.
BASELINE_TOLERANCE = 1e-12

#: Sweep grids (full / smoke).
FULL_WALK_BUDGETS = (20_000, 80_000, 320_000)
SMOKE_WALK_BUDGETS = (10_000, 40_000)
FULL_R_MAX_GRID = (1e-2, 1e-3, 1e-4)
SMOKE_R_MAX_GRID = (1e-2, 1e-3)

#: The ∞-error an operating point must reach to count as
#: accuracy-matched for the sublinearity clause.
TARGET_ACCURACY = 1e-3

#: Absorbs baseline truncation (≤ tol/(1−ε) ≈ 7e-12) and float
#: roundoff when a certificate is exact to the last bit.  Orders of
#: magnitude below every certified bound in the sweep, so it can never
#: mask a genuine certificate violation.
BASELINE_SLACK = 1e-9


def _measure(
    scores: np.ndarray, baseline: np.ndarray
) -> tuple[float, float]:
    """(∞-norm, L1-norm) error of an estimate against the baseline."""
    gap = np.abs(scores - baseline)
    return float(gap.max()), float(gap.sum())


def run_estimation_benchmark(
    smoke: bool = False,
    pages: int | None = None,
    seed: int = 2009,
    output_path: str | None = DEFAULT_OUTPUT,
) -> dict[str, Any]:
    """Run the estimation Pareto benchmark; optionally write the record.

    Parameters
    ----------
    smoke:
        Small workload + hard gate (``gate_passed`` is the CI
        criterion).
    pages:
        Workload size override.
    seed:
        Seeds the synthetic web, the BFS crawl seed page, and the
        Monte Carlo walk streams.
    output_path:
        Where to write the JSON record; ``None`` skips writing.

    Returns
    -------
    The record that was (or would have been) written.
    """
    num_pages = pages if pages is not None else (
        SMOKE_PAGES if smoke else FULL_PAGES
    )
    walk_budgets = SMOKE_WALK_BUDGETS if smoke else FULL_WALK_BUDGETS
    r_max_grid = SMOKE_R_MAX_GRID if smoke else FULL_R_MAX_GRID

    dataset = make_au_like(num_pages=num_pages, seed=seed)
    graph = dataset.graph
    local = bfs_subgraph(
        graph, seed_page=seed % graph.num_nodes,
        fraction=SUBGRAPH_FRACTION,
    )
    prep = ApproxRankPreprocessor(graph)
    settings = PowerIterationSettings(tolerance=BASELINE_TOLERANCE)

    # Baseline + exact cost yardstick in one run: the estimator wraps
    # the same solver and reports its honest edges_touched.
    exact = ExactEstimator().estimate(
        graph, local, settings=settings, preprocessor=prep
    )
    baseline = exact.scores
    global_edges = int(graph.num_edges)

    points: list[dict[str, Any]] = []
    accuracy_ok = True
    worst_certificate_margin = -np.inf

    def run_point(engine: Any, params: dict[str, Any]) -> None:
        nonlocal accuracy_ok, worst_certificate_margin
        start = time.perf_counter()
        scores = engine.estimate(
            graph, local, settings=settings, preprocessor=prep
        )
        seconds = time.perf_counter() - start
        err_inf, err_l1 = _measure(scores.scores, baseline)
        bound = float(scores.extras["error_bound"])
        # Hold each engine to the norm its certificate is stated in.
        measured = err_inf if engine.name == "montecarlo" else err_l1
        margin = measured - bound
        worst_certificate_margin = max(
            worst_certificate_margin, margin
        )
        within = measured <= bound + BASELINE_SLACK
        if not within:
            accuracy_ok = False
        points.append(
            {
                "estimator": engine.name,
                **params,
                "error_inf": err_inf,
                "error_l1": err_l1,
                "error_bound": bound,
                "bound_norm": (
                    "inf" if engine.name == "montecarlo" else "l1"
                ),
                "certificate_ok": bool(within),
                "seconds": seconds,
                "edges_touched": int(scores.extras["edges_touched"]),
                "edges_fraction": (
                    float(scores.extras["edges_touched"]) / global_edges
                ),
            }
        )

    for walks in walk_budgets:
        run_point(
            MonteCarloEstimator(walks=walks, seed=seed),
            {"walks": int(walks)},
        )
    for r_max in r_max_grid:
        run_point(PushEstimator(r_max=r_max), {"r_max": float(r_max)})

    # Sublinearity clause: the cheapest point that actually reaches
    # the target accuracy must beat one full pass over the graph.
    qualifying = [
        p for p in points if p["error_inf"] <= TARGET_ACCURACY
    ]
    operating_point = (
        min(qualifying, key=lambda p: p["edges_touched"])
        if qualifying
        else None
    )
    sublinear_ok = bool(
        operating_point is not None
        and operating_point["edges_touched"] < global_edges
    )
    gate_passed = bool(accuracy_ok and sublinear_ok)

    record: dict[str, Any] = {
        "benchmark": "estimation",
        "smoke": smoke,
        "created_unix": time.time(),
        "pages": num_pages,
        "global_edges": global_edges,
        "subgraph_nodes": int(local.size),
        "subgraph_fraction": SUBGRAPH_FRACTION,
        "baseline_tolerance": BASELINE_TOLERANCE,
        "baseline_slack": BASELINE_SLACK,
        "seed": seed,
        "exact": {
            "seconds": exact.runtime_seconds,
            "iterations": exact.iterations,
            "edges_touched": int(exact.extras["edges_touched"]),
        },
        "sweep": points,
        "target_accuracy": TARGET_ACCURACY,
        "accuracy_ok": accuracy_ok,
        "accuracy_worst_margin": float(worst_certificate_margin),
        "operating_point": operating_point,
        "sublinear_ok": sublinear_ok,
        # Both clauses are correctness claims, never waived.
        "waivers": [],
        "gate_passed": gate_passed,
    }
    if output_path:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
    return record


def format_estimation_summary(record: dict[str, Any]) -> str:
    """Human-readable summary of an estimation benchmark record."""
    lines = [
        "estimation benchmark ({} pages, {} global edges, "
        "{}-node subgraph)".format(
            record["pages"],
            record["global_edges"],
            record["subgraph_nodes"],
        ),
        "  exact baseline: {:.3f}s, {} iterations, "
        "{} edges touched".format(
            record["exact"]["seconds"],
            record["exact"]["iterations"],
            record["exact"]["edges_touched"],
        ),
        "  {:<12} {:>10} {:>11} {:>11} {:>9} {:>12} {:>8}".format(
            "point", "param", "err_inf", "bound", "seconds",
            "edges", "edges%",
        ),
    ]
    for p in record["sweep"]:
        param = (
            f"W={p['walks']}" if "walks" in p else f"r={p['r_max']:g}"
        )
        lines.append(
            "  {:<12} {:>10} {:>11.2e} {:>11.2e} {:>9.3f} "
            "{:>12} {:>7.1%}".format(
                p["estimator"], param, p["error_inf"],
                p["error_bound"], p["seconds"], p["edges_touched"],
                p["edges_fraction"],
            )
        )
    lines.append(
        "  accuracy: every certificate honoured "
        "(worst measured-bound margin {:+.2e})  ok: {}".format(
            record["accuracy_worst_margin"], record["accuracy_ok"]
        )
    )
    op = record["operating_point"]
    if op is not None:
        lines.append(
            "  operating point (err_inf <= {:g}): {} {} — "
            "{} edges ({:.1%} of graph)  sublinear ok: {}".format(
                record["target_accuracy"],
                op["estimator"],
                f"W={op['walks']}" if "walks" in op
                else f"r_max={op['r_max']:g}",
                op["edges_touched"],
                op["edges_fraction"],
                record["sublinear_ok"],
            )
        )
    else:
        lines.append(
            "  no sweep point reached err_inf <= {:g} — "
            "sublinear ok: False".format(record["target_accuracy"])
        )
    lines.append(
        "  gate: {}".format(
            "PASSED" if record["gate_passed"] else "FAILED"
        )
    )
    return "\n".join(lines)
