"""The RankEstimator protocol, registry, and spec parsing.

The contract every engine signs: a ``name``, an ``estimate()`` with
the exact-solver signature, a ``variant`` token carrying every
parameter that affects the returned scores, and extras holding
``estimator``/``error_bound``/``edges_touched``.  The exact engine is
additionally pinned bit-identical to a direct ``approxrank()`` call —
selecting ``--estimator exact`` anywhere must be a no-op.
"""

import numpy as np
import pytest

from repro.core.approxrank import approxrank
from repro.estimation import (
    ESTIMATOR_NAMES,
    ExactEstimator,
    MonteCarloEstimator,
    PushEstimator,
    RankEstimator,
    resolve_estimator,
)
from repro.exceptions import EstimationError

from tests.estimation.conftest import SETTINGS

pytestmark = pytest.mark.estimation


class TestRegistry:
    def test_builtin_engines_registered(self):
        assert {"exact", "montecarlo", "push"} <= set(ESTIMATOR_NAMES)

    def test_resolve_by_bare_name(self):
        assert isinstance(resolve_estimator("exact"), ExactEstimator)
        assert isinstance(
            resolve_estimator("montecarlo"), MonteCarloEstimator
        )
        assert isinstance(resolve_estimator("push"), PushEstimator)

    def test_resolve_none_is_exact(self):
        assert isinstance(resolve_estimator(None), ExactEstimator)

    def test_resolve_passes_instances_through(self):
        engine = PushEstimator(r_max=1e-2)
        assert resolve_estimator(engine) is engine

    def test_spec_parameters_are_coerced(self):
        engine = resolve_estimator(
            "montecarlo:walks=2000,seed=7,confidence=0.05"
        )
        assert engine.walks == 2000
        assert engine.seed == 7
        assert engine.confidence == 0.05

    def test_push_spec_accepts_scientific_notation(self):
        assert resolve_estimator("push:r_max=1e-4").r_max == 1e-4

    def test_unknown_name_raises(self):
        with pytest.raises(EstimationError, match="unknown estimator"):
            resolve_estimator("simulated-annealing")

    def test_unknown_parameter_raises(self):
        with pytest.raises(EstimationError):
            resolve_estimator("push:threshold=1e-4")

    def test_engines_satisfy_the_protocol(self):
        for engine in (
            ExactEstimator(),
            MonteCarloEstimator(),
            PushEstimator(),
        ):
            assert isinstance(engine, RankEstimator)


class TestVariantTokens:
    """The variant IS the store-key component: parameters in, workers out."""

    def test_exact_variant_is_bare(self):
        assert ExactEstimator().variant == "exact"

    def test_montecarlo_variant_carries_score_parameters(self):
        token = MonteCarloEstimator(
            walks=1000, seed=3, confidence=0.05
        ).variant
        assert "walks=1000" in token
        assert "seed=3" in token
        assert "confidence=0.05" in token

    def test_montecarlo_variant_ignores_workers(self):
        # Scores are bit-identical across worker counts, so workers
        # must not fragment the cache.
        assert (
            MonteCarloEstimator(walks=500, workers=1).variant
            == MonteCarloEstimator(walks=500, workers=4).variant
        )

    def test_distinct_parameters_distinct_variants(self):
        assert (
            PushEstimator(r_max=1e-3).variant
            != PushEstimator(r_max=1e-4).variant
        )


class TestExactEngine:
    def test_bit_identical_to_approxrank(self, graph, local_nodes, prep):
        direct = approxrank(graph, local_nodes, SETTINGS, prep)
        via_protocol = ExactEstimator().estimate(
            graph, local_nodes, settings=SETTINGS, preprocessor=prep
        )
        assert np.array_equal(via_protocol.scores, direct.scores)
        np.testing.assert_array_equal(
            via_protocol.local_nodes, direct.local_nodes
        )
        assert via_protocol.method == direct.method
        assert via_protocol.iterations == direct.iterations

    def test_protocol_extras_present(self, graph, local_nodes, prep):
        scores = ExactEstimator().estimate(
            graph, local_nodes, settings=SETTINGS, preprocessor=prep
        )
        assert scores.extras["estimator"] == "exact"
        assert scores.extras["error_bound"] == 0.0
        assert scores.extras["edges_touched"] > 0
