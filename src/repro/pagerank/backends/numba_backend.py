"""Optional numba solver backend: GIL-free fused compiled kernels.

The damped sweep's constant factor on the scipy path is bounded by six
separate passes over length-``n`` vectors per iteration (mat-vec,
scale, dangling add, base add, normalise, residual).  The kernels here
fuse them into two compiled passes:

1. ``_fused_step`` — CSR mat-vec + dangling-mass redistribution +
   teleport base in one ``prange`` sweep over the rows, accumulating
   the output total for the normalisation;
2. ``_normalize_residual`` — normalise and measure the L1 residual in
   a second ``prange`` sweep.

All kernels are compiled with ``@njit(parallel=True, nogil=True,
cache=True)``:

* ``nogil`` + ``parallel`` make the sweep multi-core *within* a solve
  and, crucially, release the GIL so
  :func:`repro.parallel.rank_many_threaded` can run whole solves on
  plain threads — sharing the CSR arrays with zero copies and none of
  the spawn/pickle overhead that sank the process pool
  (BENCH_parallel.json: 0.2x).
* ``cache=True`` persists the compiled machine code next to the
  module, so the one-time JIT cost is paid once per machine, not once
  per process.

Numerics: per-row accumulation walks the CSR entries in index order —
the same order as scipy's ``csr_matvec`` — and scalar accumulators are
float64 even in float32 mode, so the float64 kernels agree with the
reference backend to well under the gated 1e-12 L1 (the only
reordering is the ``prange`` reduction of the normalisation total and
the residual).

numba is an **optional extra** (``pip install repro[numba]``).  This
module always imports cleanly; without numba the backend reports
unavailable, ``auto`` falls back to the reference backend, and the
``repro_solver_backend_info`` gauge says so.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.pagerank.backends import (
    BackendUnavailableError,
    SolverBackend,
    register_backend,
)

try:  # pragma: no cover - exercised only with the numba extra installed
    import numba as _numba

    NUMBA_AVAILABLE = True
    NUMBA_VERSION: "str | None" = _numba.__version__
except ImportError:
    _numba = None
    NUMBA_AVAILABLE = False
    NUMBA_VERSION = None

# Compiled kernel slots, filled by _ensure_compiled() on first use so
# importing this module never triggers (or requires) compilation.
_fused_step = None
_normalize_residual = None
_gather_sum = None
_matvec = None
_matmat_into = None
_matmat_accumulate = None


def _ensure_compiled() -> None:  # pragma: no cover - needs numba
    """Define and register the jitted kernels (idempotent)."""
    global _fused_step, _normalize_residual, _gather_sum
    global _matvec, _matmat_into, _matmat_accumulate
    if _fused_step is not None:
        return
    if not NUMBA_AVAILABLE:
        raise BackendUnavailableError(
            "numba is not installed; install the optional extra: "
            "pip install repro[numba]"
        )
    from numba import njit, prange

    @njit(parallel=True, nogil=True, cache=True)
    def fused_step(indptr, indices, data, x, out, damping, mass, base,
                   dangling_dist):
        n = out.shape[0]
        total = 0.0
        for i in prange(n):
            acc = 0.0
            for k in range(indptr[i], indptr[i + 1]):
                acc += data[k] * x[indices[k]]
            value = damping * (acc + mass * dangling_dist[i]) + base[i]
            out[i] = value
            total += value
        return total

    @njit(parallel=True, nogil=True, cache=True)
    def normalize_residual(x, out, total):
        n = out.shape[0]
        inv = 1.0 / total
        residual = 0.0
        for i in prange(n):
            value = out[i] * inv
            out[i] = value
            residual += abs(value - x[i])
        return residual

    @njit(nogil=True, cache=True)
    def gather_sum(x, indices):
        mass = 0.0
        for k in range(indices.shape[0]):
            mass += x[indices[k]]
        return mass

    @njit(parallel=True, nogil=True, cache=True)
    def matvec(indptr, indices, data, x, out):
        n = out.shape[0]
        for i in prange(n):
            acc = 0.0
            for k in range(indptr[i], indptr[i + 1]):
                acc += data[k] * x[indices[k]]
            out[i] = acc

    @njit(parallel=True, nogil=True, cache=True)
    def matmat_into(indptr, indices, data, block, out):
        n = out.shape[0]
        width = out.shape[1]
        for i in prange(n):
            for c in range(width):
                out[i, c] = 0.0
            for k in range(indptr[i], indptr[i + 1]):
                value = data[k]
                j = indices[k]
                for c in range(width):
                    out[i, c] += value * block[j, c]

    @njit(parallel=True, nogil=True, cache=True)
    def matmat_accumulate(indptr, indices, data, block, out):
        n = out.shape[0]
        width = out.shape[1]
        for i in prange(n):
            for k in range(indptr[i], indptr[i + 1]):
                value = data[k]
                j = indices[k]
                for c in range(width):
                    out[i, c] += value * block[j, c]

    _fused_step = fused_step
    _normalize_residual = normalize_residual
    _gather_sum = gather_sum
    _matvec = matvec
    _matmat_into = matmat_into
    _matmat_accumulate = matmat_accumulate


@register_backend
class NumbaBackend(SolverBackend):  # pragma: no cover - needs numba
    """Fused ``@njit(parallel, nogil, cache)`` kernels (optional)."""

    name = "numba"

    def __init__(self, dtype=np.float64, layout: str = "auto"):
        _ensure_compiled()
        super().__init__(dtype=dtype, layout=layout)

    @classmethod
    def is_available(cls) -> bool:
        return NUMBA_AVAILABLE

    def _resolve_layout(self, layout: str) -> str:
        # The compiled path is never bit-pinned against the historical
        # library, so it always takes the cache-aware relabeling.
        return "degree" if layout == "auto" else layout

    def step(
        self,
        transition_t: sparse.csr_matrix,
        x: np.ndarray,
        out: np.ndarray,
        *,
        damping: float,
        base: np.ndarray,
        dangling_indices: np.ndarray,
        dangling_dist: np.ndarray,
        scratch: np.ndarray,
        workspace=None,
    ) -> float:
        mass = (
            _gather_sum(x, dangling_indices)
            if dangling_indices.size
            else 0.0
        )
        total = _fused_step(
            transition_t.indptr,
            transition_t.indices,
            transition_t.data,
            x,
            out,
            float(damping),
            float(mass),
            base,
            dangling_dist,
        )
        return float(_normalize_residual(x, out, total))

    def matvec_into(
        self, matrix: sparse.csr_matrix, x: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        _matvec(matrix.indptr, matrix.indices, matrix.data, x, out)
        return out

    def matmat_into(
        self,
        matrix: sparse.csr_matrix,
        block: np.ndarray,
        out: np.ndarray,
    ) -> np.ndarray:
        _matmat_into(
            matrix.indptr, matrix.indices, matrix.data, block, out
        )
        return out

    def matmat_accumulate(
        self,
        matrix: sparse.csr_matrix,
        block: np.ndarray,
        out: np.ndarray,
    ) -> np.ndarray:
        _matmat_accumulate(
            matrix.indptr, matrix.indices, matrix.data, block, out
        )
        return out
