"""Feature-hashed TF-IDF page embeddings: build, query, persist."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.semantic.embeddings import PageEmbeddings

pytestmark = pytest.mark.semantic


class TestBuild:
    def test_shape_matches_corpus(self, web, embeddings):
        assert embeddings.num_pages == web.graph.num_nodes
        assert embeddings.matrix.shape == (web.graph.num_nodes, 128)

    def test_rows_are_l2_normalized(self, embeddings):
        norms = np.sqrt(
            np.asarray(
                embeddings.matrix.multiply(embeddings.matrix).sum(axis=1)
            ).ravel()
        )
        nonzero = norms[norms > 0]
        assert nonzero.size == embeddings.num_pages  # every page has terms
        np.testing.assert_allclose(nonzero, 1.0, atol=1e-12)

    def test_deterministic_per_seed(self, lexicon):
        first = PageEmbeddings.from_lexicon(lexicon, dim=64, seed=7)
        again = PageEmbeddings.from_lexicon(lexicon, dim=64, seed=7)
        assert np.array_equal(first.matrix.data, again.matrix.data)
        assert np.array_equal(
            first.matrix.indices, again.matrix.indices
        )
        assert np.array_equal(first.matrix.indptr, again.matrix.indptr)

    def test_seed_changes_the_hash_space(self, lexicon):
        first = PageEmbeddings.from_lexicon(lexicon, dim=64, seed=7)
        other = PageEmbeddings.from_lexicon(lexicon, dim=64, seed=8)
        assert not (
            np.array_equal(first.matrix.indices, other.matrix.indices)
            and np.array_equal(first.matrix.data, other.matrix.data)
        )

    def test_rejects_nonpositive_dim(self, lexicon):
        with pytest.raises(DatasetError, match="dim"):
            PageEmbeddings.from_lexicon(lexicon, dim=0)


class TestQueries:
    def test_query_vector_is_unit_norm(self, embeddings):
        vector = embeddings.embed_terms([0, 1, 2])
        assert vector.shape == (embeddings.dim,)
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_out_of_vocabulary_term_rejected(self, embeddings):
        with pytest.raises(DatasetError, match="vocabulary"):
            embeddings.embed_terms([embeddings.num_terms])

    def test_empty_query_rejected(self, embeddings):
        with pytest.raises(DatasetError, match="at least one term"):
            embeddings.embed_terms([])

    def test_similarities_cover_every_page(self, embeddings):
        sims = embeddings.similarities(embeddings.embed_terms([3]))
        assert sims.shape == (embeddings.num_pages,)
        assert np.all(np.abs(sims) <= 1.0 + 1e-9)

    def test_page_subset_matches_full_sweep(self, embeddings):
        query = embeddings.embed_terms([3, 5])
        full = embeddings.similarities(query)
        pages = np.asarray([0, 10, 42], dtype=np.int64)
        subset = embeddings.similarities(query, pages=pages)
        np.testing.assert_array_equal(subset, full[pages])

    def test_self_similarity_is_one(self, embeddings):
        pairwise = embeddings.pairwise(np.asarray([4, 9, 17]))
        np.testing.assert_allclose(np.diag(pairwise), 1.0, atol=1e-12)

    def test_wrong_query_shape_rejected(self, embeddings):
        with pytest.raises(DatasetError, match="shape"):
            embeddings.similarities(np.zeros(embeddings.dim + 1))


class TestPersistence:
    def test_round_trip_is_bit_identical(self, embeddings, tmp_path):
        target = tmp_path / "embeddings.npz"
        embeddings.save(target)
        loaded = PageEmbeddings.load(target)
        assert np.array_equal(loaded.matrix.data, embeddings.matrix.data)
        assert np.array_equal(
            loaded.matrix.indices, embeddings.matrix.indices
        )
        assert np.array_equal(
            loaded.matrix.indptr, embeddings.matrix.indptr
        )
        assert loaded.dim == embeddings.dim
        assert loaded.seed == embeddings.seed
        assert loaded.num_terms == embeddings.num_terms

    def test_mmap_load_matches_copying_load(self, embeddings, tmp_path):
        target = tmp_path / "embeddings.npz"
        embeddings.save(target)
        mapped = PageEmbeddings.load(target, mmap=True)
        assert np.array_equal(
            mapped.matrix.data, embeddings.matrix.data
        )
        # Queries embed identically through the reloaded IDF table.
        np.testing.assert_array_equal(
            mapped.embed_terms([1, 4]),
            embeddings.embed_terms([1, 4]),
        )

    def test_unknown_format_version_rejected(self, embeddings, tmp_path):
        target = tmp_path / "embeddings.npz"
        embeddings.save(target)
        arrays = dict(np.load(target))
        arrays["format_version"] = np.int64(99)
        np.savez(target, **arrays)
        with pytest.raises(DatasetError, match="format v99"):
            PageEmbeddings.load(target)
