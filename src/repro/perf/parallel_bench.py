"""Multi-subgraph scaling benchmark: serial vs process-parallel.

The measurement harness behind ``benchmarks/bench_parallel.py`` and
the ``python -m repro bench-parallel`` CLI subcommand.  The workload
is the paper's Table IV shape — the 12 named DS domains of the AU-like
dataset, each ranked by ApproxRank against one shared global graph —
which §IV-B argues is embarrassingly parallel: one global pass, then
per-subgraph cost that is purely local.

The benchmark times :func:`repro.parallel.rank_many` over that
workload at 1 (serial fallback), 2 and 4 workers, verifies that every
parallel configuration reproduces the serial scores **exactly**
(``atol=0`` — same fixed point, bit for bit), and writes the record to
``BENCH_parallel.json`` so the scaling trajectory is tracked across
PRs.

Gate semantics (smoke mode / CI):

* exact serial/parallel score agreement is always required;
* the ≥ ``TARGET_SPEEDUP`` wall-clock requirement applies only when
  the machine actually has multiple CPU cores — on a single-core
  container process parallelism cannot beat serial, so the speedup
  clause is recorded (``speedup_gate_waived``) rather than failed;
* worker counts above ``os.cpu_count()`` are never timed (pure
  oversubscription noise); they are recorded in the JSON as
  ``skipped_worker_counts`` instead.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

import numpy as np

from repro.generators.datasets import AU_NAMED_DOMAINS, make_au_like
from repro.pagerank.solver import PowerIterationSettings
from repro.parallel import rank_many, shared_memory_available
from repro.subgraphs.domain import domain_subgraph

#: Default record location (repo root when run from the checkout).
DEFAULT_OUTPUT = "BENCH_parallel.json"

#: Reference workload sizes (pages in the AU-like dataset).
FULL_PAGES = 50_000
SMOKE_PAGES = 8_000

#: Worker counts swept (1 == the serial fallback path).
WORKER_SWEEP = (1, 2, 4)

#: The acceptance target: 4 workers at least this much faster than
#: serial — on hardware that has the cores to offer.
TARGET_SPEEDUP = 2.0

#: Timed repetitions per configuration; the best run is reported.
TIMING_REPS = 2


def run_parallel_benchmark(
    smoke: bool = False,
    pages: int | None = None,
    seed: int = 2009,
    workers: tuple[int, ...] = WORKER_SWEEP,
    output_path: str | None = DEFAULT_OUTPUT,
) -> dict[str, Any]:
    """Run the scaling benchmark and (optionally) write the record.

    Parameters
    ----------
    smoke:
        Small dataset + hard gate: ``gate_passed`` is the CI
        criterion (exact agreement everywhere; speedup when the
        hardware has cores).
    pages:
        Override the AU-like dataset size.
    seed:
        Dataset generation seed.
    workers:
        Worker counts to sweep; 1 must be included (it is the serial
        baseline the others are compared against).
    output_path:
        Where to write the JSON record; ``None`` skips writing.

    Returns
    -------
    The record that was (or would have been) written.
    """
    if 1 not in workers:
        raise ValueError(f"worker sweep must include 1, got {workers}")
    num_pages = pages if pages is not None else (
        SMOKE_PAGES if smoke else FULL_PAGES
    )
    dataset = make_au_like(num_pages=num_pages, seed=seed)
    graph = dataset.graph
    settings = PowerIterationSettings()
    subgraphs = [
        (domain, domain_subgraph(dataset, domain))
        for domain, __ in AU_NAMED_DOMAINS
    ]
    cpu_count = os.cpu_count() or 1
    # Timing worker counts beyond the machine's cores measures nothing
    # but oversubscription noise (and on a 1-core container it burns
    # minutes in pool spawn overhead for configurations that cannot
    # win).  Cap the sweep at the core count and record what was
    # skipped so the JSON stays honest about its coverage.
    skipped_worker_counts = sorted(
        {int(w) for w in workers if w > cpu_count}
    )
    workers = tuple(w for w in workers if w <= cpu_count)
    if 1 not in workers:  # pragma: no cover - cpu_count >= 1 always
        workers = (1, *workers)

    def timed_run(worker_count: int):
        best = float("inf")
        scores = None
        for __ in range(TIMING_REPS):
            start = time.perf_counter()
            scores = rank_many(
                graph,
                subgraphs,
                algorithm="approxrank",
                settings=settings,
                workers=worker_count,
            )
            best = min(best, time.perf_counter() - start)
        return best, scores

    # Warm shared state the serial path would enjoy anyway (transition
    # cache) so worker-count 1 measures the steady-state serial cost.
    timed_run(1)
    serial_seconds, serial_scores = timed_run(1)

    sweep: list[dict[str, Any]] = []
    all_exact = True
    best_speedup = 0.0
    for worker_count in workers:
        if worker_count == 1:
            seconds, scores = serial_seconds, serial_scores
        else:
            seconds, scores = timed_run(worker_count)
        exact = all(
            np.array_equal(a.scores, b.scores)
            and np.array_equal(a.local_nodes, b.local_nodes)
            for a, b in zip(scores, serial_scores)
        )
        all_exact = all_exact and exact
        speedup = serial_seconds / seconds if seconds else float("inf")
        if worker_count > 1:
            best_speedup = max(best_speedup, speedup)
        sweep.append(
            {
                "workers": worker_count,
                "seconds": seconds,
                "speedup_vs_serial": speedup,
                "exact_match_vs_serial": bool(exact),
            }
        )

    speedup_gate_waived = cpu_count < 2
    speedup_ok = speedup_gate_waived or best_speedup > 1.0
    gate_passed = bool(all_exact and speedup_ok)
    record: dict[str, Any] = {
        "benchmark": "parallel_rank_many",
        "created_unix": time.time(),
        "smoke": bool(smoke),
        "cpu_count": int(cpu_count),
        "shared_memory_available": bool(shared_memory_available()),
        "workload": {
            "dataset": dataset.name,
            "pages": int(graph.num_nodes),
            "edges": int(graph.num_edges),
            "subgraphs": len(subgraphs),
            "algorithm": "approxrank",
            "seed": int(seed),
            "damping": settings.damping,
            "tolerance": settings.tolerance,
        },
        "serial_seconds": serial_seconds,
        "sweep": sweep,
        "skipped_worker_counts": skipped_worker_counts,
        "target_speedup": TARGET_SPEEDUP,
        "best_parallel_speedup": best_speedup,
        "meets_target": bool(best_speedup >= TARGET_SPEEDUP),
        "speedup_gate_waived": bool(speedup_gate_waived),
        "all_exact": bool(all_exact),
        "gate_passed": gate_passed,
    }
    if output_path is not None:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=False)
            handle.write("\n")
    return record


def format_parallel_summary(record: dict[str, Any]) -> str:
    """Human-readable one-screen summary of a benchmark record."""
    workload = record["workload"]
    lines = [
        f"parallel rank_many benchmark "
        f"({workload['pages']} pages, {workload['edges']} edges, "
        f"{workload['subgraphs']} subgraphs, "
        f"{record['cpu_count']} cpu(s)"
        f"{', smoke' if record['smoke'] else ''})",
    ]
    for entry in record["sweep"]:
        lines.append(
            f"  workers={entry['workers']}: {entry['seconds']:.3f}s "
            f"({entry['speedup_vs_serial']:.2f}x vs serial, "
            f"exact={'yes' if entry['exact_match_vs_serial'] else 'NO'})"
        )
    skipped = record.get("skipped_worker_counts") or []
    if skipped:
        lines.append(
            f"  skipped : workers {skipped} (> {record['cpu_count']} "
            f"cpu(s))"
        )
    waived = record["speedup_gate_waived"]
    lines.append(
        f"  target  : >= {record['target_speedup']:.1f}x — "
        + (
            "waived (single-core machine)"
            if waived
            else ("met" if record["meets_target"] else "NOT met")
        )
    )
    lines.append(
        f"  gate    : {'PASS' if record['gate_passed'] else 'FAIL'}"
    )
    return "\n".join(lines)
