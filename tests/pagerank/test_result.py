"""Unit tests for result containers."""

import numpy as np
import pytest

from repro.pagerank.result import RankResult, SubgraphScores


def make_rank_result(scores):
    return RankResult(
        scores=np.asarray(scores, dtype=np.float64),
        iterations=10,
        residual=1e-6,
        converged=True,
        runtime_seconds=0.01,
        method="test",
    )


def make_subgraph_scores(nodes, scores, extras=None):
    return SubgraphScores(
        local_nodes=np.asarray(nodes, dtype=np.int64),
        scores=np.asarray(scores, dtype=np.float64),
        method="test",
        iterations=5,
        residual=1e-6,
        converged=True,
        runtime_seconds=0.02,
        extras=extras or {},
    )


class TestRankResult:
    def test_scores_read_only(self):
        result = make_rank_result([0.5, 0.5])
        with pytest.raises(ValueError):
            result.scores[0] = 1.0

    def test_top_k_orders_descending(self):
        result = make_rank_result([0.1, 0.4, 0.2, 0.3])
        assert result.top_k(2).tolist() == [1, 3]

    def test_top_k_tie_breaks_by_id(self):
        result = make_rank_result([0.3, 0.3, 0.4])
        assert result.top_k(3).tolist() == [2, 0, 1]

    def test_top_k_clipped(self):
        result = make_rank_result([0.5, 0.5])
        assert result.top_k(10).size == 2

    def test_num_nodes(self):
        assert make_rank_result([0.2, 0.3, 0.5]).num_nodes == 3


class TestSubgraphScores:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="parallel"):
            make_subgraph_scores([1, 2, 3], [0.5, 0.5])

    def test_arrays_read_only(self):
        result = make_subgraph_scores([1, 2], [0.5, 0.5])
        with pytest.raises(ValueError):
            result.scores[0] = 0.9
        with pytest.raises(ValueError):
            result.local_nodes[0] = 7

    def test_normalized_scores(self):
        result = make_subgraph_scores([1, 2], [0.2, 0.6])
        assert result.normalized_scores().tolist() == pytest.approx(
            [0.25, 0.75]
        )

    def test_normalized_zero_mass_falls_back_to_uniform(self):
        result = make_subgraph_scores([1, 2], [0.0, 0.0])
        assert result.normalized_scores().tolist() == [0.5, 0.5]

    def test_score_of_known_page(self):
        result = make_subgraph_scores([10, 20], [0.3, 0.7])
        assert result.score_of(20) == 0.7

    def test_score_of_unknown_page(self):
        result = make_subgraph_scores([10, 20], [0.3, 0.7])
        with pytest.raises(KeyError, match="15"):
            result.score_of(15)

    def test_ranking_descending_with_id_tiebreak(self):
        result = make_subgraph_scores(
            [10, 20, 30, 40], [0.2, 0.4, 0.2, 0.1]
        )
        assert result.ranking().tolist() == [20, 10, 30, 40]

    def test_top_k(self):
        result = make_subgraph_scores([10, 20, 30], [0.1, 0.6, 0.3])
        assert result.top_k(2).tolist() == [20, 30]

    def test_num_local(self):
        assert make_subgraph_scores([5, 9], [0.4, 0.6]).num_local == 2

    def test_extras_accessible(self):
        result = make_subgraph_scores(
            [1], [1.0], extras={"lambda_score": 0.8}
        )
        assert result.extras["lambda_score"] == 0.8
