"""Solver convergence telemetry: iteration metrics and residual traces.

The solver layers (:mod:`repro.pagerank.solver`,
:mod:`repro.pagerank.batched`, and the kernels'
:class:`~repro.pagerank.kernels.PowerIterationWorkspace`) report every
solve through this module.  Two tiers of recording:

* **Registry metrics — always on.**  Iteration-count and runtime
  histograms, solve/divergence/restart counters and workspace
  allocation counters go to :data:`repro.obs.metrics.REGISTRY`
  unconditionally: the cost is a few locked dict updates *per solve*
  (never per sweep), which is noise next to a single sparse mat-vec.
* **Ring buffers — gated on ``REPRO_OBS``.**  Per-solve
  :class:`SolveRecord` entries with the tail of the per-sweep residual
  trace land in a bounded :class:`RingBuffer` only when observability
  is enabled, because traces are per-sweep-sized data.

Nothing here touches solver arithmetic: recording happens after the
iterate is final, so scores with observability enabled are
bit-identical to scores without it (pinned by the obs smoke test).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.obs import state
from repro.obs.metrics import (
    ITERATION_BUCKETS,
    REGISTRY,
    SECONDS_BUCKETS,
)

__all__ = [
    "RingBuffer",
    "SolveRecord",
    "SOLVE_HISTORY",
    "TRACE_TAIL",
    "record_solve",
    "record_batched_solve",
    "record_divergence",
    "record_safe_restart",
    "record_workspace_allocation",
    "history_payload",
    "reset",
]

#: How many residual-trace entries are kept per solve record (the tail
#: is the interesting part: it shows the approach to tolerance or the
#: divergence pattern).
TRACE_TAIL = 32

#: Capacity of the process-wide solve history.
DEFAULT_HISTORY = 512


class RingBuffer:
    """A bounded, thread-safe append-only buffer (oldest evicted)."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._items: list[Any] = []
        self._start = 0
        self._total = 0

    def append(self, item: Any) -> None:
        with self._lock:
            if len(self._items) < self.capacity:
                self._items.append(item)
            else:
                self._items[self._start] = item
                self._start = (self._start + 1) % self.capacity
            self._total += 1

    def items(self) -> list:
        """Buffered items, oldest first."""
        with self._lock:
            return (
                self._items[self._start:] + self._items[: self._start]
            )

    @property
    def total_appended(self) -> int:
        """Lifetime appends (>= ``len`` once the buffer has wrapped)."""
        return self._total

    def __len__(self) -> int:
        return len(self._items)

    def clear(self) -> None:
        with self._lock:
            self._items.clear()
            self._start = 0
            self._total = 0


@dataclass(frozen=True)
class SolveRecord:
    """One solver run's convergence telemetry (ring-buffered)."""

    solver: str
    iterations: int
    residual: float
    converged: bool
    damping: float
    runtime_seconds: float
    columns: int = 1
    sweeps: int | None = None
    residual_tail: tuple[float, ...] = field(default_factory=tuple)

    def to_payload(self) -> dict[str, Any]:
        return {
            "solver": self.solver,
            "iterations": self.iterations,
            "residual": self.residual,
            "converged": self.converged,
            "damping": self.damping,
            "runtime_seconds": self.runtime_seconds,
            "columns": self.columns,
            "sweeps": self.sweeps,
            "residual_tail": list(self.residual_tail),
        }


#: Process-wide convergence history (populated only when obs is on).
SOLVE_HISTORY = RingBuffer(DEFAULT_HISTORY)


def _trace_tail(trace: "Sequence[float] | None") -> tuple[float, ...]:
    if not trace:
        return ()
    return tuple(float(r) for r in trace[-TRACE_TAIL:])


def record_solve(
    solver: str,
    *,
    iterations: int,
    residual: float,
    converged: bool,
    damping: float,
    runtime_seconds: float,
    residual_trace: "Sequence[float] | None" = None,
) -> None:
    """Record one single-vector solve (registry always, buffer if on)."""
    REGISTRY.counter(
        "repro_solver_solves_total",
        "Completed power-iteration solves",
        solver=solver,
    ).inc()
    REGISTRY.histogram(
        "repro_solver_iterations",
        "Power-iteration sweeps per solve (per column for batched)",
        buckets=ITERATION_BUCKETS,
        solver=solver,
    ).observe(iterations)
    REGISTRY.histogram(
        "repro_solver_runtime_seconds",
        "Wall-clock per solve",
        buckets=SECONDS_BUCKETS,
        solver=solver,
    ).observe(runtime_seconds)
    if not converged:
        REGISTRY.counter(
            "repro_solver_unconverged_total",
            "Solves that hit the iteration cap before tolerance",
            solver=solver,
        ).inc()
    if state.enabled():
        SOLVE_HISTORY.append(
            SolveRecord(
                solver=solver,
                iterations=int(iterations),
                residual=float(residual),
                converged=bool(converged),
                damping=float(damping),
                runtime_seconds=float(runtime_seconds),
                residual_tail=_trace_tail(residual_trace),
            )
        )


def record_batched_solve(
    *,
    iterations: "Iterable[int]",
    residuals: "Iterable[float]",
    converged: "Iterable[bool]",
    dampings: "Iterable[float]",
    sweeps: int,
    runtime_seconds: float,
    residual_trace: "Sequence[float] | None" = None,
) -> None:
    """Record one batched multi-vector solve.

    Iteration counts are observed per column — the batched histogram
    is directly comparable to the single-solver one — while sweeps
    (the shared matrix passes, the batch's actual cost driver) get
    their own histogram.
    """
    iteration_hist = REGISTRY.histogram(
        "repro_solver_iterations",
        "Power-iteration sweeps per solve (per column for batched)",
        buckets=ITERATION_BUCKETS,
        solver="batched",
    )
    columns = 0
    unconverged = 0
    for its, ok in zip(iterations, converged):
        iteration_hist.observe(int(its))
        columns += 1
        if not ok:
            unconverged += 1
    REGISTRY.counter(
        "repro_solver_solves_total",
        "Completed power-iteration solves",
        solver="batched",
    ).inc()
    REGISTRY.counter(
        "repro_solver_batched_columns_total",
        "Columns solved by the batched solver",
    ).inc(columns)
    REGISTRY.histogram(
        "repro_solver_batched_sweeps",
        "Matrix sweeps per batched solve",
        buckets=ITERATION_BUCKETS,
    ).observe(sweeps)
    REGISTRY.histogram(
        "repro_solver_runtime_seconds",
        "Wall-clock per solve",
        buckets=SECONDS_BUCKETS,
        solver="batched",
    ).observe(runtime_seconds)
    if unconverged:
        REGISTRY.counter(
            "repro_solver_unconverged_total",
            "Solves that hit the iteration cap before tolerance",
            solver="batched",
        ).inc(unconverged)
    if state.enabled():
        residual_list = list(residuals)
        damping_list = list(dampings)
        SOLVE_HISTORY.append(
            SolveRecord(
                solver="batched",
                iterations=int(sweeps),
                residual=float(max(residual_list)) if residual_list else 0.0,
                converged=unconverged == 0,
                damping=(
                    float(damping_list[0]) if damping_list else 0.0
                ),
                runtime_seconds=float(runtime_seconds),
                columns=columns,
                sweeps=int(sweeps),
                residual_tail=_trace_tail(residual_trace),
            )
        )


def record_divergence(solver: str, iterations: int) -> None:
    """Count a divergence-guard trip (NaN/Inf or stalled residual)."""
    REGISTRY.counter(
        "repro_solver_divergence_trips_total",
        "Divergence-guard trips (non-finite or stalled residuals)",
        solver=solver,
    ).inc()
    REGISTRY.gauge(
        "repro_solver_last_divergence_sweep",
        "Sweep index of the most recent divergence trip",
        solver=solver,
    ).set(iterations)


def record_safe_restart(solver: str) -> None:
    """Count a safe-restart recovery from a corrupt warm start."""
    REGISTRY.counter(
        "repro_solver_safe_restarts_total",
        "One-shot restarts from the personalisation vector",
        solver=solver,
    ).inc()


def record_workspace_allocation(size: int, num_bytes: int) -> None:
    """Count one workspace/gather buffer allocation from the kernels."""
    REGISTRY.counter(
        "repro_solver_workspace_allocations_total",
        "PowerIterationWorkspace (and gather buffer) allocations",
    ).inc()
    REGISTRY.counter(
        "repro_solver_workspace_bytes_total",
        "Bytes allocated for solver workspaces",
    ).inc(num_bytes)


def history_payload() -> list[dict]:
    """The solve history as JSON-safe dicts, oldest first."""
    return [record.to_payload() for record in SOLVE_HISTORY.items()]


def reset() -> None:
    """Clear the solve history (registry values are owned by REGISTRY)."""
    SOLVE_HISTORY.clear()
