"""Online ranking service: store → batcher → server (Figure 1, live).

The serving subsystem turns the batch library into the "localized
search engine" of the paper's Figure 1: a long-lived process that
holds one global graph (and its amortised ApproxRank preprocessor)
warm and answers subgraph ranking and Top-K search queries over HTTP.

Layering, bottom up:

* :mod:`repro.serve.store` — :class:`ScoreStore`, an LRU + TTL cache
  of solved :class:`~repro.pagerank.result.SubgraphScores` keyed by
  (graph fingerprint, subgraph digest, damping), with npz
  persist/warm-load and :class:`~repro.updates.delta.GraphDelta`-driven
  invalidation;
* :mod:`repro.serve.batching` — :class:`RankBatcher`, the
  micro-batching admission queue that coalesces concurrent cold
  requests into one batched multi-column solve, with bounded depth
  (503 on overload) and per-request deadlines;
* :mod:`repro.serve.server` — :class:`RankingService` (the
  transport-free engine) and :class:`RankingServer` (stdlib-asyncio
  HTTP/1.1: ``POST /rank``, ``POST /search``, ``GET /healthz``,
  ``GET /metrics``), plus :func:`start_background_server` for tests
  and benchmarks;
* :mod:`repro.serve.client` — :class:`RankingClient`, the blocking
  stdlib HTTP client;
* :mod:`repro.serve.bench` — the closed-loop batching-on-vs-off
  benchmark behind ``BENCH_serve.json``.
"""

from repro.serve.batching import BatchPolicy, RankBatcher
from repro.serve.client import RankingClient
from repro.serve.server import (
    BackgroundServer,
    RankingServer,
    RankingService,
    start_background_server,
)
from repro.serve.store import (
    ScoreStore,
    StoreUpdateReport,
    graph_fingerprint,
    subgraph_digest,
)

__all__ = [
    "BackgroundServer",
    "BatchPolicy",
    "RankBatcher",
    "RankingClient",
    "RankingServer",
    "RankingService",
    "ScoreStore",
    "StoreUpdateReport",
    "graph_fingerprint",
    "start_background_server",
    "subgraph_digest",
]
