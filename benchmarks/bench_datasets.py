"""Table II bench: dataset generation and global PageRank context.

Regenerates the dataset-characteristics rows (paper Table II gives the
regime; our stand-ins are checked against it) and benchmarks the two
expensive global operations every experiment amortises: graph
generation and the ground-truth global PageRank.
"""

from __future__ import annotations

import pytest

from repro.experiments import table2
from repro.generators.datasets import make_au_like, make_politics_like
from repro.graph.stats import compute_stats
from repro.pagerank.globalrank import global_pagerank


class TestTable2Regeneration:
    def test_regenerate_table2(self, benchmark, bench_context):
        result = benchmark.pedantic(
            lambda: table2.run(bench_context), rounds=1, iterations=1
        )
        print()
        print(result.render())
        # Sanity: both stand-ins reported, in the crawl regime.
        assert len(result.rows) == 4
        our_rows = [r for r in result.rows if "ours" in str(r[0])]
        for row in our_rows:
            avg_out_degree = row[3]
            assert 2.0 < avg_out_degree < 10.0


class TestGenerationCost:
    @pytest.mark.parametrize("pages", [5_000, 20_000])
    def test_generate_au_like(self, benchmark, pages):
        graph = benchmark(
            lambda: make_au_like(num_pages=pages, seed=1).graph
        )
        stats = compute_stats(graph)
        assert stats.num_nodes == pages

    def test_generate_politics_like(self, benchmark):
        dataset = benchmark(
            lambda: make_politics_like(num_pages=20_000, seed=2)
        )
        assert dataset.graph.num_nodes == 20_000


class TestGlobalPagerankCost:
    """The computation the whole framework exists to avoid."""

    def test_global_pagerank_au(self, benchmark, au, bench_context):
        result = benchmark.pedantic(
            lambda: global_pagerank(au.graph, bench_context.settings),
            rounds=3, iterations=1,
        )
        assert result.converged

    def test_global_pagerank_politics(
        self, benchmark, politics, bench_context
    ):
        result = benchmark.pedantic(
            lambda: global_pagerank(
                politics.graph, bench_context.settings
            ),
            rounds=3, iterations=1,
        )
        assert result.converged
