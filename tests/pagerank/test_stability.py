"""Tests for the stability analysis (refs [32]/[33] sibling bounds)."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.pagerank.stability import (
    damping_sweep,
    edge_perturbation_study,
    perturbation_bound,
)
from tests.conftest import random_digraph


class TestPerturbationBound:
    def test_formula(self):
        scores = np.array([0.1, 0.2, 0.3, 0.4])
        bound = perturbation_bound(scores, np.array([1, 3]), 0.85)
        assert bound == pytest.approx(2 * 0.85 / 0.15 * 0.6)

    def test_empty_change_set(self):
        scores = np.array([0.5, 0.5])
        assert perturbation_bound(
            scores, np.empty(0, dtype=np.int64)
        ) == 0.0

    def test_validation(self):
        scores = np.array([0.5, 0.5])
        with pytest.raises(GraphError, match="damping"):
            perturbation_bound(scores, np.array([0]), damping=1.0)
        with pytest.raises(GraphError, match="out of range"):
            perturbation_bound(scores, np.array([5]))


class TestPerturbationStudy:
    @pytest.fixture(scope="class")
    def trials(self):
        graph = random_digraph(400, mean_degree=5.0, seed=30)
        return edge_perturbation_study(
            graph, trials=5, edges_per_trial=15, seed=1
        )

    def test_bound_holds_on_every_trial(self, trials):
        """The Ng et al. theorem, checked empirically — the same
        flavour of guarantee the paper's Theorem 2 provides for
        ApproxRank."""
        assert len(trials) == 5
        for trial in trials:
            assert trial.holds, (
                trial.observed_l1, trial.bound
            )

    def test_movement_is_nontrivial(self, trials):
        # Perturbations genuinely move scores (the test would be
        # vacuous otherwise).
        assert any(trial.observed_l1 > 1e-6 for trial in trials)

    def test_footrule_recorded(self, trials):
        for trial in trials:
            assert 0.0 <= trial.footrule <= 1.0

    def test_rejects_bad_trials(self):
        graph = random_digraph(50, seed=31)
        with pytest.raises(GraphError, match="trials"):
            edge_perturbation_study(graph, trials=0)


class TestDampingSweep:
    def test_reference_point_is_zero(self):
        graph = random_digraph(200, seed=32)
        sweep = dict(damping_sweep(graph, dampings=(0.85,)))
        assert sweep[0.85] == pytest.approx(0.0, abs=1e-6)

    def test_drift_grows_away_from_reference(self):
        graph = random_digraph(300, seed=33)
        sweep = dict(
            damping_sweep(graph, dampings=(0.5, 0.7, 0.85, 0.95))
        )
        assert sweep[0.5] > sweep[0.7] > sweep[0.85]
        assert sweep[0.95] > sweep[0.85]
