"""Tests for strongly connected components."""

import numpy as np
import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.graph.builder import GraphBuilder, graph_from_edges
from repro.graph.scc import (
    is_strongly_connected,
    largest_scc_fraction,
    strongly_connected_components,
)
from repro.generators.simple import cycle_graph, line_graph


class TestKnownStructures:
    def test_cycle_is_one_scc(self):
        graph = cycle_graph(7)
        assert is_strongly_connected(graph)
        assert largest_scc_fraction(graph) == 1.0

    def test_line_is_all_singletons(self):
        graph = line_graph(5)
        components = strongly_connected_components(graph)
        assert len(components) == 5
        assert all(c.size == 1 for c in components)
        assert not is_strongly_connected(graph)

    def test_two_cycles_bridged_one_way(self):
        # Cycle {0,1,2}, cycle {3,4,5}, one-way bridge 2 -> 3.
        graph = graph_from_edges(
            6,
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)],
        )
        components = strongly_connected_components(graph)
        assert len(components) == 2
        sizes = sorted(c.size for c in components)
        assert sizes == [3, 3]
        assert not is_strongly_connected(graph)

    def test_back_edge_merges_components(self):
        graph = graph_from_edges(
            6,
            [
                (0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3),
                (2, 3), (3, 2),
            ],
        )
        assert is_strongly_connected(graph)

    def test_largest_first_ordering(self):
        graph = graph_from_edges(
            5, [(0, 1), (1, 0), (2, 3), (3, 4), (4, 2)]
        )
        components = strongly_connected_components(graph)
        assert components[0].size == 3
        assert components[1].size == 2

    def test_empty_graph(self):
        graph = GraphBuilder(0).build()
        assert strongly_connected_components(graph) == []
        assert largest_scc_fraction(graph) == 0.0
        assert is_strongly_connected(graph)

    def test_deep_chain_no_recursion_limit(self):
        # An iterative Tarjan must handle paths far beyond Python's
        # recursion limit.
        n = 50_000
        builder = GraphBuilder(n)
        builder.add_edge_arrays(
            np.arange(n - 1), np.arange(1, n)
        )
        components = strongly_connected_components(builder.build())
        assert len(components) == n


class TestAgainstNetworkx:
    @given(
        st.integers(2, 25).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.tuples(
                        st.integers(0, n - 1), st.integers(0, n - 1)
                    ),
                    max_size=4 * n,
                ),
            )
        )
    )
    @hsettings(max_examples=80, deadline=None)
    def test_matches_networkx(self, spec):
        import networkx as nx

        num_nodes, edges = spec
        builder = GraphBuilder(num_nodes)
        builder.add_edges(edges)
        graph = builder.build(dedup=True)
        ours = {
            tuple(component.tolist())
            for component in strongly_connected_components(graph)
        }
        reference_graph = nx.DiGraph()
        reference_graph.add_nodes_from(range(num_nodes))
        reference_graph.add_edges_from(edges)
        theirs = {
            tuple(sorted(component))
            for component in nx.strongly_connected_components(
                reference_graph
            )
        }
        assert ours == theirs


class TestGeneratedWebs:
    def test_synthetic_web_has_giant_scc(self):
        from repro.generators.datasets import make_tiny_web

        web = make_tiny_web(num_pages=1500, num_groups=4, seed=4)
        assert largest_scc_fraction(web.graph) > 0.4
