"""BlockRank-style aggregation approximation (§II-B related work).

Kamvar et al. ("Exploiting the block structure of the web", 2003 — the
paper's reference [27]) observe that the Web is block-structured by
host: compute a local PageRank inside every block, a *BlockRank* over
the block graph, and combine the two.  Broder et al. (WWW'04, the
paper's [24]) use the same aggregation as a standalone approximation of
global PageRank.  This module implements that approximation as a
supplementary comparison point for the subgraph-ranking problem:

1. local PageRank ``l`` inside every block (host/domain);
2. block transition ``W[g, h] = Σ_{i∈g} l_i · Σ_{j∈h} A[i, j]`` —
   the probability a random surfer currently distributed like ``l``
   inside block ``g`` steps to block ``h``;
3. BlockRank ``b`` = PageRank of ``W``;
4. approximate global score of page ``i``: ``l_i · b_{block(i)}``.

Caveat (documented, and asserted in the tests): *within a single
block* the approximation is the block's local PageRank scaled by a
constant, so for DS subgraphs (exactly one block) its ranking ties the
local-PageRank baseline by construction.  Its value is on cross-block
subgraphs (TS/BFS), where it injects global block importance that
local PageRank lacks.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np
from scipy import sparse

from repro.exceptions import SubgraphError
from repro.graph.digraph import CSRGraph
from repro.graph.subgraph import induced_subgraph, normalize_node_set
from repro.pagerank.localrank import pagerank_on_graph
from repro.pagerank.result import RankResult, SubgraphScores
from repro.pagerank.solver import (
    PowerIterationSettings,
    power_iteration,
    uniform_teleport,
)
from repro.pagerank.transition import transition_matrix


def _validate_blocks(graph: CSRGraph, block_of: np.ndarray) -> int:
    block_of = np.asarray(block_of, dtype=np.int64)
    if block_of.shape != (graph.num_nodes,):
        raise SubgraphError(
            "block_of must assign every page a block, expected shape "
            f"({graph.num_nodes},), got {block_of.shape}"
        )
    if block_of.size == 0:
        raise SubgraphError("cannot block-rank an empty graph")
    if block_of.min() < 0:
        raise SubgraphError("block ids must be non-negative")
    num_blocks = int(block_of.max()) + 1
    present = np.unique(block_of)
    if present.size != num_blocks:
        raise SubgraphError(
            "block ids must be dense 0..B-1 with every block non-empty"
        )
    return num_blocks


def blockrank_scores(
    graph: CSRGraph,
    block_of: np.ndarray,
    settings: PowerIterationSettings | None = None,
) -> RankResult:
    """Aggregation approximation of the global PageRank vector.

    Parameters
    ----------
    graph:
        The global graph.
    block_of:
        Block (host/domain) index per page; dense ``0..B-1``.
    settings:
        Solver knobs shared by the local and block-level solves.

    Returns
    -------
    RankResult
        Approximate global scores (sum to 1); ``iterations`` is the
        total across all local solves plus the block solve.
    """
    start = time.perf_counter()
    block_of = np.asarray(block_of, dtype=np.int64)
    num_blocks = _validate_blocks(graph, block_of)

    # Stage 1: local PageRank within every block.
    local_scores = np.zeros(graph.num_nodes)
    total_iterations = 0
    for block in range(num_blocks):
        members = np.flatnonzero(block_of == block)
        induced = induced_subgraph(graph, members)
        ranked = pagerank_on_graph(induced.graph, settings)
        local_scores[members] = ranked.scores
        total_iterations += ranked.iterations

    # Stage 2: block transition, weighted by the local scores.
    transition, dangling = transition_matrix(graph)
    weighted = sparse.diags(local_scores, format="csr") @ transition
    indicator = sparse.csr_matrix(
        (
            np.ones(graph.num_nodes),
            (np.arange(graph.num_nodes), block_of),
        ),
        shape=(graph.num_nodes, num_blocks),
    )
    block_matrix = (indicator.T @ weighted @ indicator).tocsr()
    # Rows may be sub-stochastic (dangling pages inside the block);
    # renormalise non-empty rows, leave empty rows to the solver.
    row_sums = np.asarray(block_matrix.sum(axis=1)).ravel()
    block_dangling = row_sums <= 1e-15
    scale = np.zeros_like(row_sums)
    scale[~block_dangling] = 1.0 / row_sums[~block_dangling]
    block_matrix = sparse.diags(scale, format="csr") @ block_matrix

    # Stage 3: BlockRank over the block graph.
    outcome = power_iteration(
        block_matrix.T.tocsr(),
        teleport=uniform_teleport(num_blocks),
        dangling_mask=block_dangling,
        settings=settings,
    )
    total_iterations += outcome.iterations

    # Stage 4: combine.
    scores = local_scores * outcome.scores[block_of]
    scores /= scores.sum()
    runtime = time.perf_counter() - start
    return RankResult(
        scores=scores,
        iterations=total_iterations,
        residual=outcome.residual,
        converged=outcome.converged,
        runtime_seconds=runtime,
        method="blockrank-approximation",
    )


def blockrank_subgraph(
    graph: CSRGraph,
    block_of: np.ndarray,
    local_nodes: Iterable[int],
    settings: PowerIterationSettings | None = None,
    precomputed: RankResult | None = None,
) -> SubgraphScores:
    """Rank a subgraph by restricting the aggregation approximation.

    Parameters
    ----------
    graph / block_of / settings:
        As in :func:`blockrank_scores`.
    local_nodes:
        Global ids of the subgraph pages.
    precomputed:
        A previous :func:`blockrank_scores` result for this graph; like
        ApproxRank's preprocessor, the aggregation is computed once and
        restricted per subgraph.

    Returns
    -------
    SubgraphScores with method ``"blockrank"``.
    """
    start = time.perf_counter()
    local = normalize_node_set(graph, local_nodes)
    if precomputed is None:
        precomputed = blockrank_scores(graph, block_of, settings)
    elif precomputed.num_nodes != graph.num_nodes:
        raise SubgraphError(
            "precomputed blockrank belongs to a different graph"
        )
    runtime = time.perf_counter() - start
    return SubgraphScores(
        local_nodes=local.copy(),
        scores=precomputed.scores[local].copy(),
        method="blockrank",
        iterations=precomputed.iterations,
        residual=precomputed.residual,
        converged=precomputed.converged,
        runtime_seconds=runtime,
        extras={"num_blocks": int(np.asarray(block_of).max()) + 1},
    )
