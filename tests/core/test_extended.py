"""Unit tests for the extended-local-graph construction."""

import numpy as np
import pytest

from repro.core.extended import (
    build_extended_graph,
    p_ideal_vector,
    validate_external_weights,
)
from repro.core.external import (
    uniform_external_weights,
    weights_from_scores,
)
from repro.exceptions import SubgraphError
from repro.graph.builder import graph_from_edges
from repro.graph.subgraph import normalize_node_set
from repro.pagerank.transition import row_stochastic_check
from tests.conftest import random_digraph


@pytest.fixture
def paper_figure4_graph():
    """A graph in the style of the running example of Figures 4-6.

    Local pages A,B,C,D = 0,1,2,3; external X,Y,Z = 4,5,6.  The edge
    set matches the text's description (A links to two external pages,
    C receives three external in-links, D one); the exact figure is an
    image, so expected matrix entries below are derived from *this*
    edge list with the paper's §IV-B rules rather than copied.
    """
    return graph_from_edges(
        7,
        [
            (0, 1), (0, 2), (2, 1), (1, 3), (2, 3), (3, 0),
            (0, 4), (0, 6),
            (4, 2), (5, 2), (6, 2), (5, 3),
            (4, 5), (5, 6),
        ],
    )


class TestPIdealVector:
    def test_equation_five(self):
        vector = p_ideal_vector(num_global=10, num_local=3)
        assert vector[:3].tolist() == pytest.approx([0.1, 0.1, 0.1])
        assert vector[3] == pytest.approx(0.7)
        assert vector.sum() == pytest.approx(1.0)

    def test_rejects_degenerate_sizes(self):
        with pytest.raises(SubgraphError):
            p_ideal_vector(5, 5)
        with pytest.raises(SubgraphError):
            p_ideal_vector(5, 0)


class TestValidateExternalWeights:
    def test_accepts_valid(self, paper_figure4_graph):
        local = normalize_node_set(paper_figure4_graph, [0, 1, 2, 3])
        weights = uniform_external_weights(paper_figure4_graph, local)
        validate_external_weights(weights, 7, local)

    def test_rejects_wrong_shape(self, paper_figure4_graph):
        local = normalize_node_set(paper_figure4_graph, [0, 1])
        with pytest.raises(SubgraphError, match="shape"):
            validate_external_weights(np.ones(3) / 3, 7, local)

    def test_rejects_mass_on_local_pages(self, paper_figure4_graph):
        local = normalize_node_set(paper_figure4_graph, [0, 1])
        weights = np.zeros(7)
        weights[0] = 1.0
        with pytest.raises(SubgraphError, match="zero on local"):
            validate_external_weights(weights, 7, local)

    def test_rejects_not_summing_to_one(self, paper_figure4_graph):
        local = normalize_node_set(paper_figure4_graph, [0, 1])
        weights = np.zeros(7)
        weights[5] = 0.5
        with pytest.raises(SubgraphError, match="sum to 1"):
            validate_external_weights(weights, 7, local)

    def test_rejects_negative(self, paper_figure4_graph):
        local = normalize_node_set(paper_figure4_graph, [0, 1])
        weights = np.zeros(7)
        weights[5], weights[6] = 1.5, -0.5
        with pytest.raises(SubgraphError, match="non-negative"):
            validate_external_weights(weights, 7, local)


class TestPaperWorkedExample:
    """§IV-B computes concrete A_approx entries for Figure 6."""

    def test_a_to_lambda_is_one_half(self, paper_figure4_graph):
        # A points to B, C, X, Z: out-degree 4, two external targets.
        local = [0, 1, 2, 3]
        weights = uniform_external_weights(paper_figure4_graph, np.array(local))
        extended = build_extended_graph(
            paper_figure4_graph, local, weights, mode="approx"
        )
        matrix = extended.transition_ext_t.T.tocsr()
        assert matrix[0, 4] == pytest.approx(0.5)

    def test_lambda_to_c(self, paper_figure4_graph):
        # (1/D_X + 1/D_Y + 1/D_Z) / 3 = (1/2 + 1/3 + 1) / 3 = 11/18
        # with D_X=2 (X->C, X->Y), D_Y=3 (Y->C, Y->D, Y->Z), D_Z=1.
        local = [0, 1, 2, 3]
        weights = uniform_external_weights(
            paper_figure4_graph, np.array(local)
        )
        extended = build_extended_graph(
            paper_figure4_graph, local, weights, mode="approx"
        )
        matrix = extended.transition_ext_t.T.tocsr()
        assert matrix[4, 2] == pytest.approx((0.5 + 1 / 3 + 1.0) / 3)

    def test_lambda_self_loop(self, paper_figure4_graph):
        # External-external flow: X->Y (1/2), Y->Z (1/3); / 3 external
        # pages = (1/2 + 1/3)/3 = 5/18.
        local = [0, 1, 2, 3]
        weights = uniform_external_weights(
            paper_figure4_graph, np.array(local)
        )
        extended = build_extended_graph(
            paper_figure4_graph, local, weights, mode="approx"
        )
        matrix = extended.transition_ext_t.T.tocsr()
        assert matrix[4, 4] == pytest.approx(5 / 18)

    def test_local_block_copied_from_global(self, paper_figure4_graph):
        local = [0, 1, 2, 3]
        weights = uniform_external_weights(
            paper_figure4_graph, np.array(local)
        )
        extended = build_extended_graph(
            paper_figure4_graph, local, weights, mode="approx"
        )
        matrix = extended.transition_ext_t.T.tocsr()
        # A -> B uses A's *global* out-degree 4.
        assert matrix[0, 1] == pytest.approx(0.25)
        # C -> B: C has out-degree 2 (B, D).
        assert matrix[2, 1] == pytest.approx(0.5)


class TestExtendedStructure:
    def test_rows_stochastic(self):
        graph = random_digraph(150, seed=9)
        local = np.arange(20, 60)
        weights = uniform_external_weights(graph, local)
        extended = build_extended_graph(graph, local, weights)
        matrix = extended.transition_ext_t.T.tocsr()
        assert row_stochastic_check(
            matrix, extended.dangling_mask_ext, atol=1e-9
        )

    def test_dangling_locals_flagged(self):
        graph = graph_from_edges(4, [(0, 1), (2, 3), (3, 0)])
        # node 1 dangling; local = {0, 1}
        weights = uniform_external_weights(graph, np.array([0, 1]))
        extended = build_extended_graph(graph, [0, 1], weights)
        assert extended.dangling_mask_ext.tolist() == [False, True, False]

    def test_lambda_never_dangling(self):
        graph = random_digraph(80, dangling_fraction=0.5, seed=2)
        local = np.arange(10)
        weights = uniform_external_weights(graph, local)
        extended = build_extended_graph(graph, local, weights)
        assert not extended.dangling_mask_ext[extended.lambda_index]

    def test_rejects_whole_graph_as_local(self, paper_figure4_graph):
        nodes = np.arange(7)
        weights = np.zeros(7)  # irrelevant; size check fires first
        with pytest.raises(SubgraphError, match="proper subgraph"):
            build_extended_graph(paper_figure4_graph, nodes, weights)

    def test_mode_recorded(self, paper_figure4_graph):
        local = np.array([0, 1])
        weights = uniform_external_weights(paper_figure4_graph, local)
        extended = build_extended_graph(
            paper_figure4_graph, local, weights, mode="approx"
        )
        assert extended.mode == "approx"
        assert extended.num_local == 2
        assert extended.lambda_index == 2
        assert extended.num_global == 7

    def test_solve_returns_distribution(self, paper_figure4_graph, tight_settings):
        local = np.array([0, 1, 2, 3])
        weights = uniform_external_weights(paper_figure4_graph, local)
        extended = build_extended_graph(paper_figure4_graph, local, weights)
        solve = extended.solve(tight_settings)
        total = solve.local_scores.sum() + solve.lambda_score
        assert total == pytest.approx(1.0, abs=1e-10)
        assert solve.converged


class TestIdealMatchesWeightedRow:
    def test_lambda_row_uses_score_weights(
        self, paper_figure4_graph, tight_settings
    ):
        from repro.pagerank.globalrank import global_pagerank

        truth = global_pagerank(paper_figure4_graph, tight_settings)
        local = np.array([0, 1, 2, 3])
        weights = weights_from_scores(
            paper_figure4_graph, local, truth.scores
        )
        extended = build_extended_graph(
            paper_figure4_graph, local, weights, mode="ideal"
        )
        matrix = extended.transition_ext_t.T.tocsr()
        # Lambda -> C should be sum over external j of E[j] * A[j, C]:
        ext_scores = truth.scores[4:]
        e = ext_scores / ext_scores.sum()
        expected = e[0] * 0.5 + e[1] * (1 / 3) + e[2] * 1.0
        assert matrix[4, 2] == pytest.approx(expected, rel=1e-9)
