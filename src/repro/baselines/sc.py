"""Competitor ◆: SC — stochastic complementation (Davis & Dhillon, KDD'06).

SC estimates the global PageRank of a local domain by *growing a
supergraph*: starting from the n local pages it repeatedly crawls the
frontier (pages one out-link hop outside the current graph), scores
each candidate by its estimated influence on the local PageRank, keeps
the top k, and re-ranks the enlarged graph.  After T expansions the
PageRank of the final supergraph, restricted to the local pages, is the
estimate.

Following §V-A of the ApproxRank paper we use T = 25 expansions and a
total expansion budget of n external pages, i.e. k = ⌈n/25⌉ per round
(matching the k column of Tables V/VI).

Influence estimation
--------------------
KDD'06 scores a frontier page j by (approximately) how much adding j
alone would move the local PageRank vector — which in principle costs a
PageRank solve on an (n+1)-page graph per candidate.  Two estimators
are provided:

* ``influence="first-order"`` (default): influence(j) ≈
  ε · p̃(j) · (probability j steps back into the supergraph), where
  p̃(j) is j's one-step PageRank estimate from the current supergraph
  vector.  This is the standard first-order expansion of the exact
  quantity and keeps each round at one sparse mat-vec, while the
  algorithm still pays a full PageRank on the growing supergraph every
  round — preserving the runtime blow-up Tables V/VI report.
* ``influence="exact"``: per-candidate PageRank on the supergraph plus
  the candidate, measuring the true L1 change on the local pages.
  Cost is O(|frontier| · PageRank); usable only on small graphs (the
  tests cross-check the first-order ranking against it).

The ``#ext nodes per expansion`` statistics of Tables V/VI (cumulative
count of distinct frontier candidates examined) are reported in
``extras["expansion_candidates"]``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.exceptions import SubgraphError
from repro.graph.digraph import CSRGraph
from repro.graph.subgraph import induced_subgraph, normalize_node_set
from repro.pagerank.localrank import pagerank_on_graph
from repro.pagerank.result import SubgraphScores
from repro.pagerank.solver import PowerIterationSettings
from repro.pagerank.transition import transition_matrix


@dataclass(frozen=True)
class SCSettings:
    """Knobs of the SC supergraph construction.

    Attributes
    ----------
    expansions:
        Number of frontier-expansion rounds T (paper: 25).
    budget_fraction:
        Total external pages to add, as a fraction of n (paper: 1.0,
        i.e. "expand the subgraph ... to select another n external
        pages"); k per round is ``ceil(budget_fraction * n / T)``.
    influence:
        ``"first-order"`` or ``"exact"`` (see module docstring).
    """

    expansions: int = 25
    budget_fraction: float = 1.0
    influence: str = "first-order"

    def __post_init__(self) -> None:
        if self.expansions < 1:
            raise ValueError(
                f"expansions must be >= 1, got {self.expansions}"
            )
        if self.budget_fraction <= 0:
            raise ValueError(
                f"budget_fraction must be positive, got "
                f"{self.budget_fraction}"
            )
        if self.influence not in ("first-order", "exact"):
            raise ValueError(
                "influence must be 'first-order' or 'exact', got "
                f"{self.influence!r}"
            )


def stochastic_complementation(
    graph: CSRGraph,
    local_nodes: Iterable[int],
    settings: PowerIterationSettings | None = None,
    sc_settings: SCSettings | None = None,
) -> SubgraphScores:
    """Estimate subgraph PageRank via SC supergraph expansion.

    Parameters
    ----------
    graph:
        The global graph (SC reads only out-links of pages it has
        crawled into the supergraph, plus the out-links of frontier
        candidates — the access pattern of a real crawler).
    local_nodes:
        Global ids of the local pages.
    settings:
        PageRank solver knobs for the per-round and final solves.
    sc_settings:
        Expansion knobs (paper defaults when omitted).

    Returns
    -------
    SubgraphScores
        Estimated scores for the local pages.  ``extras`` carries the
        Tables V/VI accounting: ``"k"``, ``"expansion_candidates"``
        (cumulative distinct frontier pages per round) and
        ``"supergraph_size"``.
    """
    if sc_settings is None:
        sc_settings = SCSettings()
    if settings is None:
        settings = PowerIterationSettings()
    start = time.perf_counter()

    local = normalize_node_set(graph, local_nodes)
    num_local = int(local.size)
    if num_local >= graph.num_nodes:
        raise SubgraphError("SC needs at least one external page")

    transition, __ = transition_matrix(graph)
    per_round = int(
        np.ceil(sc_settings.budget_fraction * num_local
                / sc_settings.expansions)
    )
    per_round = max(per_round, 1)

    in_super = np.zeros(graph.num_nodes, dtype=bool)
    in_super[local] = True
    super_nodes = local.copy()
    seen_candidates = np.zeros(graph.num_nodes, dtype=bool)
    expansion_candidates: list[int] = []
    total_iterations = 0

    for __ in range(sc_settings.expansions):
        sub = induced_subgraph(graph, super_nodes)
        ranked = pagerank_on_graph(sub.graph, settings)
        total_iterations += ranked.iterations

        frontier = _frontier_of(transition, super_nodes, in_super)
        seen_candidates[frontier] = True
        expansion_candidates.append(int(np.count_nonzero(seen_candidates)))
        if frontier.size == 0:
            break

        if sc_settings.influence == "first-order":
            influence = _first_order_influence(
                transition, super_nodes, frontier, ranked.scores,
                in_super, settings.damping,
            )
        else:
            influence = _exact_influence(
                graph, super_nodes, frontier, local, ranked.scores,
                sub.to_local(local), settings,
            )

        take = min(per_round, frontier.size)
        # Highest influence first; ties broken by ascending node id for
        # determinism (the paper notes ties make SC's supergraph, and
        # hence its accuracy, non-unique).
        order = np.lexsort((frontier, -influence))
        chosen = frontier[order[:take]]
        in_super[chosen] = True
        super_nodes = np.sort(np.concatenate([super_nodes, chosen]))

    final_sub = induced_subgraph(graph, super_nodes)
    final = pagerank_on_graph(final_sub.graph, settings)
    total_iterations += final.iterations
    local_positions = final_sub.to_local(local)
    scores = final.scores[local_positions]

    runtime = time.perf_counter() - start
    return SubgraphScores(
        local_nodes=local.copy(),
        scores=scores.copy(),
        method="sc",
        iterations=total_iterations,
        residual=final.residual,
        converged=final.converged,
        runtime_seconds=runtime,
        extras={
            "k": per_round,
            "expansion_candidates": tuple(expansion_candidates),
            "supergraph_size": int(super_nodes.size),
        },
    )


def _frontier_of(
    transition, super_nodes: np.ndarray, in_super: np.ndarray
) -> np.ndarray:
    """Pages one out-link hop outside the supergraph (sorted ids)."""
    rows = transition[super_nodes]
    targets = np.unique(rows.indices)
    return targets[~in_super[targets]]


def _first_order_influence(
    transition,
    super_nodes: np.ndarray,
    frontier: np.ndarray,
    super_scores: np.ndarray,
    in_super: np.ndarray,
    damping: float,
) -> np.ndarray:
    """First-order estimate of each candidate's effect on local scores.

    influence(j) ≈ ε² · p̃(j) · backflow(j) + (1−ε)/|F∪{j}| · backflow(j)
    where p̃(j) is the mass j would receive from the current supergraph
    in one step and backflow(j) the probability j steps back inside.
    The constant factors do not change the *ranking* of candidates, so
    we keep the dominant ε·p̃·backflow term.
    """
    # Mass flowing from supergraph pages into each frontier candidate.
    rows = transition[super_nodes]            # |F| x N
    inflow = rows.T @ super_scores            # length N
    received = inflow[frontier]
    base = (1.0 - damping) / (super_nodes.size + 1.0)
    estimated_rank = damping * received + base

    # Probability each candidate's random step returns to the
    # supergraph: row sums of the candidate rows restricted to F.
    candidate_rows = transition[frontier]     # |C| x N
    mask_cols = in_super.astype(np.float64)
    backflow = candidate_rows @ mask_cols
    return estimated_rank * backflow


def _exact_influence(
    graph: CSRGraph,
    super_nodes: np.ndarray,
    frontier: np.ndarray,
    local: np.ndarray,
    super_scores: np.ndarray,
    local_positions: np.ndarray,
    settings: PowerIterationSettings,
) -> np.ndarray:
    """Exact influence: L1 change of local scores when adding each j.

    O(|frontier|) PageRank solves — the cost KDD'06's machinery
    approximates.  Used in tests to validate the first-order ranking.
    """
    reference = super_scores[local_positions]
    reference = reference / reference.sum()
    influence = np.zeros(frontier.size, dtype=np.float64)
    for pos, candidate in enumerate(frontier):
        extended_nodes = np.sort(np.append(super_nodes, candidate))
        sub = induced_subgraph(graph, extended_nodes)
        ranked = pagerank_on_graph(sub.graph, settings)
        candidate_local = ranked.scores[sub.to_local(local)]
        candidate_local = candidate_local / candidate_local.sum()
        influence[pos] = float(np.abs(candidate_local - reference).sum())
    return influence
