"""The crawl simulator and its frontier-scoring strategies.

The simulation protocol, shared by every strategy so comparisons are
fair:

1. start from seed pages (already "fetched");
2. each step, the frontier is every uncrawled page reachable by one
   out-link from a crawled page (link targets are visible before a
   page is fetched — that is what crawl queues are made of);
3. the strategy scores the frontier; the top ``batch_size`` pages are
   fetched; repeat until ``budget`` pages are crawled or the frontier
   is empty.

Strategies
----------
``approxrank``
    Rank the crawled + frontier subgraph with the extended Λ walk and
    score each frontier page by its estimated global PageRank — the
    paper's Best-First crawler.
``local-pagerank``
    Same subgraph, plain local PageRank (no Λ) — the baseline that
    ignores the uncrawled web's pull.
``indegree``
    Score a frontier page by how many crawled pages link to it — the
    classic cheap heuristic.
``bfs``
    First-seen first-fetched (breadth-first crawl order).
``random``
    Uniform random frontier choice (seeded; the floor).

Deterministic given the configuration; ties everywhere break by
ascending page id.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.approxrank import approxrank
from repro.exceptions import SubgraphError
from repro.graph.digraph import CSRGraph
from repro.pagerank.localrank import local_pagerank
from repro.pagerank.solver import PowerIterationSettings

#: Names accepted by :class:`CrawlSimulator`.
STRATEGIES = (
    "approxrank", "local-pagerank", "indegree", "bfs", "random",
)


@dataclass(frozen=True)
class CrawlResult:
    """Outcome of one simulated crawl.

    Attributes
    ----------
    strategy:
        The frontier-scoring strategy used.
    crawl_order:
        Page ids in fetch order (seeds first).
    steps:
        Number of fetch rounds performed.
    mass_curve:
        Cumulative *true* global-PageRank mass of the crawled set
        after every round (only available when the simulator was given
        ``global_scores``); the value-per-fetch curve the strategies
        are compared on.
    runtime_seconds:
        Wall clock of the whole simulation.
    """

    strategy: str
    crawl_order: np.ndarray
    steps: int
    mass_curve: tuple[float, ...] = field(default=())
    runtime_seconds: float = 0.0

    @property
    def num_crawled(self) -> int:
        """Pages fetched, including the seeds."""
        return int(self.crawl_order.size)


class CrawlSimulator:
    """Simulates Best-First crawling over a known global graph.

    Parameters
    ----------
    graph:
        The (hidden) global graph the crawler explores.
    seed_pages:
        Initially crawled pages.
    strategy:
        One of :data:`STRATEGIES`.
    batch_size:
        Pages fetched per round (crawlers fetch in batches; re-ranking
        per single fetch would be unrealistically expensive).
    settings:
        Solver knobs for the ranking strategies.
    rng_seed:
        Seed for the ``random`` strategy.
    global_scores:
        Optional true global PageRank vector; when given, the result
        carries the cumulative-mass curve.
    """

    def __init__(
        self,
        graph: CSRGraph,
        seed_pages,
        strategy: str = "approxrank",
        batch_size: int = 20,
        settings: PowerIterationSettings | None = None,
        rng_seed: int = 0,
        global_scores: np.ndarray | None = None,
    ):
        if strategy not in STRATEGIES:
            raise SubgraphError(
                f"unknown strategy {strategy!r}; pick one of "
                f"{STRATEGIES}"
            )
        if batch_size < 1:
            raise SubgraphError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        seeds = np.unique(
            np.asarray(list(seed_pages), dtype=np.int64)
        )
        if seeds.size == 0:
            raise SubgraphError("need at least one seed page")
        if seeds.min() < 0 or seeds.max() >= graph.num_nodes:
            raise SubgraphError("a seed page id is out of range")
        self._graph = graph
        self._strategy = strategy
        self._batch_size = int(batch_size)
        self._settings = settings or PowerIterationSettings()
        self._rng = np.random.default_rng(rng_seed)
        self._seeds = seeds
        if global_scores is not None:
            global_scores = np.asarray(global_scores, dtype=np.float64)
            if global_scores.shape != (graph.num_nodes,):
                raise SubgraphError(
                    "global_scores must cover the graph"
                )
        self._global_scores = global_scores

    def run(self, budget: int) -> CrawlResult:
        """Crawl until ``budget`` pages are fetched (or frontier dry).

        ``budget`` includes the seeds.
        """
        if budget < self._seeds.size:
            raise SubgraphError(
                f"budget {budget} smaller than the seed set "
                f"({self._seeds.size})"
            )
        start = time.perf_counter()
        crawled = np.zeros(self._graph.num_nodes, dtype=bool)
        order: list[int] = list(self._seeds)
        crawled[self._seeds] = True
        arrival: dict[int, int] = {
            int(page): index for index, page in enumerate(order)
        }
        mass_curve: list[float] = []
        if self._global_scores is not None:
            mass_curve.append(
                float(self._global_scores[self._seeds].sum())
            )
        steps = 0
        while len(order) < budget:
            frontier = self._frontier(crawled)
            if frontier.size == 0:
                break
            for page in frontier:
                arrival.setdefault(int(page), len(arrival))
            take = min(self._batch_size, budget - len(order))
            chosen = self._select(crawled, frontier, take, arrival)
            crawled[chosen] = True
            order.extend(int(page) for page in chosen)
            steps += 1
            if self._global_scores is not None:
                mass_curve.append(
                    float(self._global_scores[crawled].sum())
                )
        runtime = time.perf_counter() - start
        return CrawlResult(
            strategy=self._strategy,
            crawl_order=np.asarray(order, dtype=np.int64),
            steps=steps,
            mass_curve=tuple(mass_curve),
            runtime_seconds=runtime,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _frontier(self, crawled: np.ndarray) -> np.ndarray:
        crawled_ids = np.flatnonzero(crawled)
        rows = self._graph.adjacency[crawled_ids]
        targets = np.unique(rows.indices)
        return targets[~crawled[targets]]

    def _select(
        self,
        crawled: np.ndarray,
        frontier: np.ndarray,
        take: int,
        arrival: dict[int, int],
    ) -> np.ndarray:
        if self._strategy == "random":
            permuted = self._rng.permutation(frontier)
            return np.sort(permuted[:take])
        if self._strategy == "bfs":
            by_arrival = sorted(
                (arrival[int(page)], int(page)) for page in frontier
            )
            return np.asarray(
                [page for __, page in by_arrival[:take]],
                dtype=np.int64,
            )
        if self._strategy == "indegree":
            crawled_ids = np.flatnonzero(crawled)
            rows = self._graph.adjacency[crawled_ids]
            counts = np.zeros(self._graph.num_nodes)
            np.add.at(counts, rows.indices, 1.0)
            scores = counts[frontier]
        else:
            scores = self._rank_subgraph_scores(crawled, frontier)
        order = np.lexsort((frontier, -scores))
        return np.sort(frontier[order[:take]])

    def _rank_subgraph_scores(
        self, crawled: np.ndarray, frontier: np.ndarray
    ) -> np.ndarray:
        subgraph = np.union1d(np.flatnonzero(crawled), frontier)
        if self._strategy == "approxrank" and (
            subgraph.size < self._graph.num_nodes
        ):
            result = approxrank(
                self._graph, subgraph, self._settings
            )
        else:
            result = local_pagerank(
                self._graph, subgraph, self._settings
            )
        positions = np.searchsorted(result.local_nodes, frontier)
        return result.scores[positions]
