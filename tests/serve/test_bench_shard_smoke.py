"""Tier-2 performance gate: the shard-sweep benchmark in smoke mode.

Excluded from the tier-1 run by the ``tier2`` marker; CI runs it via
``make bench-shard-smoke``.  The routed-vs-offline bit-identity
clause must hold on any hardware — sharding partitions the request
keyspace, never the graph; the wall-clock speedup clause is waived
on single-core machines only.
"""

import pytest

from repro.serve.cluster.bench import run_shard_benchmark

pytestmark = [pytest.mark.tier2, pytest.mark.serve]


@pytest.fixture(scope="module")
def smoke_record():
    return run_shard_benchmark(smoke=True, output_path=None)


class TestSmokeGate:
    def test_gate_passes(self, smoke_record):
        assert smoke_record["gate_passed"], (
            "smoke gate failed: "
            f"speedup={smoke_record['speedup']:.2f}x, "
            "bit_identical="
            f"{smoke_record['agreement_bit_identical']}"
        )

    def test_routed_answers_are_bit_identical(self, smoke_record):
        assert smoke_record["agreement_bit_identical"] is True

    def test_sharding_wins_or_waiver_recorded(self, smoke_record):
        if smoke_record["speedup_gate_waived"]:
            assert smoke_record["cpu_count"] < 2
        else:
            assert (
                smoke_record["speedup"]
                >= smoke_record["target_speedup"]
            )

    def test_every_request_was_answered(self, smoke_record):
        for shape in smoke_record["shapes"]:
            assert (
                shape["requests"] == smoke_record["total_requests"]
            )
            assert (
                sum(shape["shard_spread"].values())
                == smoke_record["total_requests"]
            )

    def test_keyspace_actually_spreads(self, smoke_record):
        multi = smoke_record["shapes"][-1]
        occupied = sum(
            1 for count in multi["shard_spread"].values() if count
        )
        assert occupied > 1
