"""Top-K query answering over a ranked subgraph (Figure 1's loop).

A :class:`SubgraphSearchEngine` is the "localized search engine" box of
the paper's Figure 1: it indexes the pages of one subgraph and answers
keyword queries with the locally available pages, ordered by whatever
subgraph ranking it was given.  :func:`compare_engines` measures how
much a better ranking improves actual answer lists — the end-to-end
justification for caring about footrule accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import MetricError, SubgraphError
from repro.pagerank.result import SubgraphScores
from repro.search.lexicon import SyntheticLexicon


@dataclass(frozen=True)
class SearchHit:
    """One answer of a Top-K query."""

    page: int
    score: float
    rank: int


class SubgraphSearchEngine:
    """Keyword search over the pages of a ranked subgraph.

    Parameters
    ----------
    scores:
        Any subgraph ranking (ApproxRank, IdealRank, a baseline...).
    lexicon:
        Term assignments covering at least the subgraph's pages.
    """

    def __init__(
        self, scores: SubgraphScores, lexicon: SyntheticLexicon
    ):
        self._scores = scores
        self._lexicon = lexicon
        # Pre-sort once: queries then filter the ranked list.
        self._ranked_pages = scores.ranking()
        self._in_subgraph = set(scores.local_nodes.tolist())

    @property
    def num_indexed(self) -> int:
        """Number of pages this engine can return."""
        return len(self._in_subgraph)

    def search(
        self,
        terms: Iterable[int],
        k: int = 10,
        mode: str = "all",
    ) -> list[SearchHit]:
        """Top-``k`` subgraph pages matching the query, best first.

        Pages outside the subgraph never appear (the engine only has
        local pages, exactly as in Figure 1); matching pages are
        ordered by the engine's ranking with deterministic ties.
        """
        if k < 1:
            raise SubgraphError(f"k must be >= 1, got {k}")
        matching = self._lexicon.pages_matching(terms, mode)
        matching_set = set(matching.tolist()) & self._in_subgraph
        hits: list[SearchHit] = []
        for rank, page in enumerate(self._ranked_pages, start=1):
            if int(page) in matching_set:
                hits.append(
                    SearchHit(
                        page=int(page),
                        score=self._scores.score_of(int(page)),
                        rank=rank,
                    )
                )
                if len(hits) == k:
                    break
        return hits


def answer_overlap(
    answers_a: Sequence[SearchHit], answers_b: Sequence[SearchHit]
) -> float:
    """Fraction of overlap between two answer lists (by page id).

    Uses the shorter list's length as the denominator; two empty lists
    agree completely (1.0).
    """
    if not answers_a and not answers_b:
        return 1.0
    pages_a = {hit.page for hit in answers_a}
    pages_b = {hit.page for hit in answers_b}
    denominator = min(len(pages_a), len(pages_b))
    if denominator == 0:
        return 0.0
    return len(pages_a & pages_b) / denominator


def compare_engines(
    estimate_scores: SubgraphScores,
    reference_scores: SubgraphScores,
    lexicon: SyntheticLexicon,
    queries: Sequence[Sequence[int]],
    k: int = 10,
) -> float:
    """Mean Top-K answer overlap between two rankings of one subgraph.

    Parameters
    ----------
    estimate_scores:
        The ranking under test (e.g. ApproxRank output).
    reference_scores:
        The gold ranking (e.g. global PageRank restricted to the
        subgraph, wrapped in a :class:`SubgraphScores`).
    lexicon / queries / k:
        The query workload.

    Returns
    -------
    Mean per-query overlap in [0, 1]; 1.0 means every query returned
    the same Top-K set as the reference engine.
    """
    if not queries:
        raise MetricError("need at least one query")
    if not np.array_equal(
        estimate_scores.local_nodes, reference_scores.local_nodes
    ):
        raise MetricError(
            "engines must index the same subgraph to be comparable"
        )
    engine = SubgraphSearchEngine(estimate_scores, lexicon)
    reference = SubgraphSearchEngine(reference_scores, lexicon)
    overlaps = [
        answer_overlap(
            engine.search(query, k), reference.search(query, k)
        )
        for query in queries
    ]
    return float(np.mean(overlaps))


def reference_engine_scores(
    global_scores: np.ndarray, local_nodes: np.ndarray
) -> SubgraphScores:
    """Wrap restricted global scores as a gold-standard ranking."""
    local_nodes = np.asarray(local_nodes, dtype=np.int64)
    return SubgraphScores(
        local_nodes=local_nodes.copy(),
        scores=np.asarray(global_scores, dtype=np.float64)[
            local_nodes
        ].copy(),
        method="global-reference",
        iterations=0,
        residual=0.0,
        converged=True,
        runtime_seconds=0.0,
    )
