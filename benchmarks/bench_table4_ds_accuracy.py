"""Table IV bench: DS-subgraph footrule accuracy, four algorithms (§V-D).

Regenerates the full 12-domain Table IV and additionally benchmarks
each algorithm on three representative domains (small / medium /
large), asserting the paper's ordering: ApproxRank best, local
PageRank worst.
"""

from __future__ import annotations

import pytest

from repro.experiments import table4
from repro.experiments.runner import run_algorithms
from repro.subgraphs.domain import domain_subgraph

REPRESENTATIVE_DOMAINS = ("acu.edu.au", "csu.edu.au", "anu.edu.au")
ALGORITHMS = ("local-pr", "lpr2", "sc", "approxrank")


class TestTable4Regeneration:
    def test_regenerate_table4(self, benchmark, bench_context):
        result = benchmark.pedantic(
            lambda: table4.run(bench_context), rounds=1, iterations=1
        )
        print()
        print(result.render())
        approx = result.column("AR (ours)")
        local_pr = result.column("localPR (ours)")
        wins = sum(a < l for a, l in zip(approx, local_pr))
        assert wins >= 11  # ApproxRank beats local PR essentially always


@pytest.mark.parametrize("domain", REPRESENTATIVE_DOMAINS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestPerDomainAlgorithm:
    def test_algorithm_accuracy(
        self, benchmark, domain, algorithm, bench_context, au
    ):
        nodes = domain_subgraph(au, domain)

        def run_once():
            return run_algorithms(
                bench_context, au, nodes, algorithms=(algorithm,)
            )[algorithm]

        rounds = 1 if algorithm == "sc" else 3
        run = benchmark.pedantic(run_once, rounds=rounds, iterations=1)
        assert 0.0 <= run.report.footrule <= 1.0
        if algorithm == "approxrank":
            assert run.report.footrule < 0.25
