"""Solver-backend benchmark: reference vs compiled, float64 vs float32.

The measurement harness behind ``benchmarks/bench_backends.py`` and the
``python -m repro bench-backends`` CLI subcommand.  It sweeps the
pluggable solver backends (:mod:`repro.pagerank.backends`) over one
AU-like reference workload:

* **single-solve sweep** — a full global PageRank solve on every
  (backend, dtype) cell: ``reference/float64`` (the baseline),
  ``reference/float32``, ``numba/float64``, ``numba/float32``.  Each
  cell reports wall-clock, speedup vs the baseline and the L1 distance
  of its scores from the baseline's.
* **thread sweep** — :func:`repro.parallel.rank_many_threaded` over
  the 12 named DS domains at 1/2/4 threads (capped at
  ``os.cpu_count()``; skipped counts are recorded, not silently
  dropped), on the best available backend.
* **accuracy gates** — ``numba/float64`` must agree with the
  reference to ≤ :data:`NUMBA_F64_L1_GATE` L1 (same per-row
  accumulation order; only the parallel reductions reorder), and every
  float32 cell must land within the documented
  :func:`repro.pagerank.backends.float32_l1_bound`.

Gate semantics mirror ``BENCH_parallel.json``: clauses the environment
cannot exercise are **waived and recorded** (``waivers`` in the JSON)
rather than failed — numba absent waives the compiled cells and the
compiled-speedup clause, a single-core box waives thread scaling.  The
record is written to ``BENCH_backend.json``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

import numpy as np

from repro.generators.datasets import AU_NAMED_DOMAINS, make_au_like
from repro.pagerank.backends import (
    available_backends,
    float32_l1_bound,
    get_backend,
)
from repro.pagerank.kernels import PowerIterationWorkspace
from repro.pagerank.solver import (
    PowerIterationSettings,
    power_iteration,
    uniform_teleport,
)
from repro.parallel import rank_many_threaded
from repro.perf.cache import TransitionCache
from repro.subgraphs.domain import domain_subgraph

#: Default record location (repo root when run from the checkout).
DEFAULT_OUTPUT = "BENCH_backend.json"

#: Reference workload sizes (pages in the AU-like dataset).
FULL_PAGES = 30_000
SMOKE_PAGES = 4_000

#: The (backend, dtype) cells of the single-solve sweep; the first is
#: the baseline every other cell is compared against.
BACKEND_CELLS: tuple[tuple[str, str], ...] = (
    ("reference", "float64"),
    ("reference", "float32"),
    ("numba", "float64"),
    ("numba", "float32"),
)

#: Thread counts swept through ``rank_many_threaded``.
THREAD_SWEEP = (1, 2, 4)

#: Hard L1 agreement required of numba/float64 vs the reference.
NUMBA_F64_L1_GATE = 1e-12

#: Wall-clock targets (recorded; enforced only when the environment
#: can exercise them — see the waiver semantics above).
TARGET_COMPILED_SPEEDUP = 1.5
TARGET_THREAD_SPEEDUP = 1.5

#: Timed repetitions per configuration; the best run is reported.
TIMING_REPS = 3


def run_backend_benchmark(
    smoke: bool = False,
    pages: int | None = None,
    seed: int = 2009,
    output_path: str | None = DEFAULT_OUTPUT,
) -> dict[str, Any]:
    """Run the backend sweep and (optionally) write the record.

    Parameters
    ----------
    smoke:
        Small workload + hard gate: ``gate_passed`` is the CI
        criterion (accuracy always; speedups when the environment has
        the cores/compiler to exercise them).
    pages:
        Override the AU-like dataset size.
    seed:
        Dataset generation seed.
    output_path:
        Where to write the JSON record; ``None`` skips writing.

    Returns
    -------
    The record that was (or would have been) written.
    """
    num_pages = pages if pages is not None else (
        SMOKE_PAGES if smoke else FULL_PAGES
    )
    dataset = make_au_like(num_pages=num_pages, seed=seed)
    graph = dataset.graph
    settings = PowerIterationSettings()
    cache = TransitionCache()
    transition_t, dangling_mask = cache.transition_transpose(graph)
    teleport = uniform_teleport(graph.num_nodes)
    cpu_count = os.cpu_count() or 1
    availability = available_backends()
    waivers: list[dict[str, str]] = []

    def timed_solve(backend):
        workspace = PowerIterationWorkspace(
            graph.num_nodes, dtype=backend.dtype
        )
        outcome = None
        best = float("inf")
        # One untimed warm-up absorbs first-call costs (prepare:
        # dtype cast / relabel, and for numba the JIT compilation).
        power_iteration(
            transition_t,
            teleport,
            dangling_mask=dangling_mask,
            settings=settings,
            workspace=workspace,
            backend=backend,
        )
        for __ in range(TIMING_REPS):
            start = time.perf_counter()
            outcome = power_iteration(
                transition_t,
                teleport,
                dangling_mask=dangling_mask,
                settings=settings,
                workspace=workspace,
                backend=backend,
            )
            best = min(best, time.perf_counter() - start)
        return best, outcome

    # --- single-solve sweep ------------------------------------------
    baseline_seconds = None
    baseline_scores = None
    cells: list[dict[str, Any]] = []
    accuracy_ok = True
    best_compiled_speedup = 0.0
    for name, dtype in BACKEND_CELLS:
        if not availability.get(name, False):
            cells.append(
                {
                    "backend": name,
                    "dtype": dtype,
                    "skipped": True,
                    "reason": f"backend {name!r} unavailable "
                    f"(optional dependency not installed)",
                }
            )
            continue
        backend = get_backend(name, dtype=dtype)
        seconds, outcome = timed_solve(backend)
        if baseline_scores is None:
            baseline_seconds, baseline_scores = seconds, outcome.scores
        l1_gap = float(np.abs(outcome.scores - baseline_scores).sum())
        cell: dict[str, Any] = {
            "backend": name,
            "dtype": dtype,
            "layout": backend.layout,
            "skipped": False,
            "seconds": seconds,
            "iterations": int(outcome.iterations),
            "converged": bool(outcome.converged),
            "speedup_vs_reference_f64": (
                baseline_seconds / seconds if seconds else float("inf")
            ),
            "l1_vs_reference_f64": l1_gap,
        }
        if dtype == "float32":
            bound = float32_l1_bound(
                graph.num_nodes, settings.tolerance, settings.damping
            )
            cell["l1_bound"] = bound
            cell["within_bound"] = bool(l1_gap <= bound)
            accuracy_ok = accuracy_ok and cell["within_bound"]
        elif name == "numba":
            cell["l1_gate"] = NUMBA_F64_L1_GATE
            cell["within_gate"] = bool(l1_gap <= NUMBA_F64_L1_GATE)
            accuracy_ok = accuracy_ok and cell["within_gate"]
        if name != "reference" and dtype == "float64":
            best_compiled_speedup = max(
                best_compiled_speedup, cell["speedup_vs_reference_f64"]
            )
        cells.append(cell)

    # --- thread sweep -------------------------------------------------
    sweep_backend = "numba" if availability.get("numba") else "reference"
    subgraphs = [
        (domain, domain_subgraph(dataset, domain))
        for domain, __ in AU_NAMED_DOMAINS
    ]
    skipped_thread_counts = sorted(
        {int(t) for t in THREAD_SWEEP if t > cpu_count}
    )
    thread_counts = tuple(t for t in THREAD_SWEEP if t <= cpu_count)

    def timed_threads(count: int):
        best = float("inf")
        scores = None
        for __ in range(TIMING_REPS):
            start = time.perf_counter()
            scores = rank_many_threaded(
                graph,
                subgraphs,
                algorithm="approxrank",
                settings=settings,
                threads=count,
                backend=sweep_backend,
            )
            best = min(best, time.perf_counter() - start)
        return best, scores

    timed_threads(1)  # warm the shared caches / compiled kernels
    serial_seconds, serial_scores = timed_threads(1)
    thread_sweep: list[dict[str, Any]] = []
    threads_exact = True
    best_thread_speedup = 0.0
    for count in thread_counts:
        if count == 1:
            seconds, scores = serial_seconds, serial_scores
        else:
            seconds, scores = timed_threads(count)
        exact = all(
            np.array_equal(a.scores, b.scores)
            for a, b in zip(scores, serial_scores)
        )
        threads_exact = threads_exact and exact
        speedup = serial_seconds / seconds if seconds else float("inf")
        if count > 1:
            best_thread_speedup = max(best_thread_speedup, speedup)
        thread_sweep.append(
            {
                "threads": count,
                "seconds": seconds,
                "speedup_vs_serial": speedup,
                "exact_match_vs_serial": bool(exact),
            }
        )

    # --- gates and waivers --------------------------------------------
    if not availability.get("numba"):
        waivers.append(
            {
                "gate": "compiled_speedup",
                "reason": "numba not installed; compiled cells skipped",
            }
        )
        compiled_ok = True
    else:
        compiled_ok = best_compiled_speedup > 1.0
    if cpu_count < 2:
        waivers.append(
            {
                "gate": "thread_scaling",
                "reason": f"single-core machine (cpu_count={cpu_count})",
            }
        )
        thread_ok = True
    elif not availability.get("numba"):
        waivers.append(
            {
                "gate": "thread_scaling",
                "reason": "reference backend holds the GIL; threads "
                "cannot scale without the numba backend",
            }
        )
        thread_ok = True
    else:
        thread_ok = best_thread_speedup > 1.0

    gate_passed = bool(
        accuracy_ok and threads_exact and compiled_ok and thread_ok
    )
    record: dict[str, Any] = {
        "benchmark": "solver_backends",
        "created_unix": time.time(),
        "smoke": bool(smoke),
        "cpu_count": int(cpu_count),
        "backends_available": availability,
        "workload": {
            "dataset": dataset.name,
            "pages": int(graph.num_nodes),
            "edges": int(graph.num_edges),
            "subgraphs": len(subgraphs),
            "seed": int(seed),
            "damping": settings.damping,
            "tolerance": settings.tolerance,
        },
        "single_solve": cells,
        "thread_backend": sweep_backend,
        "thread_sweep": thread_sweep,
        "skipped_thread_counts": skipped_thread_counts,
        "target_compiled_speedup": TARGET_COMPILED_SPEEDUP,
        "target_thread_speedup": TARGET_THREAD_SPEEDUP,
        "best_compiled_speedup": best_compiled_speedup,
        "best_thread_speedup": best_thread_speedup,
        "accuracy_ok": bool(accuracy_ok),
        "threads_exact": bool(threads_exact),
        "waivers": waivers,
        "gate_passed": gate_passed,
    }
    if output_path is not None:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=False)
            handle.write("\n")
    return record


def format_backend_summary(record: dict[str, Any]) -> str:
    """Human-readable one-screen summary of a benchmark record."""
    workload = record["workload"]
    lines = [
        f"solver backend benchmark "
        f"({workload['pages']} pages, {workload['edges']} edges, "
        f"{record['cpu_count']} cpu(s)"
        f"{', smoke' if record['smoke'] else ''})",
    ]
    for cell in record["single_solve"]:
        label = f"{cell['backend']}/{cell['dtype']}"
        if cell.get("skipped"):
            lines.append(f"  {label:<18}: skipped — {cell['reason']}")
            continue
        line = (
            f"  {label:<18}: {cell['seconds']:.3f}s "
            f"({cell['speedup_vs_reference_f64']:.2f}x vs baseline, "
            f"L1 gap {cell['l1_vs_reference_f64']:.2e}"
        )
        if "within_bound" in cell:
            line += (
                f", bound {cell['l1_bound']:.2e} "
                f"{'OK' if cell['within_bound'] else 'EXCEEDED'}"
            )
        if "within_gate" in cell:
            line += (
                f", gate {cell['l1_gate']:.0e} "
                f"{'OK' if cell['within_gate'] else 'EXCEEDED'}"
            )
        lines.append(line + ")")
    lines.append(
        f"  threads ({record['thread_backend']} backend):"
    )
    for entry in record["thread_sweep"]:
        lines.append(
            f"    threads={entry['threads']}: {entry['seconds']:.3f}s "
            f"({entry['speedup_vs_serial']:.2f}x vs serial, "
            f"exact={'yes' if entry['exact_match_vs_serial'] else 'NO'})"
        )
    skipped = record.get("skipped_thread_counts") or []
    if skipped:
        lines.append(
            f"    skipped: threads {skipped} "
            f"(> {record['cpu_count']} cpu(s))"
        )
    for waiver in record["waivers"]:
        lines.append(f"  waived  : {waiver['gate']} — {waiver['reason']}")
    lines.append(
        f"  gate    : {'PASS' if record['gate_passed'] else 'FAIL'}"
    )
    return "\n".join(lines)
