"""Unit tests for top-k overlap."""

import numpy as np
import pytest

from repro.exceptions import MetricError
from repro.metrics.topk import top_k_overlap


class TestTopKOverlap:
    def test_identical_full_overlap(self):
        scores = np.array([0.4, 0.3, 0.2, 0.1])
        assert top_k_overlap(scores, scores, 2) == 1.0

    def test_disjoint_tops(self):
        reference = np.array([1.0, 0.9, 0.1, 0.2])
        estimate = np.array([0.1, 0.2, 1.0, 0.9])
        assert top_k_overlap(reference, estimate, 2) == 0.0

    def test_partial_overlap(self):
        reference = np.array([1.0, 0.9, 0.8, 0.1])
        estimate = np.array([1.0, 0.1, 0.8, 0.9])
        # top-2: ref {0,1}, est {0,3} -> overlap 1 of 2.
        assert top_k_overlap(reference, estimate, 2) == 0.5

    def test_k_clipped_to_size(self):
        scores = np.array([0.6, 0.4])
        assert top_k_overlap(scores, scores, 100) == 1.0

    def test_set_semantics_order_within_top_ignored(self):
        reference = np.array([0.9, 0.8, 0.1])
        estimate = np.array([0.8, 0.9, 0.1])  # swapped top two
        assert top_k_overlap(reference, estimate, 2) == 1.0

    def test_deterministic_tie_break(self):
        # Ties broken by ascending index on both sides.
        reference = np.array([0.5, 0.5, 0.5])
        estimate = np.array([0.5, 0.5, 0.5])
        assert top_k_overlap(reference, estimate, 2) == 1.0

    def test_rejects_bad_k(self):
        with pytest.raises(MetricError, match="k must be positive"):
            top_k_overlap(np.ones(3), np.ones(3), 0)

    def test_rejects_mismatched(self):
        with pytest.raises(MetricError, match="aligned"):
            top_k_overlap(np.ones(2), np.ones(3), 1)

    def test_rejects_empty(self):
        with pytest.raises(MetricError, match="empty"):
            top_k_overlap(np.array([]), np.array([]), 1)

    def test_bounded(self):
        rng = np.random.default_rng(10)
        for __ in range(10):
            a, b = rng.random(20), rng.random(20)
            assert 0.0 <= top_k_overlap(a, b, 5) <= 1.0
