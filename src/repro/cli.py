"""Command-line interface: ``python -m repro <experiment>``.

Examples
--------
Run one table at reduced scale::

    python -m repro table4 --fast

Run the full reproduction and write EXPERIMENTS.md content::

    python -m repro all --markdown --output EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments import (
    ablation,
    crawl_value,
    extras,
    p2p_convergence,
    figure7,
    table2,
    table3,
    table4,
    table5,
    table6,
    theorems,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.run_all import build_markdown_report, run_all

SINGLE_EXPERIMENTS = {
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "figure7": figure7.run,
    "theorems": theorems.run,
    "ablation": ablation.run,
    "extras": extras.run,
    "crawl": crawl_value.run,
    "p2p": p2p_convergence.run,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="approxrank",
        description=(
            "Reproduce the ApproxRank (ICDE 2009) evaluation: one "
            "subcommand per paper table/figure, plus 'all'."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(SINGLE_EXPERIMENTS)
        + [
            "all", "bench-kernels", "bench-parallel", "bench-serve",
            "bench-backends", "bench-updates", "bench-shard",
            "bench-estimation", "bench-semantic", "bench-diff",
            "obs-report", "semantic-search", "serve", "serve-cluster",
            "query",
        ],
        help=(
            "which experiment to run; 'bench-kernels' runs the solver "
            "kernel benchmark (BENCH_solver.json), 'bench-parallel' "
            "the multi-subgraph scaling benchmark (BENCH_parallel.json), "
            "'bench-serve' the online-service benchmark "
            "(BENCH_serve.json), 'bench-backends' the pluggable-backend "
            "benchmark (BENCH_backend.json), 'bench-updates' the "
            "incremental re-ranking benchmark (BENCH_update.json), "
            "'bench-shard' the sharded-cluster benchmark "
            "(BENCH_shard.json), 'bench-estimation' the sublinear-"
            "estimator Pareto benchmark (BENCH_estimate.json), "
            "'bench-semantic' the TS/RS/semantic diversity benchmark "
            "(BENCH_semantic.json), 'bench-diff' compares two "
            "benchmark records (regression report), 'obs-report' "
            "renders an observability snapshot written by --obs-out, "
            "'semantic-search' runs one query through the offline "
            "semantic pipeline (embed, select, rank, dedup), "
            "'serve' starts the online ranking HTTP server, "
            "'serve-cluster' a sharded fault-tolerant cluster behind "
            "one router, 'query' sends one request to a running server"
        ),
    )
    parser.add_argument(
        "snapshot", nargs="?", default=None, metavar="PATH",
        help=(
            "('obs-report') path of the obs.json snapshot to render "
            "(default: obs.json); ('bench-diff') the OLD benchmark "
            "record"
        ),
    )
    parser.add_argument(
        "snapshot_new", nargs="?", default=None, metavar="NEW",
        help="('bench-diff' only) the NEW benchmark record",
    )
    parser.add_argument(
        "--backend", choices=["auto", "reference", "numba"],
        default=None,
        help=(
            "solver backend for every power iteration in this process "
            "(equivalent to REPRO_BACKEND); 'auto' picks numba when "
            "importable and falls back to the scipy reference "
            "otherwise; scores agree within the solver tolerance"
        ),
    )
    parser.add_argument(
        "--float32", action="store_true",
        help=(
            "run solver iterations in float32 (reported scores stay "
            "float64); faster and half the memory, accurate within the "
            "documented error budget (see DESIGN.md)"
        ),
    )
    parser.add_argument(
        "--threshold", type=float, default=None,
        help=(
            "('bench-diff' only) relative noise threshold below which "
            "metric changes are suppressed (default 0.10)"
        ),
    )
    parser.add_argument(
        "--strict", action="store_true",
        help=(
            "('bench-diff' only) exit non-zero when the diff reports "
            "regressions or a lost gate (CI mode)"
        ),
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help=(
            "worker processes for the per-subgraph experiment loops "
            "(default: serial); scores are identical, only wall-clock "
            "changes"
        ),
    )
    parser.add_argument(
        "--au-pages", type=int, default=None,
        help="size of the AU-like dataset (default 50000)",
    )
    parser.add_argument(
        "--politics-pages", type=int, default=None,
        help="size of the politics-like dataset (default 60000)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="base RNG seed (default 2009)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="shrink everything for a quick smoke run",
    )
    parser.add_argument(
        "--markdown", action="store_true",
        help="emit GitHub markdown instead of aligned text",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help=(
            "('all' only) replay experiments already recorded in the "
            "checkpoint journal instead of recomputing them; the "
            "resumed report is byte-identical to an uninterrupted run"
        ),
    )
    parser.add_argument(
        "--checkpoint", type=str, default=None, metavar="PATH",
        help=(
            "('all' only) checkpoint journal path (default: "
            ".repro-checkpoint.jsonl); completed experiments are "
            "appended as they finish"
        ),
    )
    parser.add_argument(
        "--faults", type=str, default=None, metavar="SPEC",
        help=(
            "chaos-testing fault injection spec, e.g. "
            "'kill_worker:p=0.2,seed=7;transient:p=0.1' (equivalent to "
            "setting REPRO_FAULTS); faults fire only inside worker "
            "processes"
        ),
    )
    parser.add_argument(
        "--output", type=str, default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--obs", action="store_true",
        help=(
            "enable full observability (span tracing + convergence "
            "telemetry; equivalent to REPRO_OBS=1); scores are "
            "bit-identical with or without it"
        ),
    )
    parser.add_argument(
        "--obs-out", type=str, default=None, metavar="PATH",
        help=(
            "write an observability snapshot (metrics + span tree + "
            "solve history) to this JSON file when the run finishes; "
            "implies --obs; render it with 'python -m repro obs-report "
            "PATH'"
        ),
    )
    serve_group = parser.add_argument_group(
        "serving ('serve' / 'query' only)"
    )
    serve_group.add_argument(
        "--host", type=str, default="127.0.0.1",
        help="bind/connect address (default 127.0.0.1)",
    )
    serve_group.add_argument(
        "--port", type=int, default=8309,
        help="server port (default 8309; 0 picks an ephemeral port)",
    )
    serve_group.add_argument(
        "--graph", type=str, default=None, metavar="NPZ",
        help=(
            "('serve' only) serve this npz graph (written by "
            "repro.graph.io.save_npz); default: a synthetic tiny web "
            "(--fast shrinks it)"
        ),
    )
    serve_group.add_argument(
        "--no-batching", action="store_true",
        help="('serve' only) disable micro-batching (debug/baseline)",
    )
    serve_group.add_argument(
        "--store-dir", type=str, default=None, metavar="DIR",
        help=(
            "('serve' only) warm-load persisted scores from this "
            "directory at boot and persist the store there on shutdown"
        ),
    )
    serve_group.add_argument(
        "--shards", type=int, default=2,
        help=(
            "('serve-cluster' only) number of shards fronted by the "
            "router (default 2)"
        ),
    )
    serve_group.add_argument(
        "--replicas", type=int, default=2,
        help=(
            "('serve-cluster' only) replicas per shard (default 2); "
            "failover needs at least 2"
        ),
    )
    serve_group.add_argument(
        "--placement", choices=["thread", "process"],
        default="thread",
        help=(
            "('serve-cluster' only) run each replica as an in-process "
            "background thread or a forked worker process (process "
            "placement gives genuine crash isolation)"
        ),
    )
    serve_group.add_argument(
        "--nodes", type=str, default=None, metavar="IDS",
        help=(
            "('query' only) comma-separated page ids of the subgraph "
            "to rank, e.g. --nodes 0,1,2,5"
        ),
    )
    serve_group.add_argument(
        "--terms", type=str, default=None, metavar="IDS",
        help=(
            "('query'/'semantic-search') comma-separated term ids; "
            "for 'query' with --nodes the request goes to /search, "
            "without --nodes to /semantic-search; for "
            "'semantic-search' they form the offline query (default: "
            "the three most popular terms)"
        ),
    )
    serve_group.add_argument(
        "--k", type=int, default=10,
        help=(
            "('query'/'semantic-search') answers to return from "
            "/search or the semantic pipeline"
        ),
    )
    serve_group.add_argument(
        "--damping", type=float, default=None,
        help="('query' only) damping factor override",
    )
    serve_group.add_argument(
        "--estimator", type=str, default=None, metavar="SPEC",
        help=(
            "('serve'/'query') rank with a sublinear estimator "
            "instead of the exact solver, e.g. 'montecarlo', "
            "'montecarlo:walks=200000,seed=7', 'push:r_max=1e-4'; "
            "for 'serve' this sets the server's default engine, for "
            "'query' it is sent as /rank?estimator=; estimated "
            "responses are flagged with their certified error bound"
        ),
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help=(
            "log the library's repro.* loggers (executor retries, "
            "solver restarts, fault injections) to stderr at INFO level"
        ),
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """Translate CLI flags into an ExperimentConfig."""
    config = ExperimentConfig()
    if args.fast:
        config = config.fast()
    overrides = {}
    if args.au_pages is not None:
        overrides["au_pages"] = args.au_pages
    if args.politics_pages is not None:
        overrides["politics_pages"] = args.politics_pages
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    return config


def _run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: boot the online ranking server."""
    import asyncio

    from repro.serve import BatchPolicy, RankingServer, RankingService

    if args.graph:
        from repro.graph.io import load_npz

        graph, __ = load_npz(args.graph)
        origin = args.graph
    else:
        from repro.generators.datasets import make_tiny_web

        pages = 600 if args.fast else 2000
        seed = args.seed if args.seed is not None else 2009
        graph = make_tiny_web(num_pages=pages, seed=seed).graph
        origin = f"synthetic tiny web ({pages} pages, seed {seed})"

    service = RankingService(
        graph,
        policy=BatchPolicy(enabled=not args.no_batching),
        default_estimator=args.estimator,
    )
    if args.store_dir:
        loaded = service.store.warm_load(args.store_dir, graph)
        print(
            f"[warm-loaded {loaded} score entries from "
            f"{args.store_dir}]",
            file=sys.stderr,
        )
    server = RankingServer(service, host=args.host, port=args.port)

    async def _serve() -> None:
        host, port = await server.start()
        print(
            f"serving {origin}: {graph.num_nodes} pages, "
            f"{graph.num_edges} edges on http://{host}:{port}",
            file=sys.stderr,
        )
        print(
            "endpoints: POST /rank  POST /search  "
            "POST /semantic-search  GET /healthz  GET /metrics  "
            "(Ctrl-C drains and exits)",
            file=sys.stderr,
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    if args.store_dir:
        written = service.store.persist(args.store_dir)
        print(
            f"[persisted {written} score entries to {args.store_dir}]",
            file=sys.stderr,
        )
    return 0


def _run_serve_cluster(args: argparse.Namespace) -> int:
    """The ``serve-cluster`` subcommand: shards + replicas + router."""
    import time

    from repro.serve.cluster import start_cluster

    if args.graph:
        from repro.graph.io import load_npz

        graph, __ = load_npz(args.graph)
        origin = args.graph
    else:
        from repro.generators.datasets import make_tiny_web

        pages = 600 if args.fast else 2000
        seed = args.seed if args.seed is not None else 2009
        graph = make_tiny_web(num_pages=pages, seed=seed).graph
        origin = f"synthetic tiny web ({pages} pages, seed {seed})"

    handle = start_cluster(
        graph,
        num_shards=args.shards,
        replicas_per_shard=args.replicas,
        placement=args.placement,
        manager_kwargs={"host": args.host},
        host=args.host,
        port=args.port,
    )
    try:
        host, port = handle.address
        print(
            f"cluster serving {origin}: {graph.num_nodes} pages, "
            f"{graph.num_edges} edges — {args.shards} shard(s) × "
            f"{args.replicas} replica(s), {args.placement} placement, "
            f"router on http://{host}:{port}",
            file=sys.stderr,
        )
        print(
            "endpoints: POST /rank  POST /search  "
            "POST /semantic-search  POST /update  GET /healthz  "
            "GET /metrics  (Ctrl-C stops the fleet)",
            file=sys.stderr,
        )
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        handle.stop()
    return 0


def _run_query(args: argparse.Namespace) -> int:
    """One /rank, /search, or /semantic-search request."""
    import json

    from repro.exceptions import ServeRequestError
    from repro.serve.client import RankingClient

    if not args.nodes and not args.terms:
        print(
            "query requires --nodes (page ids) and/or --terms "
            "(term ids); --terms alone sends /semantic-search",
            file=sys.stderr,
        )
        return 2
    terms = (
        [int(x) for x in args.terms.split(",") if x.strip()]
        if args.terms
        else None
    )
    client = RankingClient(args.host, args.port)
    try:
        if args.nodes:
            nodes = [
                int(x) for x in args.nodes.split(",") if x.strip()
            ]
            if terms:
                payload = client.search(
                    nodes, terms, k=args.k, damping=args.damping,
                    estimator=args.estimator,
                )
            else:
                payload = client.rank(
                    nodes, damping=args.damping,
                    estimator=args.estimator,
                )
        else:
            payload = client.semantic_search(
                terms, k=args.k, damping=args.damping,
                estimator=args.estimator,
            )
    except ServeRequestError as exc:
        print(f"error (HTTP {exc.status}): {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(
            f"error: cannot reach http://{args.host}:{args.port} "
            f"({exc})",
            file=sys.stderr,
        )
        return 1
    print(json.dumps(payload, indent=2))
    return 0


def _run_semantic_search(args: argparse.Namespace) -> int:
    """One query through the offline semantic pipeline."""
    import json

    from repro.exceptions import ReproError
    from repro.search.lexicon import SyntheticLexicon
    from repro.semantic import SemanticPipeline

    seed = args.seed if args.seed is not None else 3
    if args.graph:
        from repro.graph.io import load_npz

        graph, __ = load_npz(args.graph)
        group_of = None
        origin = args.graph
    else:
        from repro.generators.datasets import make_tiny_web

        pages = 300 if args.fast else 600
        dataset = make_tiny_web(num_pages=pages, seed=seed)
        graph = dataset.graph
        group_of = dataset.labels["domain"]
        origin = f"synthetic tiny web ({pages} pages, seed {seed})"

    lexicon = SyntheticLexicon(graph, group_of=group_of, seed=seed)
    pipeline = SemanticPipeline(graph, lexicon, embedding_seed=seed)
    if args.terms:
        terms = [int(x) for x in args.terms.split(",") if x.strip()]
    else:
        terms = [int(t) for t in lexicon.popular_terms(3)]
    print(
        f"semantic search over {origin}: terms {terms}, "
        f"k={args.k}, estimator={args.estimator or 'exact'}",
        file=sys.stderr,
    )
    try:
        answer = pipeline.run(terms, k=args.k, estimator=args.estimator)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    payload = {
        "terms": terms,
        "query_digest": answer.query_digest,
        "estimator": answer.estimator,
        "estimated": answer.estimated,
        "error_bound": answer.error_bound,
        "neighborhood_size": answer.neighborhood_size,
        "candidates_pruned": answer.candidates_pruned,
        "dedup_merges": answer.dedup_merges,
        "hits": [
            {
                "page": hit.page,
                "score": hit.score,
                "rank": hit.rank,
                "similarity": hit.similarity,
                "cluster_size": hit.cluster_size,
                "merged_score": hit.merged_score,
            }
            for hit in answer.hits
        ],
    }
    report = json.dumps(payload, indent=2)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"[written to {args.output}]", file=sys.stderr)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    from repro import obs

    if args.verbose:
        import logging

        obs.configure_logging(logging.INFO)
    if args.obs or args.obs_out:
        obs.enable()

    if args.backend is not None or args.float32:
        # Applies to every solve in this process: experiments, the
        # benches, and the serving tier all resolve through the
        # process default (same effect as REPRO_BACKEND).
        from repro.pagerank.backends import set_default_backend

        spec = args.backend or "auto"
        if args.float32:
            spec += ":float32"
        set_default_backend(spec)

    if args.experiment == "bench-diff":
        from repro.perf.diff import (
            DEFAULT_THRESHOLD,
            diff_records,
            format_diff,
            load_record,
        )

        if not args.snapshot or not args.snapshot_new:
            print(
                "bench-diff requires two record paths: "
                "python -m repro bench-diff OLD.json NEW.json",
                file=sys.stderr,
            )
            return 2
        report = diff_records(
            load_record(args.snapshot),
            load_record(args.snapshot_new),
            threshold=(
                args.threshold
                if args.threshold is not None
                else DEFAULT_THRESHOLD
            ),
        )
        print(format_diff(report))
        if args.strict and (report["regressions"] or report["gate_lost"]):
            return 1
        return 0

    if args.experiment == "obs-report":
        snapshot = obs.load_snapshot(args.snapshot or "obs.json")
        report = obs.render_report(snapshot)
        print(report, end="")
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(report)
            print(f"[written to {args.output}]", file=sys.stderr)
        return 0

    if args.faults is not None:
        # Validate the spec up front (a typo should fail the CLI, not
        # a worker), then arm it for every pool this process builds.
        import os

        from repro.resilience.faults import parse_faults

        parse_faults(args.faults)
        os.environ["REPRO_FAULTS"] = args.faults

    if args.experiment == "bench-kernels":
        # Perf benchmark, not a paper table: --fast maps to smoke mode
        # (small workload + hard gate), --output overrides the record
        # path, --seed seeds the workload.
        from repro.perf.bench import format_summary, run_kernel_benchmark

        record = run_kernel_benchmark(
            smoke=args.fast,
            seed=args.seed if args.seed is not None else 2009,
            output_path=args.output or "BENCH_solver.json",
        )
        print(format_summary(record))
        return 0 if (not args.fast or record["gate_passed"]) else 1

    if args.experiment == "bench-parallel":
        # Scaling benchmark for the multi-subgraph batch engine;
        # --fast maps to smoke mode (small workload + hard gate).
        from repro.perf.parallel_bench import (
            format_parallel_summary,
            run_parallel_benchmark,
        )

        record = run_parallel_benchmark(
            smoke=args.fast,
            seed=args.seed if args.seed is not None else 2009,
            output_path=args.output or "BENCH_parallel.json",
        )
        print(format_parallel_summary(record))
        return 0 if (not args.fast or record["gate_passed"]) else 1

    if args.experiment == "bench-serve":
        # Online-service benchmark: micro-batched vs sequential
        # request solving; --fast maps to smoke mode (hard gate).
        from repro.serve.bench import (
            format_serve_summary,
            run_serve_benchmark,
        )

        record = run_serve_benchmark(
            smoke=args.fast,
            seed=args.seed if args.seed is not None else 2009,
            output_path=args.output or "BENCH_serve.json",
        )
        print(format_serve_summary(record))
        return 0 if (not args.fast or record["gate_passed"]) else 1

    if args.experiment == "bench-backends":
        # Backend matrix benchmark (reference vs numba, float64 vs
        # float32, thread scaling); --fast maps to smoke mode.
        from repro.perf.backend_bench import (
            format_backend_summary,
            run_backend_benchmark,
        )

        record = run_backend_benchmark(
            smoke=args.fast,
            seed=args.seed if args.seed is not None else 2009,
            output_path=args.output or "BENCH_backend.json",
        )
        print(format_backend_summary(record))
        return 0 if (not args.fast or record["gate_passed"]) else 1

    if args.experiment == "bench-updates":
        # Incremental re-ranking benchmark: warm-started vs cold
        # regional solves over a seeded edge-churn stream; --fast maps
        # to smoke mode (small workload + hard gate).
        from repro.updates.bench import (
            format_update_summary,
            run_update_benchmark,
        )

        record = run_update_benchmark(
            smoke=args.fast,
            seed=args.seed if args.seed is not None else 2009,
            output_path=args.output or "BENCH_update.json",
        )
        print(format_update_summary(record))
        return 0 if (not args.fast or record["gate_passed"]) else 1

    if args.experiment == "bench-shard":
        # Sharded-cluster benchmark: closed-loop load through the
        # router over a 1/2/4-shard sweep; --fast maps to smoke mode.
        from repro.serve.cluster.bench import (
            format_shard_summary,
            run_shard_benchmark,
        )

        record = run_shard_benchmark(
            smoke=args.fast,
            seed=args.seed if args.seed is not None else 2009,
            output_path=args.output or "BENCH_shard.json",
        )
        print(format_shard_summary(record))
        return 0 if (not args.fast or record["gate_passed"]) else 1

    if args.experiment == "bench-estimation":
        # Sublinear-estimator benchmark: error-vs-time Pareto sweep
        # of Monte Carlo and local-push against the exact solver;
        # --fast maps to smoke mode (small workload + hard gate).
        from repro.estimation.bench import (
            format_estimation_summary,
            run_estimation_benchmark,
        )

        record = run_estimation_benchmark(
            smoke=args.fast,
            seed=args.seed if args.seed is not None else 2009,
            output_path=args.output or "BENCH_estimate.json",
        )
        print(format_estimation_summary(record))
        return 0 if (not args.fast or record["gate_passed"]) else 1

    if args.experiment == "bench-semantic":
        # Semantic diversity benchmark: TS/RS/semantic subgraph
        # families compared on bound tightness, edges touched, and
        # latency; --fast maps to smoke mode (hard gate).
        from repro.semantic.bench import (
            format_semantic_summary,
            run_semantic_benchmark,
        )

        record = run_semantic_benchmark(
            smoke=args.fast,
            seed=args.seed if args.seed is not None else 2009,
            output_path=args.output or "BENCH_semantic.json",
        )
        print(format_semantic_summary(record))
        return 0 if (not args.fast or record["gate_passed"]) else 1

    if args.experiment == "semantic-search":
        return _run_semantic_search(args)

    if args.experiment == "serve":
        return _run_serve(args)

    if args.experiment == "serve-cluster":
        return _run_serve_cluster(args)

    if args.experiment == "query":
        return _run_query(args)

    context = ExperimentContext(
        config_from_args(args), workers=args.workers
    )

    if args.experiment == "all":
        from repro.experiments.run_all import DEFAULT_CHECKPOINT

        results = run_all(
            context,
            verbose=not args.markdown,
            checkpoint=args.checkpoint or DEFAULT_CHECKPOINT,
            resume=args.resume,
        )
        report = build_markdown_report(results, context)
        if args.markdown:
            print(report)
    else:
        result = SINGLE_EXPERIMENTS[args.experiment](context)
        report = (
            result.to_markdown() if args.markdown else result.render()
        )
        print(report)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"[written to {args.output}]", file=sys.stderr)

    if args.obs_out:
        obs.write_snapshot(args.obs_out)
        print(
            f"[observability snapshot written to {args.obs_out}; "
            f"render with: python -m repro obs-report {args.obs_out}]",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
