"""Unit tests for semantic data graphs."""

import pytest

from repro.exceptions import SchemaError
from repro.objectrank.datagraph import DataGraphBuilder
from repro.objectrank.schema import AuthoritySchema, TransferEdge


@pytest.fixture
def schema():
    return AuthoritySchema(
        types=["author", "paper", "venue"],
        edges=[
            TransferEdge("author", "paper", 0.2),
            TransferEdge("paper", "author", 0.3),
            TransferEdge("venue", "paper", 0.5),
            # no paper -> venue backward edge
        ],
    )


class TestBuilder:
    def test_entities_get_sequential_ids(self, schema):
        builder = DataGraphBuilder(schema)
        a = builder.add_entity("author", "Ada")
        p = builder.add_entity("paper")
        assert (a, p) == (0, 1)
        assert builder.num_entities == 2

    def test_relation_creates_declared_directions(self, schema):
        builder = DataGraphBuilder(schema)
        a = builder.add_entity("author")
        p = builder.add_entity("paper")
        builder.add_relation(a, p)
        data = builder.build()
        assert data.graph.edge_weight(a, p) == 0.2
        assert data.graph.edge_weight(p, a) == 0.3

    def test_one_way_relation(self, schema):
        builder = DataGraphBuilder(schema)
        v = builder.add_entity("venue")
        p = builder.add_entity("paper")
        builder.add_relation(v, p)
        data = builder.build()
        assert data.graph.edge_weight(v, p) == 0.5
        assert data.graph.edge_weight(p, v) == 0.0

    def test_relation_direction_normalised(self, schema):
        # add_relation(p, v) must still find the declared venue->paper
        # direction.
        builder = DataGraphBuilder(schema)
        v = builder.add_entity("venue")
        p = builder.add_entity("paper")
        builder.add_relation(p, v)
        data = builder.build()
        assert data.graph.edge_weight(v, p) == 0.5

    def test_rejects_undeclared_pair(self, schema):
        builder = DataGraphBuilder(schema)
        a = builder.add_entity("author")
        v = builder.add_entity("venue")
        with pytest.raises(SchemaError, match="no transfer"):
            builder.add_relation(a, v)

    def test_rejects_unknown_entity(self, schema):
        builder = DataGraphBuilder(schema)
        builder.add_entity("author")
        with pytest.raises(SchemaError, match="unknown entity"):
            builder.add_relation(0, 5)

    def test_rejects_unknown_type(self, schema):
        builder = DataGraphBuilder(schema)
        with pytest.raises(SchemaError, match="not a declared"):
            builder.add_entity("reviewer")

    def test_default_names(self, schema):
        builder = DataGraphBuilder(schema)
        builder.add_entity("author")
        data = builder.build()
        assert data.names[0] == "author#0"


class TestDataGraphQueries:
    def test_entities_of_type(self, schema):
        builder = DataGraphBuilder(schema)
        builder.add_entity("author")
        builder.add_entity("paper")
        builder.add_entity("author")
        data = builder.build()
        assert data.entities_of_type("author").tolist() == [0, 2]

    def test_entities_of_types(self, schema):
        builder = DataGraphBuilder(schema)
        builder.add_entity("author")
        builder.add_entity("paper")
        builder.add_entity("venue")
        data = builder.build()
        result = data.entities_of_types({"author", "venue"})
        assert result.tolist() == [0, 2]
