"""Algorithm suites: run every ranker on a subgraph and evaluate it.

The evaluation sections of the paper repeat one recipe per subgraph —
run each algorithm, compare its output against the restricted global
PageRank, collect metrics and runtimes.  :func:`run_algorithms`
packages that recipe so each table module is just workload definition
plus row formatting.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.baselines.localpr import local_pagerank_baseline
from repro.baselines.lpr2 import lpr2
from repro.baselines.sc import SCSettings, stochastic_complementation
from repro.core.approxrank import approxrank
from repro.experiments.context import ExperimentContext
from repro.generators.datasets import WebDataset
from repro.metrics.evaluation import EvaluationReport, evaluate_estimate
from repro.obs.metrics import ITERATION_BUCKETS, REGISTRY, SECONDS_BUCKETS
from repro.obs.tracing import span
from repro.pagerank.result import SubgraphScores

#: Signature every ranker exposes to the harness.
Ranker = Callable[[np.ndarray], SubgraphScores]


def _journal_progress(
    context: ExperimentContext,
    dataset: WebDataset,
    label: str,
    runs: "dict[str, AlgorithmRun]",
) -> None:
    """Record one subgraph's completed solves in the context journal.

    Fine-grained progress breadcrumbs (score digest, iteration count,
    solver runtime) under ``progress/<dataset>/<label>/<algo>`` keys —
    forensic state for diagnosing an interrupted ``--resume`` run.
    Resume *replay* happens at experiment granularity in ``run_all``;
    these records are append-only telemetry and never change results.
    """
    journal = getattr(context, "journal", None)
    if journal is None:
        return
    for algo, run in runs.items():
        scores = np.ascontiguousarray(run.estimate.scores)
        journal.append(
            f"progress/{dataset.name}/{label}/{algo}",
            {
                "score_sha256": hashlib.sha256(scores.tobytes()).hexdigest(),
                "iterations": int(run.estimate.iterations),
                "runtime_seconds": float(run.estimate.runtime_seconds),
            },
        )


@dataclass(frozen=True)
class AlgorithmRun:
    """One algorithm's result and evaluation on one subgraph."""

    name: str
    estimate: SubgraphScores
    report: EvaluationReport


def _record_estimate(name: str, estimate: SubgraphScores) -> None:
    """Route one ranker result's accounting into the metrics registry.

    Recorded in the parent for both the serial and parallel paths, so
    per-algorithm runtime/iteration metrics do not depend on the
    worker count (worker registries additionally ship the lower-level
    solver metrics when observability is on).
    """
    REGISTRY.counter(
        "repro_algorithm_runs_total",
        "Evaluated (subgraph, algorithm) solves",
        algorithm=name,
    ).inc()
    REGISTRY.histogram(
        "repro_algorithm_runtime_seconds",
        "Ranker wall-clock per subgraph solve",
        buckets=SECONDS_BUCKETS,
        algorithm=name,
    ).observe(float(estimate.runtime_seconds))
    REGISTRY.histogram(
        "repro_algorithm_iterations",
        "Solver iterations per subgraph solve",
        buckets=ITERATION_BUCKETS,
        algorithm=name,
    ).observe(int(estimate.iterations))


def standard_rankers(
    context: ExperimentContext,
    dataset: WebDataset,
    include_sc: bool = True,
) -> dict[str, Ranker]:
    """The paper's algorithm suite with shared settings.

    Keys follow the paper's symbols: ``"local-pr"`` (■), ``"sc"`` (◆),
    ``"lpr2"`` (●), ``"approxrank"`` (▲).  ApproxRank uses the shared
    per-dataset preprocessor, mirroring the paper's multi-subgraph
    precomputation scenario; SC uses the configured expansion count.

    The dataset's transition matrix is prewarmed into the process-wide
    cache here, so every ranker in the suite (and every subgraph the
    table loops over) shares one CSR build instead of rebuilding it
    per call.
    """
    from repro.perf.cache import cached_transition_matrix

    graph = dataset.graph
    cached_transition_matrix(graph)
    settings = context.settings
    sc_settings = SCSettings(expansions=context.config.sc_expansions)
    rankers: dict[str, Ranker] = {
        "local-pr": lambda nodes: local_pagerank_baseline(
            graph, nodes, settings
        ),
        "lpr2": lambda nodes: lpr2(graph, nodes, settings),
        "approxrank": lambda nodes: approxrank(
            graph,
            nodes,
            settings,
            preprocessor=context.preprocessor(dataset),
        ),
    }
    if include_sc:
        rankers["sc"] = lambda nodes: stochastic_complementation(
            graph, nodes, settings, sc_settings
        )
    return rankers


def run_algorithms(
    context: ExperimentContext,
    dataset: WebDataset,
    local_nodes: np.ndarray,
    rankers: Mapping[str, Ranker] | None = None,
    algorithms: Iterable[str] | None = None,
) -> dict[str, AlgorithmRun]:
    """Run (a subset of) the suite on one subgraph and evaluate it.

    Parameters
    ----------
    context / dataset:
        Shared state; ground truth comes from
        ``context.ground_truth(dataset)``.
    local_nodes:
        Global page ids of the subgraph.
    rankers:
        Override the algorithm suite (defaults to
        :func:`standard_rankers`).
    algorithms:
        Restrict to these names, in this order.

    Returns
    -------
    dict mapping algorithm name to its :class:`AlgorithmRun`,
    insertion-ordered as executed.
    """
    truth = context.ground_truth(dataset)
    if rankers is None:
        rankers = standard_rankers(context, dataset)
    names = list(algorithms) if algorithms is not None else list(rankers)
    runs: dict[str, AlgorithmRun] = {}
    for name in names:
        if name not in rankers:
            raise KeyError(
                f"unknown algorithm {name!r}; available: {sorted(rankers)}"
            )
        with span(f"solve:{name}"):
            estimate = rankers[name](local_nodes)
        _record_estimate(name, estimate)
        report = evaluate_estimate(truth.scores, estimate)
        runs[name] = AlgorithmRun(
            name=name, estimate=estimate, report=report
        )
    return runs


def run_algorithms_many(
    context: ExperimentContext,
    dataset: WebDataset,
    named_nodes: Sequence[tuple[str, np.ndarray]],
    algorithms: Sequence[str] | Sequence[Sequence[str]],
) -> list[dict[str, AlgorithmRun]]:
    """Run the suite over *many* subgraphs, in parallel when configured.

    The multi-subgraph counterpart of :func:`run_algorithms` — the
    shape of every evaluation table (12 DS domains, the TS topics, the
    Figure 7 BFS sweep).  With ``context.workers`` unset (or 1) this
    is exactly the historical serial loop; with more workers the
    (subgraph × algorithm) solves fan out through
    :func:`repro.parallel.rank_many_suite` over a shared-memory copy
    of the graph, and only evaluation/formatting stays in the parent.
    The parallel path produces bit-identical scores (pinned by the
    parallel test suite), so table contents do not depend on the
    worker count.

    Parameters
    ----------
    named_nodes:
        ``(label, nodes)`` pairs; labels appear in error messages.
    algorithms:
        One sequence of algorithm names applied to every subgraph, or
        one sequence per subgraph (Figure 7 adds SC only on the
        smallest crawls).

    Returns
    -------
    One ``{algorithm: AlgorithmRun}`` dict per subgraph, in input
    order.
    """
    if algorithms and isinstance(algorithms[0], str):
        per_subgraph: list[Sequence[str]] = (
            [tuple(algorithms)] * len(named_nodes)  # type: ignore[arg-type]
        )
    else:
        per_subgraph = [tuple(a) for a in algorithms]  # type: ignore[union-attr]
    workers = getattr(context, "workers", None) or 1
    if workers <= 1:
        rankers = standard_rankers(context, dataset)
        serial_results: list[dict[str, AlgorithmRun]] = []
        for (label, nodes), algos in zip(named_nodes, per_subgraph):
            runs = run_algorithms(
                context, dataset, nodes, rankers=rankers, algorithms=algos
            )
            _journal_progress(context, dataset, label, runs)
            serial_results.append(runs)
        return serial_results

    from repro.parallel import rank_many_suite

    truth = context.ground_truth(dataset)
    estimates = rank_many_suite(
        dataset.graph,
        list(named_nodes),
        algorithms=per_subgraph,
        settings=context.settings,
        workers=workers,
        sc_settings=SCSettings(expansions=context.config.sc_expansions),
    )
    results: list[dict[str, AlgorithmRun]] = []
    for (label, __), per_algo in zip(named_nodes, estimates):
        runs: dict[str, AlgorithmRun] = {}
        for name, estimate in per_algo.items():
            _record_estimate(name, estimate)
            report = evaluate_estimate(truth.scores, estimate)
            runs[name] = AlgorithmRun(
                name=name, estimate=estimate, report=report
            )
        _journal_progress(context, dataset, label, runs)
        results.append(runs)
    return results
