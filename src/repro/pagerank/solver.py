"""Generic PageRank power iteration.

Solves the fixed point of

    x  =  damping * (A^T x  +  dangling_dist * m(x))  +  (1 - damping) * teleport

where ``m(x)`` is the probability mass sitting on dangling pages.  With
``dangling_dist = teleport`` this is the standard PageRank equation of
§II-A; IdealRank/ApproxRank reuse the same solver with their extended
matrices, ``teleport = P_ideal`` and ``dangling_dist = P_ideal`` (see
``repro.core.extended`` for why that choice makes Theorem 1 exact).

Convergence is declared when the L1 distance between successive
iterates drops below the tolerance, matching the paper's criterion
(|L1| < 0.00001 in §V-A).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.exceptions import ConvergenceError, DivergenceError
from repro.obs import telemetry
from repro.pagerank.backends import SolverBackend, resolve_backend
from repro.pagerank.kernels import (
    PowerIterationWorkspace,
    projected_cold_iterations,
    run_power_loop,
)

log = logging.getLogger(__name__)


#: Damping factor ε used throughout the paper's experiments (§V-A).
DEFAULT_DAMPING = 0.85

#: Convergence tolerance on the L1 change between iterates (§V-A).
DEFAULT_TOLERANCE = 1e-5

#: Iteration cap; the paper's global runs converge in ~131 iterations,
#: so 1000 leaves a wide margin while still catching divergence bugs.
DEFAULT_MAX_ITERATIONS = 1000


@dataclass(frozen=True)
class PowerIterationSettings:
    """Solver knobs shared by every ranking algorithm.

    Attributes
    ----------
    damping:
        Probability ε of following a hyperlink (vs teleporting).
    tolerance:
        L1 convergence threshold between successive iterates.
    max_iterations:
        Hard cap on iterations.
    raise_on_divergence:
        When True, failing to converge raises
        :class:`~repro.exceptions.ConvergenceError`; when False the
        best iterate is returned with ``converged=False``.
    check_finite:
        Guard every sweep against NaN/Inf contamination of the iterate
        (one scalar ``isfinite`` on the residual); on detection raise
        :class:`~repro.exceptions.DivergenceError` immediately instead
        of iterating garbage to the cap.
    divergence_patience:
        Raise :class:`~repro.exceptions.DivergenceError` after this
        many *consecutive* sweeps whose residual failed to improve on
        the best seen (the damped update contracts in L1, so a healthy
        run improves every sweep).  ``0`` disables the guard.
    safe_restart:
        When a guard trips on a solve that started from a caller-
        supplied ``initial`` vector, retry once from the
        personalisation vector (a corrupted warm start is the common
        cause of divergence); the restart keeps every guard armed.
    """

    damping: float = DEFAULT_DAMPING
    tolerance: float = DEFAULT_TOLERANCE
    max_iterations: int = DEFAULT_MAX_ITERATIONS
    raise_on_divergence: bool = False
    check_finite: bool = True
    divergence_patience: int = 25
    safe_restart: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.damping < 1.0:
            raise ValueError(f"damping must be in (0, 1), got {self.damping}")
        if self.tolerance <= 0:
            raise ValueError(
                f"tolerance must be positive, got {self.tolerance}"
            )
        if self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if self.divergence_patience < 0:
            raise ValueError(
                f"divergence_patience must be >= 0, "
                f"got {self.divergence_patience}"
            )


@dataclass(frozen=True)
class PowerIterationOutcome:
    """Raw solver output (scores plus convergence accounting).

    ``warm_start`` records whether the solve started from a
    caller-supplied ``initial`` vector; ``iterations_saved`` is the
    number of burn-in sweeps the warm start skipped relative to the
    projected cold-start cost at the same effective tolerance (see
    :func:`repro.pagerank.kernels.projected_cold_iterations`).  Both
    are zero/False for cold solves.
    """

    scores: np.ndarray
    iterations: int
    residual: float
    converged: bool
    runtime_seconds: float
    warm_start: bool = False
    iterations_saved: int = 0


def _validate_distribution(name: str, vector: np.ndarray, size: int) -> np.ndarray:
    vector = np.asarray(vector, dtype=np.float64)
    if vector.shape != (size,):
        raise ValueError(
            f"{name} must have shape ({size},), got {vector.shape}"
        )
    # Non-finite entries must be rejected explicitly: every elementwise
    # comparison against NaN is False, so a NaN-carrying vector would
    # otherwise sail past the sign check and surface only as a
    # baffling "sums to nan" (or, with compensating Infs, not at all).
    if not np.all(np.isfinite(vector)):
        bad = int(np.flatnonzero(~np.isfinite(vector))[0])
        raise ValueError(
            f"{name} must contain only finite values; "
            f"entry {bad} is {vector[bad]!r}"
        )
    if np.any(vector < 0):
        raise ValueError(f"{name} must be non-negative")
    total = vector.sum()
    if not np.isclose(total, 1.0, rtol=0, atol=1e-8):
        raise ValueError(f"{name} must sum to 1, sums to {total!r}")
    return vector


def power_iteration(
    transition_t: sparse.csr_matrix,
    teleport: np.ndarray,
    dangling_mask: np.ndarray | None = None,
    dangling_dist: np.ndarray | None = None,
    settings: PowerIterationSettings | None = None,
    initial: np.ndarray | None = None,
    workspace: PowerIterationWorkspace | None = None,
    backend: "SolverBackend | str | None" = None,
) -> PowerIterationOutcome:
    """Run the damped power iteration to its stationary distribution.

    The iteration itself runs on the allocation-free kernels of the
    selected :class:`~repro.pagerank.backends.SolverBackend`: iterate
    and scratch buffers are preallocated once (or supplied by the
    caller) and every step is an in-place fused sweep.  The matrix is
    passed through :meth:`~repro.pagerank.backends.SolverBackend.prepare`
    (dtype cast, optional cache-aware relabeling — memoised per
    matrix), and results are always returned as float64 in original
    node order regardless of the backend's internal domain.

    Parameters
    ----------
    transition_t:
        ``A^T`` where ``A`` is the (sub-)row-stochastic transition
        matrix; dangling rows of ``A`` must be all-zero.
    teleport:
        Personalisation vector (sums to 1).
    dangling_mask:
        Boolean mask of dangling pages in ``A``; ``None`` means no
        dangling pages.
    dangling_dist:
        Where dangling mass is redistributed; defaults to ``teleport``.
    settings:
        Solver knobs; defaults to the paper's (ε=0.85, tol=1e-5).
    initial:
        Starting vector; defaults to ``teleport``.  It is normalised to
        sum to 1.
    workspace:
        Optional preallocated
        :class:`~repro.pagerank.kernels.PowerIterationWorkspace` of the
        right size; pass one when solving repeatedly on the same graph
        so the steady state allocates nothing.  Its dtype must match
        the backend's; a mismatched workspace is ignored (a private
        one is allocated) rather than clobbered with casts.
    backend:
        Kernel implementation: a
        :class:`~repro.pagerank.backends.SolverBackend` instance, a
        spec string (``"reference"``, ``"numba:float32"``, ...) or
        ``None`` for the process default (``REPRO_BACKEND``).

    Returns
    -------
    PowerIterationOutcome
        Scores summing to 1 plus convergence accounting.

    Raises
    ------
    ConvergenceError
        When ``settings.raise_on_divergence`` and the iteration cap is
        hit first.
    """
    if settings is None:
        settings = PowerIterationSettings()
    size = transition_t.shape[0]
    if transition_t.shape != (size, size):
        raise ValueError(
            f"transition_t must be square, got {transition_t.shape}"
        )
    if size == 0:
        raise ValueError("cannot rank an empty graph")
    teleport = _validate_distribution("teleport", teleport, size)
    if dangling_dist is None:
        dangling_dist = teleport
    else:
        dangling_dist = _validate_distribution(
            "dangling_dist", dangling_dist, size
        )
    if dangling_mask is None:
        dangling_indices = np.empty(0, dtype=np.int64)
    else:
        dangling_mask = np.asarray(dangling_mask, dtype=bool)
        if dangling_mask.shape != (size,):
            raise ValueError(
                f"dangling_mask must have shape ({size},), "
                f"got {dangling_mask.shape}"
            )
        dangling_indices = np.flatnonzero(dangling_mask)

    backend = resolve_backend(backend)
    prepared = backend.prepare(transition_t)

    caller_workspace = workspace is not None
    if workspace is not None and workspace.size != size:
        raise ValueError(
            f"workspace is sized for {workspace.size}, problem is {size}"
        )
    if workspace is not None and workspace.dtype != prepared.dtype:
        # Caller-owned buffers in the wrong precision for this backend:
        # solve in a private workspace rather than clobbering them.
        workspace = None
        caller_workspace = False
    if workspace is None:
        workspace = PowerIterationWorkspace(size, dtype=prepared.dtype)

    warm_start = initial is not None
    if initial is None:
        start_vector = teleport
    else:
        initial = np.asarray(initial, dtype=np.float64)
        if initial.shape != (size,):
            raise ValueError(
                f"initial must have shape ({size},), got {initial.shape}"
            )
        total = initial.sum()
        if total <= 0:
            raise ValueError("initial vector must have positive mass")
        start_vector = initial / total
    np.copyto(workspace.x, prepared.to_backend(start_vector))

    damping = settings.damping
    base = prepared.to_backend((1.0 - damping) * teleport)
    kernel_dangling_dist = prepared.to_backend(dangling_dist)
    kernel_dangling_indices = prepared.map_indices(dangling_indices)
    tolerance = backend.effective_tolerance(settings.tolerance, size)
    guarded = settings.check_finite or settings.divergence_patience > 0
    trace: list[float] | None = [] if guarded else None
    start = time.perf_counter()
    try:
        iterations, residual, converged = run_power_loop(
            prepared.matrix,
            damping=damping,
            base=base,
            dangling_indices=kernel_dangling_indices,
            dangling_dist=kernel_dangling_dist,
            tolerance=tolerance,
            max_iterations=settings.max_iterations,
            workspace=workspace,
            check_finite=settings.check_finite,
            divergence_patience=settings.divergence_patience,
            residual_trace=trace,
            backend=backend,
        )
    except DivergenceError as exc:
        telemetry.record_divergence("power", exc.iterations or 0)
        if not (settings.safe_restart and warm_start):
            raise
        # Safe restart: a guard tripped on a caller-supplied warm
        # start; rerun once from the personalisation vector with the
        # guards still armed.  A structurally bad problem (NaN in the
        # matrix, say) diverges again and the second error propagates.
        log.warning(
            "solver guard tripped (%s); restarting from the "
            "personalisation vector",
            exc,
        )
        telemetry.record_safe_restart("power")
        # The warm start was abandoned; the retry is a cold solve and
        # must not claim warm-start savings.
        warm_start = False
        np.copyto(workspace.x, prepared.to_backend(teleport))
        trace = [] if guarded else None
        try:
            iterations, residual, converged = run_power_loop(
                prepared.matrix,
                damping=damping,
                base=base,
                dangling_indices=kernel_dangling_indices,
                dangling_dist=kernel_dangling_dist,
                tolerance=tolerance,
                max_iterations=settings.max_iterations,
                workspace=workspace,
                check_finite=settings.check_finite,
                divergence_patience=settings.divergence_patience,
                residual_trace=trace,
                backend=backend,
            )
        except DivergenceError as restart_exc:
            telemetry.record_divergence("power", restart_exc.iterations or 0)
            raise
    runtime = time.perf_counter() - start
    telemetry.record_solve(
        "power",
        iterations=iterations,
        residual=residual,
        converged=converged,
        damping=damping,
        runtime_seconds=runtime,
        residual_trace=trace,
    )
    if prepared.identity:
        # A caller-owned workspace will be reused; hand back a private
        # copy of the final iterate so the next solve cannot clobber it.
        scores = workspace.x.copy() if caller_workspace else workspace.x
    else:
        # Restoration (cast to float64 / inverse permutation) already
        # produces a private array.
        scores = prepared.from_backend(workspace.x)
    if not converged and settings.raise_on_divergence:
        raise ConvergenceError(
            f"power iteration did not reach tolerance "
            f"{settings.tolerance} within {settings.max_iterations} "
            f"iterations (residual {residual:.3e})",
            iterations=iterations,
            residual=residual,
        )
    iterations_saved = 0
    if warm_start and converged:
        projected = projected_cold_iterations(
            tolerance, damping, settings.max_iterations
        )
        iterations_saved = max(0, projected - iterations)
    return PowerIterationOutcome(
        scores=scores,
        iterations=iterations,
        residual=residual,
        converged=converged,
        runtime_seconds=runtime,
        warm_start=warm_start,
        iterations_saved=iterations_saved,
    )


def uniform_teleport(size: int) -> np.ndarray:
    """The standard uniform personalisation vector ``[1/n]``."""
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    return np.full(size, 1.0 / size, dtype=np.float64)
