"""Append-only, hash-verified JSONL checkpoint journal.

``python -m repro all`` can take minutes; a crash at experiment 9 of
11 used to mean starting over.  The experiment driver now journals
each completed unit of work to a :class:`CheckpointJournal` and, on
``--resume``, replays the journal instead of recomputing — producing
byte-identical reports to an uninterrupted run.

Format: one JSON object per line::

    {"key": "experiment/table4", "payload": {...}, "sha256": "..."}

``sha256`` is the hex digest of the canonical (sorted-keys, compact)
JSON encoding of ``{"key": ..., "payload": ...}``.  On load, lines are
verified in order and reading stops at the first invalid line — a torn
tail after a crash is expected and simply means that record was never
durably completed.  Each append is flushed and fsynced, so a journal
can lose at most the record being written when the process dies.

Floats survive the round-trip exactly: ``json`` emits ``repr``-style
shortest representations, which parse back to the identical float64 —
that is what makes replayed reports byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.exceptions import CheckpointError

log = logging.getLogger(__name__)


def _canonical(key: str, payload: Any) -> str:
    return json.dumps(
        {"key": key, "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
    )


def _digest(key: str, payload: Any) -> str:
    return hashlib.sha256(
        _canonical(key, payload).encode("utf-8")
    ).hexdigest()


@dataclass(frozen=True)
class CheckpointRecord:
    """One verified journal entry."""

    key: str
    payload: Any


class CheckpointJournal:
    """Append-only journal of completed work, one JSON record per line.

    Parameters
    ----------
    path:
        Journal file; created (with parent directories) on first
        append.  A missing file reads as an empty journal.
    """

    def __init__(self, path: "str | os.PathLike"):
        self.path = Path(path)
        self._tail_repaired = False

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append(self, key: str, payload: Any) -> None:
        """Durably append one completed-work record.

        The payload must be JSON-serialisable.  The line is flushed and
        fsynced before returning, so a subsequent crash cannot lose it.

        Before the first append of this journal instance, any invalid
        tail (a torn line from a crash mid-write) is truncated away —
        reading stops at the first invalid line, so appending after a
        torn tail without repairing it would make every new record
        unreachable.
        """
        self._repair_tail()
        try:
            line = json.dumps(
                {
                    "key": key,
                    "payload": payload,
                    "sha256": _digest(key, payload),
                },
                sort_keys=True,
                separators=(",", ":"),
            )
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint payload for {key!r} is not JSON-serialisable: "
                f"{exc}"
            ) from exc
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            raise CheckpointError(
                f"cannot append to checkpoint journal {self.path}: {exc}"
            ) from exc

    def reset(self) -> None:
        """Truncate the journal (start of a fresh, non-resumed run)."""
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            raise CheckpointError(
                f"cannot reset checkpoint journal {self.path}: {exc}"
            ) from exc
        self._tail_repaired = True

    def _repair_tail(self) -> None:
        """Truncate any invalid tail so appends extend the valid prefix."""
        if self._tail_repaired:
            return
        self._tail_repaired = True
        if not self.path.exists():
            return
        __, valid_end, newline_missing = self._scan()
        size = self.path.stat().st_size
        if valid_end == size and not newline_missing:
            return
        try:
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_end)
                if newline_missing:
                    handle.seek(valid_end)
                    handle.write(b"\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            raise CheckpointError(
                f"cannot repair checkpoint journal {self.path}: {exc}"
            ) from exc
        if valid_end < size:
            log.warning(
                "checkpoint journal %s: discarded %d bytes of "
                "torn/invalid tail before appending",
                self.path,
                size - valid_end,
            )
        else:
            log.warning(
                "checkpoint journal %s: restored the lost trailing "
                "newline before appending",
                self.path,
            )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def _scan(self) -> tuple[list[CheckpointRecord], int, bool]:
        """Verify the journal and locate the end of its valid prefix.

        Returns ``(records, valid_end, newline_missing)``:
        ``valid_end`` is the byte offset just past the last verified
        line (newline included when present); ``newline_missing`` is
        True when that line's content is intact but its trailing
        newline was lost — the record still counts, but a raw append
        would concatenate onto it.
        """
        if not self.path.exists():
            return [], 0, False
        try:
            raw = self.path.read_bytes()
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint journal {self.path}: {exc}"
            ) from exc
        records: list[CheckpointRecord] = []
        valid_end = 0
        newline_missing = False
        start = 0
        line_no = 0
        while start < len(raw):
            line_no += 1
            newline_at = raw.find(b"\n", start)
            end = len(raw) if newline_at == -1 else newline_at + 1
            try:
                line = raw[start:end].decode("utf-8")
            except UnicodeDecodeError:
                line = None
            if line is not None and not line.strip():
                valid_end = end
                newline_missing = newline_at == -1
                start = end
                continue
            entry = None
            if line is not None:
                try:
                    entry = json.loads(line)
                    key = entry["key"]
                    payload = entry["payload"]
                    recorded = entry["sha256"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    entry = None
            if entry is None:
                log.warning(
                    "checkpoint journal %s: discarding invalid record at "
                    "line %d and everything after it",
                    self.path,
                    line_no,
                )
                break
            if _digest(key, payload) != recorded:
                log.warning(
                    "checkpoint journal %s: integrity hash mismatch at "
                    "line %d; discarding it and everything after it",
                    self.path,
                    line_no,
                )
                break
            records.append(CheckpointRecord(key=key, payload=payload))
            valid_end = end
            newline_missing = newline_at == -1
            start = end
        return records, valid_end, newline_missing

    def records(self) -> list[CheckpointRecord]:
        """All verified records, in journal order.

        Verification stops at the first corrupt or truncated line (the
        valid prefix is returned); a non-empty invalid tail is logged.
        A missing journal file is an empty journal.
        """
        return self._scan()[0]

    def load(self) -> dict[str, Any]:
        """Verified records as an ordered ``{key: payload}`` map.

        Later records win on duplicate keys (re-running a unit of work
        after a resume appends a fresh record rather than editing the
        journal in place).
        """
        return {record.key: record.payload for record in self.records()}

    def __iter__(self) -> Iterator[CheckpointRecord]:
        return iter(self.records())

    def __len__(self) -> int:
        return len(self.records())

    def __repr__(self) -> str:
        return f"CheckpointJournal({str(self.path)!r})"
