"""Tests for the Best-First crawl simulator."""

import numpy as np
import pytest

from repro.crawler.bestfirst import STRATEGIES, CrawlSimulator
from repro.exceptions import SubgraphError
from repro.generators.datasets import make_tiny_web
from repro.pagerank.globalrank import global_pagerank
from repro.pagerank.solver import PowerIterationSettings
from repro.subgraphs.bfs import default_bfs_seed

SETTINGS = PowerIterationSettings(tolerance=1e-7)


@pytest.fixture(scope="module")
def web():
    return make_tiny_web(num_pages=600, num_groups=4, seed=8)


@pytest.fixture(scope="module")
def truth(web):
    return global_pagerank(web.graph)


def simulate(web, truth, strategy, budget=150, batch=15):
    simulator = CrawlSimulator(
        web.graph,
        [default_bfs_seed(web.graph)],
        strategy=strategy,
        batch_size=batch,
        settings=SETTINGS,
        rng_seed=4,
        global_scores=truth.scores,
    )
    return simulator.run(budget)


class TestMechanics:
    def test_budget_respected(self, web, truth):
        result = simulate(web, truth, "bfs", budget=100)
        assert result.num_crawled == 100

    def test_crawl_order_unique_and_seeded(self, web, truth):
        result = simulate(web, truth, "indegree", budget=80)
        assert result.crawl_order[0] == default_bfs_seed(web.graph)
        assert np.unique(result.crawl_order).size == (
            result.crawl_order.size
        )

    def test_only_reachable_pages_fetched(self, web, truth):
        from repro.graph.traversal import reachable_set

        result = simulate(web, truth, "bfs", budget=200)
        reachable = set(
            reachable_set(
                web.graph, default_bfs_seed(web.graph)
            ).tolist()
        )
        assert set(result.crawl_order.tolist()) <= reachable

    def test_mass_curve_monotone(self, web, truth):
        result = simulate(web, truth, "approxrank", budget=120)
        curve = result.mass_curve
        assert len(curve) == result.steps + 1
        assert all(
            later >= earlier - 1e-12
            for earlier, later in zip(curve, curve[1:])
        )

    def test_deterministic(self, web, truth):
        a = simulate(web, truth, "approxrank", budget=90)
        b = simulate(web, truth, "approxrank", budget=90)
        assert a.crawl_order.tolist() == b.crawl_order.tolist()

    def test_frontier_exhaustion_stops_early(self, truth):
        from repro.graph.builder import graph_from_edges

        graph = graph_from_edges(10, [(0, 1), (1, 0)])
        simulator = CrawlSimulator(graph, [0], strategy="bfs")
        result = simulator.run(8)
        assert result.num_crawled == 2  # only {0, 1} reachable

    def test_validation(self, web):
        with pytest.raises(SubgraphError, match="strategy"):
            CrawlSimulator(web.graph, [0], strategy="psychic")
        with pytest.raises(SubgraphError, match="batch_size"):
            CrawlSimulator(web.graph, [0], batch_size=0)
        with pytest.raises(SubgraphError, match="seed"):
            CrawlSimulator(web.graph, [])
        with pytest.raises(SubgraphError, match="out of range"):
            CrawlSimulator(web.graph, [99999])
        simulator = CrawlSimulator(web.graph, [0, 1, 2])
        with pytest.raises(SubgraphError, match="budget"):
            simulator.run(2)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_strategy_runs(self, web, truth, strategy):
        result = simulate(web, truth, strategy, budget=60)
        assert result.strategy == strategy
        assert result.num_crawled == 60


class TestPrioritisationQuality:
    def test_bestfirst_beats_random(self, web, truth):
        """The §I claim: score-guided crawling gathers value faster."""
        best = simulate(web, truth, "approxrank", budget=150)
        random = simulate(web, truth, "random", budget=150)
        assert best.mass_curve[-1] > random.mass_curve[-1]

    def test_bestfirst_beats_bfs(self, web, truth):
        best = simulate(web, truth, "approxrank", budget=150)
        breadth = simulate(web, truth, "bfs", budget=150)
        assert best.mass_curve[-1] >= breadth.mass_curve[-1]

    def test_indegree_is_decent_heuristic(self, web, truth):
        indegree = simulate(web, truth, "indegree", budget=150)
        random = simulate(web, truth, "random", budget=150)
        assert indegree.mass_curve[-1] > random.mass_curve[-1]
