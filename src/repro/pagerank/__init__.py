"""PageRank engine: transition matrices and the power-iteration solver.

This package implements standard PageRank exactly as reviewed in §II-A
of the paper — row-stochastic transition matrix from out-degrees,
damping factor ε (default 0.85), uniform personalisation, dangling-mass
redistribution, and L1-based convergence (default tolerance 1e-5) —
plus the generic solver the IdealRank/ApproxRank extended graphs reuse.

Performance layer
-----------------
All solver variants run on allocation-free kernels (preallocated
iterate/scratch buffers, in-place sparse mat-vecs) behind the
pluggable :mod:`repro.pagerank.backends` protocol: the scipy
``_sparsetools`` reference backend is the always-available default,
an optional numba backend provides fused GIL-free compiled sweeps,
and both support a float32 score mode.  Workloads that solve many
walks over one matrix — per-keyword ObjectRank, damping sweeps,
multiple extended personalisations — go through the batched
multi-vector solver of :mod:`repro.pagerank.batched`, and transition
matrices themselves are memoized per graph by :mod:`repro.perf.cache`.
"""

from repro.pagerank.accelerated import (
    power_iteration_adaptive,
    power_iteration_extrapolated,
)
from repro.pagerank.backends import (
    BackendUnavailableError,
    SolverBackend,
    available_backends,
    backend_info,
    get_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.pagerank.batched import (
    BatchedOutcome,
    batched_power_iteration,
    stack_teleports,
)
from repro.pagerank.diagnostics import ResidualTrace, residual_trace
from repro.pagerank.globalrank import global_pagerank
from repro.pagerank.kernels import (
    PowerIterationWorkspace,
    csr_matmat_dense_into,
    csr_matvec_into,
)
from repro.pagerank.linear import solve_linear_system
from repro.pagerank.localrank import local_pagerank
from repro.pagerank.result import RankResult, SubgraphScores
from repro.pagerank.solver import PowerIterationSettings, power_iteration
from repro.pagerank.stability import (
    damping_sweep,
    edge_perturbation_study,
    perturbation_bound,
)
from repro.pagerank.transition import (
    csr_transpose,
    transition_matrix,
    transition_matrix_transpose,
)

__all__ = [
    "BackendUnavailableError",
    "BatchedOutcome",
    "PowerIterationSettings",
    "PowerIterationWorkspace",
    "ResidualTrace",
    "RankResult",
    "SolverBackend",
    "SubgraphScores",
    "available_backends",
    "backend_info",
    "batched_power_iteration",
    "csr_matmat_dense_into",
    "csr_matvec_into",
    "csr_transpose",
    "damping_sweep",
    "edge_perturbation_study",
    "get_backend",
    "global_pagerank",
    "local_pagerank",
    "perturbation_bound",
    "power_iteration",
    "power_iteration_adaptive",
    "power_iteration_extrapolated",
    "residual_trace",
    "resolve_backend",
    "set_default_backend",
    "solve_linear_system",
    "stack_teleports",
    "use_backend",
    "transition_matrix",
    "transition_matrix_transpose",
]
