"""Unit tests for graph persistence."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder, graph_from_edges
from repro.graph.io import load_npz, read_edge_list, save_npz, write_edge_list


@pytest.fixture
def sample_graph():
    return graph_from_edges(4, [(0, 1), (1, 2), (2, 0)])


class TestEdgeList:
    def test_roundtrip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        write_edge_list(sample_graph, path)
        loaded = read_edge_list(path)
        assert loaded.num_nodes == 4
        assert (loaded.adjacency != sample_graph.adjacency).nnz == 0

    def test_roundtrip_with_weights(self, tmp_path):
        builder = GraphBuilder(2)
        builder.add_edge(0, 1, 0.123456789)
        graph = builder.build()
        path = tmp_path / "weighted.tsv"
        write_edge_list(graph, path, include_weights=True)
        loaded = read_edge_list(path)
        assert loaded.edge_weight(0, 1) == pytest.approx(
            0.123456789, abs=0
        )

    def test_isolated_trailing_node_survives(self, sample_graph, tmp_path):
        # Node 3 has no edges; the header keeps the count.
        path = tmp_path / "graph.tsv"
        write_edge_list(sample_graph, path)
        assert read_edge_list(path).num_nodes == 4

    def test_num_nodes_override(self, sample_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        write_edge_list(sample_graph, path)
        loaded = read_edge_list(path, num_nodes=10)
        assert loaded.num_nodes == 10

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "manual.tsv"
        path.write_text("# a comment\n\n0\t1\n\n# another\n1\t0\n")
        loaded = read_edge_list(path)
        assert loaded.num_edges == 2

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("0\t1\n0\t1\t2\t3\n")
        with pytest.raises(GraphError, match=":2:"):
            read_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("")
        loaded = read_edge_list(path)
        assert loaded.num_nodes == 0

    def test_unweighted_write_has_two_columns(self, sample_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        write_edge_list(sample_graph, path)
        data_lines = [
            line
            for line in path.read_text().splitlines()
            if line and not line.startswith("#")
        ]
        assert all(len(line.split("\t")) == 2 for line in data_lines)

    def test_unweighted_include_weights_writes_ones(
        self, sample_graph, tmp_path
    ):
        # include_weights on an unweighted graph takes the constant-1
        # path (no float formatting); the file must still round-trip.
        path = tmp_path / "graph.tsv"
        write_edge_list(sample_graph, path, include_weights=True)
        data_lines = [
            line
            for line in path.read_text().splitlines()
            if line and not line.startswith("#")
        ]
        assert all(line.endswith("\t1") for line in data_lines)
        loaded = read_edge_list(path)
        assert (loaded.adjacency != sample_graph.adjacency).nnz == 0

    def test_mixed_width_rows_fall_back_and_parse(self, tmp_path):
        # 2- and 3-column rows in one file defeat the bulk loadtxt
        # path; the line-by-line fallback must accept them.
        path = tmp_path / "mixed.tsv"
        path.write_text("0\t1\n1\t2\t0.5\n2\t0\n")
        loaded = read_edge_list(path)
        assert loaded.num_edges == 3
        assert loaded.edge_weight(1, 2) == 0.5
        assert loaded.edge_weight(0, 1) == 1.0

    def test_last_nodes_header_wins(self, tmp_path):
        # Both parsers honour the last `# nodes:` header, wherever it
        # appears in the file.
        path = tmp_path / "hdr.tsv"
        path.write_text("# nodes: 3\n0\t1\n# nodes: 9\n1\t0\n")
        assert read_edge_list(path).num_nodes == 9
        mixed = tmp_path / "hdr_mixed.tsv"
        mixed.write_text("# nodes: 3\n0\t1\n# nodes: 9\n1\t0\t2.0\n")
        assert read_edge_list(mixed).num_nodes == 9

    def test_bulk_and_slow_paths_agree(self, tmp_path):
        # Same edges, one file bulk-parsable and one forced onto the
        # fallback: identical graphs either way.
        edges = [(i, (i * 7 + 1) % 50) for i in range(200)]
        bulk = tmp_path / "bulk.tsv"
        bulk.write_text(
            "".join(f"{s}\t{t}\n" for s, t in edges)
        )
        slow = tmp_path / "slow.tsv"
        slow.write_text(
            # One weighted row forces mixed widths -> fallback.
            "".join(f"{s}\t{t}\n" for s, t in edges[:-1])
            + f"{edges[-1][0]}\t{edges[-1][1]}\t1\n"
        )
        a = read_edge_list(bulk)
        b = read_edge_list(slow)
        assert (a.adjacency != b.adjacency).nnz == 0

    def test_non_integer_ids_rejected(self, tmp_path):
        path = tmp_path / "floats.tsv"
        path.write_text("0.5\t1\n")
        with pytest.raises(ValueError):
            read_edge_list(path)


class TestNpz:
    def test_roundtrip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_npz(sample_graph, path)
        loaded, metadata = load_npz(path)
        assert (loaded.adjacency != sample_graph.adjacency).nnz == 0
        assert metadata == {}

    def test_metadata_roundtrip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.npz"
        domains = np.array([0, 0, 1, 1])
        save_npz(sample_graph, path, metadata={"domain": domains})
        __, metadata = load_npz(path)
        assert metadata["domain"].tolist() == [0, 0, 1, 1]

    def test_metadata_key_collision_rejected(self, sample_graph, tmp_path):
        path = tmp_path / "graph.npz"
        with pytest.raises(GraphError, match="collides"):
            save_npz(
                sample_graph, path, metadata={"indptr": np.zeros(1)}
            )

    def test_weighted_roundtrip(self, tmp_path):
        builder = GraphBuilder(3)
        builder.add_edge(0, 1, 0.7)
        builder.add_edge(1, 2, 0.2)
        graph = builder.build()
        path = tmp_path / "weighted.npz"
        save_npz(graph, path)
        loaded, __ = load_npz(path)
        assert loaded.edge_weight(0, 1) == 0.7
        assert loaded.edge_weight(1, 2) == 0.2


def _base_chain(array):
    """Walk ndarray.base links to the last ndarray owning the buffer.

    For a mapped load the chain is view -> np.memmap -> mmap.mmap; we
    stop at the memmap (the last ndarray) so callers can isinstance it.
    """
    while isinstance(array.base, np.ndarray):
        array = array.base
    return array


class TestNpzMmap:
    def test_uncompressed_roundtrip(self, tmp_path):
        graph = graph_from_edges(4, [(0, 1), (1, 2), (2, 0)])
        path = tmp_path / "raw.npz"
        save_npz(graph, path, compressed=False)
        loaded, metadata = load_npz(path)
        assert (loaded.adjacency != graph.adjacency).nnz == 0
        assert metadata == {}

    def test_mmap_load_is_zero_copy(self, tmp_path):
        graph = graph_from_edges(4, [(0, 1), (1, 2), (2, 0)])
        domains = np.array([0, 1, 1, 0])
        path = tmp_path / "raw.npz"
        save_npz(graph, path, metadata={"domain": domains}, compressed=False)
        loaded, metadata = load_npz(path, mmap=True)
        assert (loaded.adjacency != graph.adjacency).nnz == 0
        # scipy wraps the arrays in views, so walk the base chain: the
        # buffer owner must be the file mapping, not a heap copy.
        assert isinstance(
            _base_chain(loaded.adjacency.data), np.memmap
        )
        assert isinstance(
            _base_chain(loaded.adjacency.indices), np.memmap
        )
        assert isinstance(metadata["domain"], np.memmap)
        assert metadata["domain"].tolist() == domains.tolist()

    def test_mmap_views_are_read_only(self, tmp_path):
        graph = graph_from_edges(3, [(0, 1), (1, 2)])
        path = tmp_path / "raw.npz"
        save_npz(graph, path, compressed=False)
        loaded, __ = load_npz(path, mmap=True)
        with pytest.raises(ValueError):
            loaded.adjacency.data[0] = 42.0

    def test_mmap_falls_back_on_compressed_archive(self, tmp_path):
        graph = graph_from_edges(4, [(0, 1), (1, 2), (2, 0)])
        path = tmp_path / "deflated.npz"
        save_npz(graph, path, compressed=True)
        loaded, __ = load_npz(path, mmap=True)  # silent copy fallback
        assert (loaded.adjacency != graph.adjacency).nnz == 0
        assert not isinstance(
            _base_chain(loaded.adjacency.data), np.memmap
        )

    def test_mmap_graph_solves_identically(self, tmp_path):
        # The acid test for has_canonical_format handling: running the
        # solver must not try to write the read-only mapped arrays,
        # and must produce bit-identical scores.
        from repro.core.approxrank import approxrank

        from tests.conftest import random_digraph

        graph = random_digraph(120, dangling_fraction=0.3, seed=5)
        path = tmp_path / "solve.npz"
        save_npz(graph, path, compressed=False)
        mapped, __ = load_npz(path, mmap=True)
        nodes = list(range(0, 30))
        original = approxrank(graph, nodes)
        via_mmap = approxrank(mapped, nodes)
        assert np.array_equal(original.scores, via_mmap.scores)
