"""Integration tests: every experiment module runs at reduced scale.

These exercise the full table/figure pipelines end-to-end on small
datasets and assert the paper's qualitative shapes, not absolute
values.
"""

import numpy as np
import pytest

from repro.experiments import (
    ablation,
    figure7,
    table2,
    table3,
    table4,
    table5,
    table6,
    theorems,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext


@pytest.fixture(scope="module")
def context():
    # One shared small context: datasets and ground truth are computed
    # once for the whole module.
    config = ExperimentConfig(
        au_pages=6000,
        politics_pages=6000,
        bfs_fractions=(0.02, 0.10),
        bfs_sc_fractions=(0.02,),
        sc_expansions=5,
    )
    return ExperimentContext(config)


class TestTable2:
    def test_reports_both_datasets(self, context):
        result = table2.run(context)
        names = result.column("dataset")
        assert any("politics-like" in str(n) for n in names)
        assert any("au-like" in str(n) for n in names)
        assert len(result.rows) == 4


class TestTable3:
    def test_three_ts_subgraphs(self, context):
        result = table3.run(context)
        assert result.column("subgraph") == [
            "conservatism", "liberalism", "socialism",
        ]

    def test_approxrank_wins_footrule(self, context):
        result = table3.run(context)
        sc = result.column("SC footrule (ours)")
        approx = result.column("AR footrule (ours)")
        assert all(a < s for a, s in zip(approx, sc))


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self, context):
        return table4.run(context)

    def test_twelve_domains(self, result):
        assert len(result.rows) == 12

    def test_approxrank_best_everywhere(self, result):
        approx = result.column("AR (ours)")
        for other in ("localPR (ours)", "SC (ours)", "LPR2 (ours)"):
            values = result.column(other)
            wins = sum(a < o for a, o in zip(approx, values))
            # ApproxRank should win on (nearly) every domain.
            assert wins >= 10, other

    def test_distance_shrinks_with_size(self, result):
        # The paper's trend: distances fall as the domain share grows.
        # At this reduced scale the trend is noisy, so compare the mean
        # over the 4 smallest vs the 4 largest domains with slack.
        local_pr = result.column("localPR (ours)")
        assert np.mean(local_pr[:4]) > 0.85 * np.mean(local_pr[-4:])


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self, context):
        return figure7.run(context)

    def test_sweep_points(self, result, context):
        assert len(result.rows) == len(context.config.bfs_fractions)

    def test_sc_only_on_configured_points(self, result, context):
        sc_column = result.column("SC")
        with_sc = [v for v in sc_column if v != "-"]
        assert len(with_sc) == len(context.config.bfs_sc_fractions)

    def test_approxrank_beats_baselines(self, result):
        approx = result.column("ApproxRank")
        for other in ("localPR", "LPR2"):
            values = result.column(other)
            assert all(a < o for a, o in zip(approx, values)), other


class TestRuntimeTables:
    def test_table5_rows_and_ratio(self, context):
        result = table5.run(context)
        assert len(result.rows) == 3
        ratios = result.column("SC/AR (ours)")
        # SC must be more expensive than (amortised) ApproxRank.
        assert all(r > 1 for r in ratios)

    def test_table6_sc_grows_with_n(self, context):
        result = table6.run(context)
        assert len(result.rows) == 12
        sc_seconds = result.column("SC (s)")
        # Runtime grows with subgraph size; compare the mean over the
        # 4 largest vs 4 smallest domains (single-run wall-clock is
        # noisy at test scale, so no per-row monotonicity).
        assert np.mean(sc_seconds[-4:]) > np.mean(sc_seconds[:4])


class TestTheorems:
    def test_theorem_rows(self, context):
        result = theorems.run(context)
        assert len(result.rows) == 3
        for error in result.column("Thm1 max |err|"):
            assert error < 1e-8
        observed = result.column("Thm2 observed L1")
        bounds = result.column("Thm2 bound")
        assert all(o <= b for o, b in zip(observed, bounds))


class TestAblation:
    def test_error_shrinks_with_knowledge(self, context):
        result = ablation.run(context)
        blends = [
            row for row in result.rows
            if str(row[0]).startswith("blend")
        ]
        observed = [row[3] for row in blends]
        assert observed[0] > observed[-1]
        # Monotone non-increasing along the sweep (small tolerance).
        for earlier, later in zip(observed, observed[1:]):
            assert later <= earlier * 1.05 + 1e-9

    def test_bound_respected_everywhere(self, context):
        result = ablation.run(context)
        for row in result.rows:
            label, __, bound, observed, __ = row
            if "naive P" in str(label):
                continue  # Theorem 2 presumes P_ideal
            assert observed <= bound + 1e-9

    def test_naive_p_clearly_worse(self, context):
        result = ablation.run(context)
        by_label = {str(row[0]): row for row in result.rows}
        naive = by_label["uniform E + naive P (ablation)"]
        approx = by_label["blend 0.00"]
        # Same E, worse teleport vector -> worse score accuracy.
        assert naive[3] > approx[3]
