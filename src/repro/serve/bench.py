"""Closed-loop serving benchmark: micro-batching on vs off.

The measurement harness behind ``benchmarks/bench_serve.py`` and the
``python -m repro bench-serve`` CLI subcommand.  The workload is the
serving-side worst case for a per-request solver: ``concurrency``
load-generator threads fire simultaneous **cold** ``/rank`` requests
(same subgraph, distinct damping factors, so nothing hits the score
store) in lock-stepped bursts against a real server socket.  The same
workload runs twice —

* **batching on**: the admission queue coalesces each burst into one
  multi-column batched solve;
* **batching off**: every request is its own solve on the same
  single solver thread (the sequential baseline).

Recorded per mode: wall-clock, throughput, and p50/p99 request
latency.  Two correctness clauses ride along and are **never** waived:

* ``agreement_max_abs_diff`` — batched scores vs the offline
  :func:`repro.core.approxrank.approxrank` fixed point per damping
  (both sides converge independently to the same tight tolerance);
* ``bit_identical_singleton`` — a lone request (batch of one) must be
  **bit-identical** to the offline path, because it routes through the
  identical ``ApproxRankPreprocessor.rank`` code.

The wall-clock speedup clause is waived (and recorded as such) on a
single-core container only in the sense that it remains *reported*;
unlike process parallelism the batched win is algorithmic — one sparse
mat-mat sweep serves every column — so it normally shows even on one
core.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import replace
from typing import Any

import numpy as np

from repro.core.approxrank import approxrank
from repro.generators.datasets import make_tiny_web
from repro.pagerank.solver import PowerIterationSettings
from repro.serve.batching import BatchPolicy
from repro.serve.client import RankingClient
from repro.serve.server import RankingService, start_background_server
from repro.serve.store import ScoreStore

__all__ = [
    "DEFAULT_OUTPUT",
    "run_serve_benchmark",
    "format_serve_summary",
]

#: Default record location (repo root when run from the checkout).
DEFAULT_OUTPUT = "BENCH_serve.json"

FULL_PAGES = 4_000
SMOKE_PAGES = 600
FULL_ROUNDS = 5
SMOKE_ROUNDS = 2

#: Concurrent load-generator threads (the ISSUE's ≥8-request burst).
DEFAULT_CONCURRENCY = 8

#: Tight solver tolerance so independent solves land within
#: AGREEMENT_ATOL of the shared fixed point.
BENCH_TOLERANCE = 1e-9
AGREEMENT_ATOL = 1e-6

#: Batched wall-clock must beat sequential by this factor (on
#: hardware where the clause applies).
TARGET_SPEEDUP = 1.1


def _burst_dampings(
    rounds: int, concurrency: int
) -> list[list[float]]:
    """Distinct damping factors per (round, worker) — all cold keys."""
    total = rounds * concurrency
    grid = np.linspace(0.60, 0.90, total, endpoint=False)
    return [
        [float(grid[r * concurrency + w]) for w in range(concurrency)]
        for r in range(rounds)
    ]


def _run_mode(
    graph,
    local_nodes: np.ndarray,
    settings: PowerIterationSettings,
    bursts: list[list[float]],
    concurrency: int,
    enabled: bool,
) -> dict[str, Any]:
    """Drive one full closed-loop run; returns timing + served scores."""
    policy = BatchPolicy(
        enabled=enabled,
        max_batch_size=concurrency,
        max_linger_seconds=0.15,
        max_pending=4 * concurrency,
    )
    service = RankingService(
        graph,
        store=ScoreStore(
            capacity=len(bursts) * concurrency + concurrency
        ),
        policy=policy,
        settings=settings,
        solver_threads=1,
    )
    latencies: list[float] = [0.0] * (len(bursts) * concurrency)
    served: dict[float, np.ndarray] = {}
    errors: list[BaseException] = []
    barrier = threading.Barrier(concurrency)
    nodes = local_nodes.tolist()

    with start_background_server(service) as handle:
        host, port = handle.address
        client = RankingClient(host, port, timeout=120.0)

        def worker(worker_index: int) -> None:
            try:
                for round_index, burst in enumerate(bursts):
                    damping = burst[worker_index]
                    barrier.wait()
                    started = time.perf_counter()
                    payload = client.rank(nodes, damping=damping)
                    latency = time.perf_counter() - started
                    slot = round_index * concurrency + worker_index
                    latencies[slot] = latency
                    served[damping] = np.asarray(
                        payload["scores"], dtype=np.float64
                    )
            except BaseException as exc:  # surfaced after the join
                errors.append(exc)

        threads = [
            threading.Thread(
                target=worker, args=(i,), name=f"loadgen-{i}"
            )
            for i in range(concurrency)
        ]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start
    if errors:
        raise errors[0]

    total = len(bursts) * concurrency
    lat = np.asarray(latencies)
    return {
        "enabled": enabled,
        "requests": total,
        "wall_seconds": wall,
        "throughput_rps": total / wall if wall > 0 else float("inf"),
        "p50_ms": float(np.percentile(lat, 50) * 1e3),
        "p99_ms": float(np.percentile(lat, 99) * 1e3),
        "_served": served,
    }


def run_serve_benchmark(
    smoke: bool = False,
    pages: int | None = None,
    seed: int = 2009,
    concurrency: int = DEFAULT_CONCURRENCY,
    rounds: int | None = None,
    output_path: str | None = DEFAULT_OUTPUT,
) -> dict[str, Any]:
    """Run the serving benchmark and (optionally) write the record.

    Parameters
    ----------
    smoke:
        Small workload + hard gate (``gate_passed`` is the CI
        criterion).
    pages / rounds / concurrency:
        Workload shape overrides.
    seed:
        Dataset generation seed.
    output_path:
        Where to write the JSON record; ``None`` skips writing.

    Returns
    -------
    The record that was (or would have been) written.
    """
    if concurrency < 2:
        raise ValueError(
            f"concurrency must be >= 2 to batch, got {concurrency}"
        )
    num_pages = pages if pages is not None else (
        SMOKE_PAGES if smoke else FULL_PAGES
    )
    num_rounds = rounds if rounds is not None else (
        SMOKE_ROUNDS if smoke else FULL_ROUNDS
    )
    dataset = make_tiny_web(num_pages=num_pages, seed=seed)
    graph = dataset.graph
    local_nodes = np.arange(max(num_pages // 5, 8), dtype=np.int64)
    settings = PowerIterationSettings(tolerance=BENCH_TOLERANCE)
    bursts = _burst_dampings(num_rounds, concurrency)

    batched = _run_mode(
        graph, local_nodes, settings, bursts, concurrency, enabled=True
    )
    sequential = _run_mode(
        graph, local_nodes, settings, bursts, concurrency, enabled=False
    )

    # Agreement clause (never waived): every batched answer must sit
    # within AGREEMENT_ATOL of the offline fixed point for its ε.
    served = batched.pop("_served")
    sequential.pop("_served")
    max_diff = 0.0
    for damping in bursts[0]:
        offline = approxrank(
            graph,
            local_nodes,
            replace(settings, damping=damping),
        )
        diff = float(
            np.max(np.abs(offline.scores - served[damping]))
        )
        max_diff = max(max_diff, diff)
    agreement_ok = max_diff <= AGREEMENT_ATOL

    # Bit-identity clause (never waived): a lone request takes the
    # exact offline code path, so the wire answer must be bit-equal.
    single_settings = replace(settings, damping=0.5)
    single_service = RankingService(
        graph, settings=settings, solver_threads=1
    )
    with start_background_server(single_service) as handle:
        client = RankingClient(*handle.address, timeout=120.0)
        wire = client.rank_scores(local_nodes.tolist(), damping=0.5)
    offline_single = approxrank(graph, local_nodes, single_settings)
    bit_identical = bool(
        np.array_equal(wire.scores, offline_single.scores)
    )

    cpu_count = os.cpu_count() or 1
    speedup = (
        sequential["wall_seconds"] / batched["wall_seconds"]
        if batched["wall_seconds"] > 0
        else float("inf")
    )
    speedup_ok = speedup >= TARGET_SPEEDUP
    speedup_gate_waived = cpu_count < 2 and not speedup_ok
    gate_passed = bool(
        agreement_ok
        and bit_identical
        and (speedup_ok or speedup_gate_waived)
    )

    record: dict[str, Any] = {
        "benchmark": "serve",
        "smoke": smoke,
        "created_unix": time.time(),
        "pages": num_pages,
        "subgraph_size": int(local_nodes.size),
        "concurrency": concurrency,
        "rounds": num_rounds,
        "total_requests": num_rounds * concurrency,
        "cpu_count": cpu_count,
        "solver_tolerance": BENCH_TOLERANCE,
        "batching_on": batched,
        "batching_off": sequential,
        "speedup": speedup,
        "target_speedup": TARGET_SPEEDUP,
        "agreement_max_abs_diff": max_diff,
        "agreement_atol": AGREEMENT_ATOL,
        "agreement_ok": agreement_ok,
        "bit_identical_singleton": bit_identical,
        "speedup_gate_waived": speedup_gate_waived,
        "gate_passed": gate_passed,
    }
    if output_path:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
    return record


def format_serve_summary(record: dict[str, Any]) -> str:
    """Human-readable summary of a benchmark record."""
    lines = [
        "serve benchmark ({} pages, subgraph {}, {}x{} requests, "
        "{} cpu)".format(
            record["pages"],
            record["subgraph_size"],
            record["rounds"],
            record["concurrency"],
            record["cpu_count"],
        ),
        "  {:<14} {:>10} {:>12} {:>10} {:>10}".format(
            "mode", "wall (s)", "rps", "p50 (ms)", "p99 (ms)"
        ),
    ]
    for label, key in (
        ("batching on", "batching_on"),
        ("batching off", "batching_off"),
    ):
        mode = record[key]
        lines.append(
            "  {:<14} {:>10.3f} {:>12.1f} {:>10.1f} {:>10.1f}".format(
                label,
                mode["wall_seconds"],
                mode["throughput_rps"],
                mode["p50_ms"],
                mode["p99_ms"],
            )
        )
    lines.append(
        "  speedup {:.2f}x (target {:.2f}x{})".format(
            record["speedup"],
            record["target_speedup"],
            ", waived: single core"
            if record["speedup_gate_waived"]
            else "",
        )
    )
    lines.append(
        "  agreement max|Δ| {:.2e} (atol {:.0e})  "
        "singleton bit-identical: {}".format(
            record["agreement_max_abs_diff"],
            record["agreement_atol"],
            record["bit_identical_singleton"],
        )
    )
    lines.append(
        "  gate: {}".format(
            "PASSED" if record["gate_passed"] else "FAILED"
        )
    )
    return "\n".join(lines)
