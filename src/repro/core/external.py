"""Relative-importance vectors E over external pages.

The difference between IdealRank and ApproxRank is entirely contained
in the vector E used to build the Λ row (Equations (4) and (7)).  This
module provides the two vectors from the paper plus the intermediate
estimates used by the Theorem 2 ablation (§IV-C notes that better
knowledge of external importance directly tightens the error bound —
the paper's stated future work).

All functions return a length-N vector that is zero on local pages and
sums to 1 over external pages, the form
:func:`repro.core.extended.build_extended_graph` consumes.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SubgraphError
from repro.graph.digraph import CSRGraph
from repro.graph.subgraph import membership_mask, normalize_node_set


def _external_mask(graph: CSRGraph, local_nodes: np.ndarray) -> np.ndarray:
    mask = ~membership_mask(graph, local_nodes)
    if not mask.any():
        raise SubgraphError("no external pages: the subgraph is the graph")
    return mask


def uniform_external_weights(
    graph: CSRGraph, local_nodes: np.ndarray
) -> np.ndarray:
    """Equation (7): ``E_approx[j] = 1/(N-n)`` — ApproxRank's assumption."""
    local = normalize_node_set(graph, local_nodes)
    external = _external_mask(graph, local)
    weights = np.zeros(graph.num_nodes, dtype=np.float64)
    weights[external] = 1.0 / external.sum()
    return weights


def weights_from_scores(
    graph: CSRGraph, local_nodes: np.ndarray, scores: np.ndarray
) -> np.ndarray:
    """Equation (4): ``E[j] = R[j] / EXTSum`` from known external scores.

    Parameters
    ----------
    scores:
        Length-N score vector (e.g. a previously computed global
        PageRank).  Only the external entries are used.

    Raises
    ------
    SubgraphError
        If external scores are negative or sum to zero (nothing to
        normalise by).
    """
    local = normalize_node_set(graph, local_nodes)
    external = _external_mask(graph, local)
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape != (graph.num_nodes,):
        raise SubgraphError(
            f"scores must have shape ({graph.num_nodes},), "
            f"got {scores.shape}"
        )
    if np.any(scores[external] < 0):
        raise SubgraphError("external scores must be non-negative")
    ext_sum = float(scores[external].sum())
    if ext_sum <= 0:
        raise SubgraphError(
            "external scores sum to zero; cannot form the E vector"
        )
    weights = np.zeros(graph.num_nodes, dtype=np.float64)
    weights[external] = scores[external] / ext_sum
    return weights


def blended_external_weights(
    graph: CSRGraph,
    local_nodes: np.ndarray,
    scores: np.ndarray,
    knowledge: float,
) -> np.ndarray:
    """Interpolate between ApproxRank's uniform E and the true E.

    ``knowledge = 0`` gives ``E_approx`` (pure ApproxRank),
    ``knowledge = 1`` gives the exact E (IdealRank).  The ablation
    benchmark sweeps this to trace the Theorem 2 bound empirically.
    """
    if not 0.0 <= knowledge <= 1.0:
        raise SubgraphError(
            f"knowledge must lie in [0, 1], got {knowledge}"
        )
    uniform = uniform_external_weights(graph, local_nodes)
    exact = weights_from_scores(graph, local_nodes, scores)
    return knowledge * exact + (1.0 - knowledge) * uniform


def indegree_external_weights(
    graph: CSRGraph, local_nodes: np.ndarray
) -> np.ndarray:
    """A zero-cost heuristic E: external importance ∝ (in-degree + 1).

    In-degree is a classic cheap proxy for PageRank; this estimate
    needs no score computation at all, yet usually lands between
    ApproxRank and IdealRank in accuracy — a practical middle point the
    ablation benchmark reports.
    """
    local = normalize_node_set(graph, local_nodes)
    external = _external_mask(graph, local)
    weights = np.zeros(graph.num_nodes, dtype=np.float64)
    raw = graph.in_degrees[external].astype(np.float64) + 1.0
    weights[external] = raw / raw.sum()
    return weights
