"""Unit tests for the benchmark-record diff engine (bench-diff)."""

from __future__ import annotations

import json

import pytest

from repro.perf.diff import (
    DEFAULT_THRESHOLD,
    diff_records,
    format_diff,
    load_record,
)


def record(**overrides):
    base = {
        "benchmark": "solver_backends",
        "created_unix": 1_700_000_000.0,
        "gate_passed": True,
        "single_solve": [
            {"backend": "reference", "dtype": "float64", "seconds": 1.0},
            {"backend": "reference", "dtype": "float32", "seconds": 0.5},
        ],
        "thread_sweep": [
            {"threads": 1, "seconds": 2.0, "speedup_vs_serial": 1.0},
        ],
        "best_thread_speedup": 1.0,
    }
    base.update(overrides)
    return base


class TestClassification:
    def test_identical_records_report_nothing(self):
        report = diff_records(record(), record())
        assert report["regressions"] == []
        assert report["improvements"] == []
        assert report["neutral"] == []
        assert not report["gate_lost"]

    def test_slower_seconds_is_a_regression(self):
        new = record()
        new["single_solve"][0]["seconds"] = 2.0
        report = diff_records(record(), new)
        assert len(report["regressions"]) == 1
        entry = report["regressions"][0]
        assert entry["metric"] == "single_solve[reference/float64].seconds"
        assert entry["change_pct"] == pytest.approx(100.0)

    def test_faster_seconds_is_an_improvement(self):
        new = record()
        new["single_solve"][0]["seconds"] = 0.5
        report = diff_records(record(), new)
        assert report["regressions"] == []
        assert len(report["improvements"]) == 1

    def test_lower_speedup_is_a_regression(self):
        new = record(best_thread_speedup=0.5)
        report = diff_records(record(), new)
        assert any(
            e["metric"] == "best_thread_speedup"
            for e in report["regressions"]
        )

    def test_counts_are_neutral(self):
        old = record(cpu_count=4)
        new = record(cpu_count=8)
        report = diff_records(old, new)
        assert report["regressions"] == []
        assert any(
            e["metric"] == "cpu_count" for e in report["neutral"]
        )

    def test_noise_below_threshold_suppressed(self):
        new = record()
        new["single_solve"][0]["seconds"] = 1.0 + DEFAULT_THRESHOLD / 2
        report = diff_records(record(), new)
        assert report["regressions"] == []
        tight = diff_records(record(), new, threshold=0.01)
        assert len(tight["regressions"]) == 1

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            diff_records(record(), record(), threshold=-0.1)


def estimation_record(**point_overrides):
    base = {
        "estimator": "montecarlo",
        "walks": 20000,
        "error_inf": 1e-3,
        "edges_touched": 5000,
        "edges_fraction": 0.04,
        "seconds": 0.5,
    }
    base.update(point_overrides)
    return {
        "benchmark": "estimation",
        "gate_passed": True,
        "sweep": [base],
    }


class TestEstimationDirections:
    """Per-benchmark overrides: error/edges regress when they grow."""

    def test_larger_error_is_a_regression(self):
        report = diff_records(
            estimation_record(), estimation_record(error_inf=2e-3)
        )
        assert any(
            e["metric"].endswith("error_inf")
            for e in report["regressions"]
        )

    def test_fewer_edges_touched_is_an_improvement(self):
        report = diff_records(
            estimation_record(),
            estimation_record(edges_touched=2500, edges_fraction=0.02),
        )
        assert report["regressions"] == []
        improved = {e["metric"] for e in report["improvements"]}
        assert any(m.endswith("edges_touched") for m in improved)
        assert any(m.endswith("edges_fraction") for m in improved)

    def test_sweep_points_keyed_by_estimator_and_parameter(self):
        report = diff_records(
            estimation_record(), estimation_record(error_inf=2e-3)
        )
        metric = report["regressions"][0]["metric"]
        assert metric.startswith("sweep[montecarlo/walks=20000]")

    def test_overrides_scoped_to_the_estimation_benchmark(self):
        # The same leaf names stay neutral in other benchmarks.
        old = record(error_inf=1e-3)
        new = record(error_inf=2e-3)
        report = diff_records(old, new)
        assert report["regressions"] == []
        assert any(
            e["metric"] == "error_inf" for e in report["neutral"]
        )


class TestStructure:
    def test_list_entries_keyed_by_label_not_position(self):
        # Reordering sweep cells must not produce phantom changes.
        new = record()
        new["single_solve"] = list(reversed(new["single_solve"]))
        report = diff_records(record(), new)
        assert report["regressions"] == []
        assert report["improvements"] == []
        assert report["neutral"] == []

    def test_one_sided_metrics_reported(self):
        new = record()
        new["thread_sweep"].append(
            {"threads": 2, "seconds": 1.1, "speedup_vs_serial": 1.8}
        )
        report = diff_records(record(), new)
        assert any(
            path.startswith("thread_sweep[threads=2]")
            for path in report["only_in_new"]
        )
        assert report["only_in_old"] == []

    def test_timestamps_ignored(self):
        new = record(created_unix=1_800_000_000.0)
        report = diff_records(record(), new)
        assert report["neutral"] == []

    def test_gate_lost_detected(self):
        report = diff_records(record(), record(gate_passed=False))
        assert report["gate_lost"]
        assert not diff_records(
            record(gate_passed=False), record()
        )["gate_lost"]

    def test_mismatched_benchmarks_flagged(self):
        other = record(benchmark="solver_kernels")
        report = diff_records(record(), other)
        assert not report["comparable"]
        assert "different benchmarks" in format_diff(report)


class TestFormatting:
    def test_report_mentions_gate_transition(self):
        text = format_diff(diff_records(record(), record(gate_passed=False)))
        assert "PASS -> FAIL" in text
        assert "REGRESSED" in text

    def test_quiet_diff_says_so(self):
        text = format_diff(diff_records(record(), record()))
        assert "no changes above the noise threshold" in text


class TestLoadRecord:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(record()), encoding="utf-8")
        assert load_record(str(path))["benchmark"] == "solver_backends"

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(ValueError, match="must be an object"):
            load_record(str(path))
