"""Unit tests for the LPR2 baseline."""

import numpy as np
import pytest

from repro.baselines.lpr2 import build_lpr2_graph, lpr2
from repro.graph.builder import graph_from_edges
from tests.conftest import random_digraph


@pytest.fixture
def boundary_graph():
    # Locals {0,1,2}: 0 links out twice, 2 receives three external
    # in-links, 1 has no boundary contact.
    return graph_from_edges(
        6,
        [
            (0, 1), (1, 2), (2, 0),
            (0, 3), (0, 4),           # 0 -> external, twice
            (3, 2), (4, 2), (5, 2),   # external -> 2, three times
            (3, 5),
        ],
    )


class TestGraphConstruction:
    def test_xi_added_with_single_edges(self, boundary_graph):
        extended, local = build_lpr2_graph(boundary_graph, [0, 1, 2])
        assert extended.num_nodes == 4
        xi = 3
        # 0 links out-of-domain -> single edge 0 -> xi, despite two
        # global boundary edges (the defect the paper highlights).
        assert extended.has_edge(0, xi)
        assert extended.edge_weight(0, xi) == 1.0
        # 2 is linked from outside -> single edge xi -> 2, despite
        # three global boundary edges.
        assert extended.has_edge(xi, 2)
        assert extended.edge_weight(xi, 2) == 1.0
        # 1 has no boundary contact: no xi edges.
        assert not extended.has_edge(1, xi)
        assert not extended.has_edge(xi, 1)
        assert local.tolist() == [0, 1, 2]

    def test_internal_edges_preserved(self, boundary_graph):
        extended, __ = build_lpr2_graph(boundary_graph, [0, 1, 2])
        assert extended.has_edge(0, 1)
        assert extended.has_edge(1, 2)
        assert extended.has_edge(2, 0)

    def test_closed_subgraph_isolated_xi(self):
        graph = graph_from_edges(4, [(0, 1), (1, 0), (2, 3)])
        extended, __ = build_lpr2_graph(graph, [0, 1])
        xi = 2
        assert extended.out_degrees[xi] == 0
        assert extended.in_degrees[xi] == 0


class TestRanking:
    def test_result_shape(self, boundary_graph, paper_settings):
        result = lpr2(boundary_graph, [0, 1, 2], paper_settings)
        assert result.local_nodes.tolist() == [0, 1, 2]
        assert result.method == "lpr2"
        assert "xi_score" in result.extras
        assert result.scores.sum() + result.extras["xi_score"] == (
            pytest.approx(1.0, abs=1e-6)
        )

    def test_cannot_distinguish_multiplicity(self, tight_settings):
        # Two graphs identical except the number of external in-links
        # to page 1 (one vs three).  LPR2 produces the same local
        # scores for both -- exactly its documented blind spot.
        base_edges = [(0, 1), (1, 0), (0, 2), (3, 4)]
        graph_one = graph_from_edges(5, base_edges + [(2, 1)])
        graph_three = graph_from_edges(
            5, base_edges + [(2, 1), (3, 1), (4, 1)]
        )
        a = lpr2(graph_one, [0, 1], tight_settings)
        b = lpr2(graph_three, [0, 1], tight_settings)
        np.testing.assert_allclose(a.scores, b.scores, atol=1e-12)

    def test_differs_from_local_pagerank(self, paper_settings):
        # On a boundary-heavy subgraph, xi's presence must change the
        # scores relative to plain local PageRank.
        from repro.baselines.localpr import local_pagerank_baseline

        graph = random_digraph(100, seed=3)
        local = np.arange(20)
        with_xi = lpr2(graph, local, paper_settings)
        without = local_pagerank_baseline(graph, local, paper_settings)
        assert not np.allclose(
            with_xi.normalized_scores(), without.normalized_scores()
        )

    def test_runtime_recorded(self, boundary_graph, paper_settings):
        result = lpr2(boundary_graph, [0, 1, 2], paper_settings)
        assert result.runtime_seconds > 0
