"""RetryPolicy arithmetic and the retryable-vs-fatal classifier."""

from __future__ import annotations

import pickle

import pytest

from repro.exceptions import (
    CheckpointError,
    ChunkTimeoutError,
    ConvergenceError,
    DivergenceError,
    InjectedFaultError,
    ParallelError,
    ReproError,
    SubgraphError,
    TransientFaultError,
)
from repro.resilience.policy import (
    AttemptRecord,
    RetryPolicy,
    classify_failure,
    classify_failure_name,
)


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3, jitter=0.0
        )
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.3)  # capped
        assert policy.backoff(10) == pytest.approx(0.3)

    def test_jitter_is_deterministic_per_seed(self):
        a = RetryPolicy(jitter=0.5, seed=7)
        b = RetryPolicy(jitter=0.5, seed=7)
        c = RetryPolicy(jitter=0.5, seed=8)
        schedule_a = [a.backoff(i) for i in range(1, 5)]
        schedule_b = [b.backoff(i) for i in range(1, 5)]
        schedule_c = [c.backoff(i) for i in range(1, 5)]
        assert schedule_a == schedule_b
        assert schedule_a != schedule_c

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(
            backoff_base=1.0, backoff_max=10.0, jitter=0.1, seed=3
        )
        for attempt in range(1, 6):
            raw = min(1.0 * 2.0 ** (attempt - 1), 10.0)
            assert abs(policy.backoff(attempt) - raw) <= 0.1 * raw + 1e-12

    def test_effective_timeout_is_tighter_of_chunk_and_total(self):
        policy = RetryPolicy(chunk_timeout=5.0, total_deadline=8.0)
        assert policy.effective_timeout(0.0) == pytest.approx(5.0)
        assert policy.effective_timeout(5.0) == pytest.approx(3.0)
        assert policy.effective_timeout(9.0) == pytest.approx(0.0)
        unbounded = RetryPolicy()
        assert unbounded.effective_timeout(100.0) is None

    def test_deadline_exceeded(self):
        policy = RetryPolicy(total_deadline=1.0)
        assert not policy.deadline_exceeded(0.5)
        assert policy.deadline_exceeded(1.5)
        assert not RetryPolicy().deadline_exceeded(1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(chunk_timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestClassifier:
    @pytest.mark.parametrize(
        "name",
        [
            "BrokenProcessPool",
            "ChunkTimeoutError",
            "FileNotFoundError",
            "OSError",
            "TimeoutError",
            "TransientFaultError",
        ],
    )
    def test_infrastructure_names_are_retryable(self, name):
        assert classify_failure_name(name).retryable

    @pytest.mark.parametrize(
        "name",
        [
            "SubgraphError",
            "ValueError",
            "DivergenceError",
            "GraphError",
            "KeyError",
        ],
    )
    def test_deterministic_names_are_fatal(self, name):
        assert not classify_failure_name(name).retryable

    def test_unknown_names_are_fatal(self):
        decision = classify_failure_name("SomeBrandNewError")
        assert not decision.retryable
        assert "unrecognised" in decision.reason

    def test_parallel_error_classifies_by_worker_error_type(self):
        retryable = ParallelError("boom", error_type="TransientFaultError")
        fatal = ParallelError("boom", error_type="SubgraphError")
        bare = ParallelError("boom")
        assert classify_failure(retryable).retryable
        assert not classify_failure(fatal).retryable
        assert not classify_failure(bare).retryable

    def test_direct_instances(self):
        assert classify_failure(
            ChunkTimeoutError("slow", timeout_seconds=1.0)
        ).retryable
        assert classify_failure(TransientFaultError("flaky")).retryable
        assert classify_failure(OSError("io")).retryable
        assert not classify_failure(ValueError("bad")).retryable
        assert not classify_failure(SubgraphError("bad nodes")).retryable
        assert not classify_failure(
            DivergenceError("diverged", iterations=3, residual=9.0)
        ).retryable


class TestExceptionTypes:
    def test_hierarchy(self):
        assert issubclass(DivergenceError, ConvergenceError)
        assert issubclass(ChunkTimeoutError, ParallelError)
        assert issubclass(TransientFaultError, InjectedFaultError)
        for exc_type in (CheckpointError, InjectedFaultError, ParallelError):
            assert issubclass(exc_type, ReproError)

    def test_divergence_error_carries_trace(self):
        exc = DivergenceError(
            "nope",
            iterations=4,
            residual=float("nan"),
            residual_trace=[1.0, 0.5, 2.0],
        )
        assert exc.residual_trace == (1.0, 0.5, 2.0)
        assert exc.iterations == 4

    def test_parallel_error_pickles_with_fields(self):
        record = AttemptRecord(
            attempt=1,
            stage="parallel",
            error_type="TransientFaultError",
            message="flaky",
            retryable=True,
            action="retry",
            elapsed_seconds=0.1,
        )
        exc = ParallelError(
            "subgraph 'a' failed",
            subgraph="a",
            algorithm="approxrank",
            attempts=(record,),
            worker_traceback="Traceback ...",
            error_type="TransientFaultError",
        )
        clone = pickle.loads(pickle.dumps(exc))
        assert str(clone) == str(exc)
        assert clone.subgraph == "a"
        assert clone.algorithm == "approxrank"
        assert clone.error_type == "TransientFaultError"
        assert clone.worker_traceback == "Traceback ..."
        assert clone.attempts == (record,)

    def test_divergence_error_pickles(self):
        exc = DivergenceError(
            "diverged", iterations=7, residual=2.5, residual_trace=(1.0,)
        )
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, DivergenceError)
        assert clone.iterations == 7
        assert clone.residual == 2.5
        assert clone.residual_trace == (1.0,)

    def test_chunk_timeout_error_pickles(self):
        exc = ChunkTimeoutError("slow chunk", timeout_seconds=0.25)
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, ChunkTimeoutError)
        assert clone.timeout_seconds == 0.25

    def test_attempt_record_describe(self):
        record = AttemptRecord(
            attempt=2,
            stage="parallel",
            error_type="ChunkTimeoutError",
            message="chunk missed its deadline",
            retryable=True,
            action="rebuild-pool",
            elapsed_seconds=1.25,
        )
        line = record.describe()
        assert "attempt 2" in line
        assert "ChunkTimeoutError" in line
        assert "retryable" in line
        assert "rebuild-pool" in line
