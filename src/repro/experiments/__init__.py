"""Experiment harness: one module per table/figure of the paper.

Each experiment module exposes ``run(config) -> TableResult``; the
:mod:`repro.experiments.run_all` driver executes every experiment and
renders the report that EXPERIMENTS.md records.  The CLI
(``python -m repro``) fronts the same functions.

Experiment index (see DESIGN.md §3 for the full mapping):

======== ==========================================================
table2   Dataset characteristics (paper Table II context)
table3   TS-subgraph accuracy, SC vs ApproxRank (paper Table III)
table4   DS-subgraph footrule, 4 algorithms (paper Table IV)
figure7  BFS-subgraph footrule sweep (paper Figure 7)
table5   TS-subgraph runtimes (paper Table V)
table6   DS-subgraph runtimes (paper Table VI)
theorems Theorem 1 exactness + Theorem 2 bound check (§III-C, §IV-C)
ablation External-estimate quality sweep (§IV-C future work)
extras   Aggregation (BlockRank-style) baseline on BFS crawls
p2p      P2P meeting-protocol convergence (§I P2P scenario)
crawl    Best-First crawl value, 5 strategies (§I focused crawler)
======== ==========================================================
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import TableResult

__all__ = ["ExperimentConfig", "TableResult"]
