"""BFS subgraphs: a breadth-first crawl to a target fraction (§V-E).

"This subgraph is constructed by a Breadth First Search (BFS) crawler
which starts from a seeded URL.  The crawler may follow hyperlinks and
fetch Web pages across multiple domains."  Because the crawl cuts
across domains, a large share of its boundary edges are the intra-
domain links the generator makes abundant — which is exactly why the
paper finds BFS subgraphs an order of magnitude harder than DS ones.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SubgraphError
from repro.graph.digraph import CSRGraph
from repro.graph.traversal import bfs_order


def default_bfs_seed(graph: CSRGraph) -> int:
    """A sensible crawler seed: the page with the most out-links.

    Crawls are seeded at portal pages, not leaves; seeding a BFS at a
    random low-degree page can dead-end after a handful of fetches.
    Deterministic (lowest id wins ties).
    """
    if graph.num_nodes == 0:
        raise SubgraphError("cannot seed a crawl on an empty graph")
    return int(np.argmax(graph.out_degrees))


def bfs_subgraph(
    graph: CSRGraph,
    seed_page: int,
    fraction: float,
) -> np.ndarray:
    """Pages fetched by a BFS crawler until ``fraction`` of the graph.

    Parameters
    ----------
    graph:
        The global graph.
    seed_page:
        The crawler's seed URL (a single page id, as in the paper).
    fraction:
        Target subgraph size as a fraction of N, e.g. 0.10 for the 10%
        point of Figure 7.  Must leave at least one external page.

    Returns
    -------
    Sorted array of crawled page ids.  May be smaller than requested
    when the seed's reachable set runs out first (a warning-worthy but
    legitimate crawl outcome; callers can check the size).
    """
    if not 0.0 < fraction < 1.0:
        raise SubgraphError(
            f"fraction must lie in (0, 1), got {fraction}"
        )
    target = max(1, int(round(fraction * graph.num_nodes)))
    target = min(target, graph.num_nodes - 1)
    crawled = bfs_order(graph, seed_page, max_nodes=target)
    return np.sort(crawled)
