"""Subgraph views and boundary-edge queries.

The ApproxRank/IdealRank construction needs three things from a
``(global graph, local node set)`` pair:

1. the induced local adjacency with a mapping between local and global
   ids (:func:`induced_subgraph`);
2. the *out-boundary* — edges from local pages to external pages
   (:func:`boundary_out_edges`), which feed the local → Λ column;
3. the *in-boundary* — edges from external pages to local pages
   (:func:`boundary_in_edges`), which feed the Λ → local row.

All three are computed with vectorised CSR slicing; nothing here is
O(N²).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np
from scipy import sparse

from repro.exceptions import SubgraphError
from repro.graph.digraph import CSRGraph


def normalize_node_set(graph: CSRGraph, nodes: Iterable[int]) -> np.ndarray:
    """Validate and canonicalise a local node set.

    Returns a sorted, duplicate-free ``int64`` array.

    Raises
    ------
    SubgraphError
        If the set is empty, contains duplicates, or contains ids
        outside ``[0, graph.num_nodes)``.
    """
    node_array = np.asarray(list(nodes), dtype=np.int64)
    if node_array.size == 0:
        raise SubgraphError("local node set must not be empty")
    node_array = np.sort(node_array)
    if np.any(node_array[1:] == node_array[:-1]):
        raise SubgraphError("local node set contains duplicate ids")
    if node_array[0] < 0 or node_array[-1] >= graph.num_nodes:
        raise SubgraphError(
            "local node ids must lie in "
            f"[0, {graph.num_nodes}), got range "
            f"[{node_array[0]}, {node_array[-1]}]"
        )
    return node_array


def membership_mask(graph: CSRGraph, nodes: np.ndarray) -> np.ndarray:
    """Boolean mask over all global nodes marking the local set."""
    mask = np.zeros(graph.num_nodes, dtype=bool)
    mask[nodes] = True
    return mask


@dataclass(frozen=True)
class InducedSubgraph:
    """An induced subgraph together with its id mappings.

    Attributes
    ----------
    graph:
        The induced local graph with ``len(local_to_global)`` nodes,
        re-labelled ``0 .. n-1``.
    local_to_global:
        ``local_to_global[i]`` is the global id of local node ``i``
        (sorted ascending).
    global_to_local:
        Array of length ``N``; maps a global id to its local id, or -1
        for external pages.
    """

    graph: CSRGraph
    local_to_global: np.ndarray
    global_to_local: np.ndarray = field(repr=False)

    @property
    def num_local(self) -> int:
        """Number of local pages n."""
        return int(self.local_to_global.size)

    def to_local(self, global_ids: np.ndarray) -> np.ndarray:
        """Map global ids to local ids (-1 for external pages)."""
        return self.global_to_local[np.asarray(global_ids, dtype=np.int64)]

    def to_global(self, local_ids: np.ndarray) -> np.ndarray:
        """Map local ids back to global ids."""
        return self.local_to_global[np.asarray(local_ids, dtype=np.int64)]


def induced_subgraph(
    graph: CSRGraph, nodes: Iterable[int]
) -> InducedSubgraph:
    """Extract the subgraph induced by ``nodes``.

    Edge weights are preserved.  The returned local graph keeps only
    edges whose both endpoints are local.
    """
    local = normalize_node_set(graph, nodes)
    sub_matrix = graph.adjacency[local][:, local]
    global_to_local = np.full(graph.num_nodes, -1, dtype=np.int64)
    global_to_local[local] = np.arange(local.size, dtype=np.int64)
    local.setflags(write=False)
    global_to_local.setflags(write=False)
    return InducedSubgraph(
        graph=CSRGraph(sub_matrix),
        local_to_global=local,
        global_to_local=global_to_local,
    )


def boundary_out_edges(
    graph: CSRGraph, nodes: Iterable[int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Edges from local pages to external pages.

    Returns
    -------
    (sources, targets, weights):
        Parallel arrays in *global* ids; ``sources`` are local pages,
        ``targets`` are external pages.
    """
    local = normalize_node_set(graph, nodes)
    mask = membership_mask(graph, local)
    rows = graph.adjacency[local]
    coo = rows.tocoo()
    external = ~mask[coo.col]
    sources = local[coo.row[external]]
    targets = coo.col[external].astype(np.int64)
    weights = coo.data[external].copy()
    return sources, targets, weights


def boundary_in_edges(
    graph: CSRGraph, nodes: Iterable[int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Edges from external pages into local pages.

    Returns
    -------
    (sources, targets, weights):
        Parallel arrays in *global* ids; ``sources`` are external pages,
        ``targets`` are local pages.
    """
    local = normalize_node_set(graph, nodes)
    mask = membership_mask(graph, local)
    cols = graph.adjacency_t[local]
    coo = cols.tocoo()
    external = ~mask[coo.col]
    targets = local[coo.row[external]]
    sources = coo.col[external].astype(np.int64)
    weights = coo.data[external].copy()
    return sources, targets, weights


def frontier(graph: CSRGraph, nodes: Iterable[int]) -> np.ndarray:
    """External pages directly linked *from* the local set.

    This is the expansion candidate set of the SC supergraph algorithm:
    pages one out-link hop outside the current graph.
    """
    __, targets, __ = boundary_out_edges(graph, nodes)
    return np.unique(targets)


def subgraph_density_report(
    graph: CSRGraph, nodes: Sequence[int] | np.ndarray
) -> dict[str, float]:
    """Summary statistics of how a subgraph couples to the outside.

    Returns a dict with node/edge counts and the fractions of the local
    pages' links that stay inside vs leave the subgraph — the quantity
    the paper uses to explain why BFS subgraphs are harder than DS ones.
    """
    local = normalize_node_set(graph, nodes)
    induced = induced_subgraph(graph, local)
    out_src, __, __ = boundary_out_edges(graph, local)
    in_src, __, __ = boundary_in_edges(graph, local)
    internal_edges = induced.graph.num_edges
    outgoing = int(out_src.size)
    incoming = int(in_src.size)
    touching = internal_edges + outgoing
    return {
        "num_local": float(local.size),
        "fraction_of_global": local.size / graph.num_nodes,
        "internal_edges": float(internal_edges),
        "outgoing_boundary_edges": float(outgoing),
        "incoming_boundary_edges": float(incoming),
        "internal_link_fraction": (
            internal_edges / touching if touching else 1.0
        ),
    }


def restrict_vector(
    values: np.ndarray, nodes: np.ndarray, normalize: bool = False
) -> np.ndarray:
    """Restrict a global score vector to a node set.

    Parameters
    ----------
    values:
        Global score vector of length N.
    nodes:
        Global ids of the local pages (as produced by
        :func:`normalize_node_set`).
    normalize:
        When True, rescale the restricted vector to sum to 1 (the
        convention used when comparing score *distributions*).
    """
    restricted = np.asarray(values, dtype=np.float64)[nodes].copy()
    if normalize:
        total = restricted.sum()
        if total > 0:
            restricted /= total
    return restricted
