"""The observability on/off switch and logging configuration.

Observability is **opt-in**: the metrics registry's counters are cheap
enough to stay always-on (a locked dict update per event, at per-solve
/ per-chunk granularity), but anything with per-sweep granularity or
non-trivial memory — span trees, residual ring buffers, worker
registry shipping — is gated on the single flag defined here.

The flag is set three ways, all equivalent:

* environment: ``REPRO_OBS=1`` before the process starts (this is how
  worker processes inherit the setting — the CLI writes the variable
  back so spawned/forked pools see it);
* code: :func:`repro.obs.enable` / :func:`repro.obs.disable`;
* CLI: ``python -m repro <experiment> --obs``.

This module owns only the raw flag so that :mod:`repro.obs.metrics`,
:mod:`repro.obs.tracing` and :mod:`repro.obs.telemetry` can consult it
without importing each other; the public ``enable()``/``disable()``
(which also swap the active tracer) live in :mod:`repro.obs`.
"""

from __future__ import annotations

import logging
import os
import sys

#: Environment variable that opts observability in for a process tree.
ENV_VAR = "REPRO_OBS"

#: Values of :data:`ENV_VAR` that mean "off".
_FALSEY = frozenset({"", "0", "false", "no", "off"})


def _env_enabled() -> bool:
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSEY


_ENABLED = _env_enabled()


def enabled() -> bool:
    """Whether full observability (tracing, telemetry buffers) is on."""
    return _ENABLED


def set_enabled(value: bool) -> None:
    """Flip the raw flag (prefer :func:`repro.obs.enable` / ``disable``).

    Writes :data:`ENV_VAR` back to the environment so worker processes
    started after the call — fork or spawn — inherit the setting.
    """
    global _ENABLED
    _ENABLED = bool(value)
    os.environ[ENV_VAR] = "1" if value else "0"


#: Format used by :func:`configure_logging`.
LOG_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


def configure_logging(level: int = logging.INFO, stream=None) -> logging.Logger:
    """Configure the ``repro`` logger hierarchy for console output.

    Attaches one :class:`~logging.StreamHandler` (idempotently — calling
    twice adjusts the level instead of duplicating handlers) to the
    ``repro`` root logger, which every module logger in the library
    (``repro.parallel.executor``, ``repro.pagerank.solver``,
    ``repro.resilience.*``, ``repro.obs.*``) propagates to.  Used by the
    CLI ``--verbose`` flag; safe to call from library users too.

    Returns the configured ``repro`` logger.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    target = stream if stream is not None else sys.stderr
    for handler in logger.handlers:
        if getattr(handler, "_repro_obs_handler", False):
            handler.setLevel(level)
            handler.setStream(target)
            return logger
    handler = logging.StreamHandler(target)
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter(LOG_FORMAT))
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    return logger
