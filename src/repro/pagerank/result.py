"""Result containers shared by all ranking algorithms.

Two shapes of result exist in this library:

* :class:`RankResult` — a score per node of whatever graph was solved
  (the global graph, an induced local graph, or an extended Λ graph).
* :class:`SubgraphScores` — the harness-facing result of *estimating
  scores for a subgraph of a global graph*: scores aligned with the
  sorted global ids of the local pages, plus solver accounting and
  algorithm-specific extras (Λ score, SC expansion statistics, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np


@dataclass(frozen=True)
class RankResult:
    """Outcome of one PageRank-style power iteration.

    Attributes
    ----------
    scores:
        Stationary probability per node; sums to 1.
    iterations:
        Power-iteration steps performed.
    residual:
        Final L1 change between successive iterates.
    converged:
        Whether ``residual`` dropped below the tolerance before the
        iteration cap.
    runtime_seconds:
        Wall-clock time spent inside the solver (matrix set-up
        excluded; algorithm wrappers report their own total times).
    method:
        Human-readable algorithm label, e.g. ``"global-pagerank"``.
    """

    scores: np.ndarray
    iterations: int
    residual: float
    converged: bool
    runtime_seconds: float
    method: str

    def __post_init__(self) -> None:
        self.scores.setflags(write=False)

    @property
    def num_nodes(self) -> int:
        """Number of nodes the solved graph had."""
        return int(self.scores.size)

    def top_k(self, k: int) -> np.ndarray:
        """Node ids of the ``k`` highest-scoring nodes, best first.

        Ties are broken by ascending node id so the output is
        deterministic.
        """
        k = min(k, self.scores.size)
        order = np.lexsort((np.arange(self.scores.size), -self.scores))
        return order[:k]


@dataclass(frozen=True)
class SubgraphScores:
    """Estimated PageRank scores for the pages of a subgraph.

    Every subgraph-ranking algorithm in the library —
    :func:`~repro.core.approxrank.approxrank`,
    :func:`~repro.core.idealrank.idealrank`,
    :func:`~repro.baselines.localpr.local_pagerank_baseline`,
    :func:`~repro.baselines.lpr2.lpr2`,
    :func:`~repro.baselines.sc.stochastic_complementation` —
    returns this type, so the metrics and the experiment harness treat
    them uniformly.

    Attributes
    ----------
    local_nodes:
        Sorted global ids of the local pages (length n).
    scores:
        Estimated scores aligned with ``local_nodes``.
    method:
        Algorithm label.
    iterations:
        Power-iteration count of the final solve.
    residual / converged / runtime_seconds:
        Solver accounting; ``runtime_seconds`` covers the whole
        algorithm (construction + solve), which is what Tables V/VI
        report.
    extras:
        Algorithm-specific values.  Conventional keys:

        ``"lambda_score"``
            Score of the external node Λ (IdealRank/ApproxRank).
        ``"xi_score"``
            Score of the artificial page ξ (LPR2).
        ``"expansion_sizes"`` / ``"k"`` / ``"supergraph_size"``
            SC expansion accounting (Tables V/VI columns).
        ``"warm_start"`` / ``"iterations_saved"``
            Present when the solve was warm-started from a previous
            score vector: the flag, and the burn-in sweeps skipped
            relative to a projected cold start (incremental
            re-ranking engine).
    """

    local_nodes: np.ndarray
    scores: np.ndarray
    method: str
    iterations: int
    residual: float
    converged: bool
    runtime_seconds: float
    extras: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.local_nodes.shape != self.scores.shape:
            raise ValueError(
                "local_nodes and scores must be parallel arrays, got "
                f"{self.local_nodes.shape} vs {self.scores.shape}"
            )
        self.local_nodes.setflags(write=False)
        self.scores.setflags(write=False)

    @property
    def num_local(self) -> int:
        """Number of local pages n."""
        return int(self.local_nodes.size)

    def normalized_scores(self) -> np.ndarray:
        """Scores rescaled to sum to 1 over the local pages.

        Different algorithms leave different total mass on the local
        pages (local PageRank sums to 1, ApproxRank to ``1 - score(Λ)``,
        a restricted global vector to the true local mass), so metric
        comparisons normalise first.
        """
        total = self.scores.sum()
        if total <= 0:
            return np.full_like(self.scores, 1.0 / max(self.scores.size, 1))
        return self.scores / total

    def score_of(self, global_id: int) -> float:
        """Score of one page identified by its global id."""
        pos = np.searchsorted(self.local_nodes, global_id)
        if pos >= self.local_nodes.size or self.local_nodes[pos] != global_id:
            raise KeyError(f"page {global_id} is not in this subgraph")
        return float(self.scores[pos])

    def ranking(self) -> np.ndarray:
        """Global page ids ordered from highest to lowest score.

        Ties are broken by ascending global id (deterministic output).
        """
        order = np.lexsort((self.local_nodes, -self.scores))
        return self.local_nodes[order]

    def top_k(self, k: int) -> np.ndarray:
        """Global ids of the ``k`` top-ranked local pages."""
        return self.ranking()[: min(k, self.num_local)]
