"""A single peer: one subgraph, one evolving knowledge table.

A peer is authoritative for the pages it hosts.  Its *knowledge table*
holds its best current estimate of the global score of every page it
has heard about (NaN when it has heard nothing).  Ranking is always
one extended-graph walk with an ``E`` built from that table — pure
IdealRank/ApproxRank machinery; the P2P layer only decides what goes
into ``E``.
"""

from __future__ import annotations

import numpy as np

from repro.core.extended import build_extended_graph
from repro.exceptions import SubgraphError
from repro.graph.digraph import CSRGraph
from repro.graph.subgraph import membership_mask, normalize_node_set
from repro.pagerank.solver import PowerIterationSettings

#: Floor weight for pages a peer knows nothing about, so unknown pages
#: never get exactly zero importance (they may still matter).
_UNKNOWN_FLOOR = 1e-12


class Peer:
    """One peer of a P2P ranking network.

    Parameters
    ----------
    peer_id:
        Index of this peer in the network.
    graph:
        The global graph.  A real peer only reads the rows of pages it
        crawled plus their boundary edges; the extended-graph builder
        touches exactly that.
    local_nodes:
        Global ids of the pages this peer hosts.
    settings:
        Solver knobs for the extended walks.
    """

    def __init__(
        self,
        peer_id: int,
        graph: CSRGraph,
        local_nodes: np.ndarray,
        settings: PowerIterationSettings | None = None,
    ):
        self.peer_id = int(peer_id)
        self._graph = graph
        self.local_nodes = normalize_node_set(graph, local_nodes)
        if self.local_nodes.size >= graph.num_nodes:
            raise SubgraphError(
                "a peer must host a proper subgraph of the web"
            )
        self._settings = settings or PowerIterationSettings()
        self._local_mask = membership_mask(graph, self.local_nodes)
        # Best-known global-score estimate per page; NaN = unknown.
        self.knowledge = np.full(graph.num_nodes, np.nan)
        # Estimated total external mass (the walk's Lambda score).
        self.external_mass_estimate = 1.0 - (
            self.local_nodes.size / graph.num_nodes
        )
        self.scores = np.zeros(self.local_nodes.size)
        self.rounds_ranked = 0
        self.rerank()

    # ------------------------------------------------------------------
    # Knowledge
    # ------------------------------------------------------------------

    @property
    def num_local(self) -> int:
        """Number of pages this peer hosts."""
        return int(self.local_nodes.size)

    def external_coverage(self) -> float:
        """Fraction of external pages with a known score estimate."""
        external = ~self._local_mask
        known = np.isfinite(self.knowledge[external])
        return float(known.mean())

    def authoritative_estimates(self) -> tuple[np.ndarray, np.ndarray]:
        """(pages, scores) this peer is authoritative for — its own."""
        return self.local_nodes, self.scores

    def learn(self, pages: np.ndarray, scores: np.ndarray,
              authoritative: bool) -> None:
        """Absorb score estimates received during a meeting.

        Parameters
        ----------
        pages / scores:
            Parallel arrays of global ids and estimated global scores.
        authoritative:
            True when the sender hosts these pages (its word always
            wins); False for gossiped third-party knowledge, which only
            fills gaps — stale gossip must not overwrite fresher
            authoritative values.
        """
        pages = np.asarray(pages, dtype=np.int64)
        scores = np.asarray(scores, dtype=np.float64)
        if pages.shape != scores.shape:
            raise SubgraphError("pages and scores must be parallel")
        foreign = ~self._local_mask[pages]
        pages, scores = pages[foreign], scores[foreign]
        if authoritative:
            self.knowledge[pages] = scores
        else:
            unknown = ~np.isfinite(self.knowledge[pages])
            self.knowledge[pages[unknown]] = scores[unknown]

    # ------------------------------------------------------------------
    # Ranking
    # ------------------------------------------------------------------

    def build_external_weights(self) -> np.ndarray:
        """Assemble E from the knowledge table.

        Known external pages are weighted by their estimated scores;
        unknown pages share the residual external mass
        (``Lambda estimate − known mass``) uniformly — which collapses
        to ``E_approx`` when nothing is known and to the exact E when
        everything is.
        """
        n = self._graph.num_nodes
        weights = np.zeros(n)
        external = ~self._local_mask
        known = external & np.isfinite(self.knowledge)
        unknown = external & ~np.isfinite(self.knowledge)
        known_values = np.clip(self.knowledge[known], 0.0, None)
        weights[known] = known_values
        num_unknown = int(unknown.sum())
        if num_unknown:
            residual = self.external_mass_estimate - known_values.sum()
            per_page = max(residual / num_unknown, _UNKNOWN_FLOOR)
            weights[unknown] = per_page
        total = weights.sum()
        if total <= 0:
            # Degenerate table (all known scores zero): fall back to
            # the uniform assumption.
            weights[external] = 1.0 / external.sum()
            return weights
        return weights / total

    def rerank(self) -> None:
        """Re-run the extended walk under the current knowledge."""
        extended = build_extended_graph(
            self._graph,
            self.local_nodes,
            self.build_external_weights(),
            mode="custom",
        )
        outcome = extended.solve(self._settings)
        self.scores = outcome.local_scores.copy()
        self.external_mass_estimate = outcome.lambda_score
        self.rounds_ranked += 1
