"""Unit tests for the one-call evaluation helper."""

import numpy as np
import pytest

from repro.exceptions import MetricError
from repro.metrics.evaluation import evaluate_estimate
from repro.pagerank.result import SubgraphScores


def make_estimate(nodes, scores, method="test", runtime=0.5):
    return SubgraphScores(
        local_nodes=np.asarray(nodes, dtype=np.int64),
        scores=np.asarray(scores, dtype=np.float64),
        method=method,
        iterations=12,
        residual=1e-7,
        converged=True,
        runtime_seconds=runtime,
    )


class TestEvaluateEstimate:
    def test_perfect_estimate_all_zero_distances(self):
        global_scores = np.array([0.1, 0.2, 0.3, 0.4])
        estimate = make_estimate([1, 3], [0.2, 0.4])
        report = evaluate_estimate(global_scores, estimate)
        assert report.l1 == pytest.approx(0.0)
        assert report.footrule == 0.0
        assert report.kendall == pytest.approx(0.0)
        assert report.top_100_overlap == 1.0

    def test_carries_accounting(self):
        global_scores = np.array([0.1, 0.2, 0.3, 0.4])
        estimate = make_estimate([0, 1], [0.5, 0.5], runtime=1.25)
        report = evaluate_estimate(global_scores, estimate)
        assert report.method == "test"
        assert report.runtime_seconds == 1.25
        assert report.iterations == 12

    def test_scale_of_estimate_irrelevant(self):
        global_scores = np.array([0.1, 0.2, 0.3, 0.4])
        a = evaluate_estimate(
            global_scores, make_estimate([0, 2], [0.2, 0.3])
        )
        b = evaluate_estimate(
            global_scores, make_estimate([0, 2], [2.0, 3.0])
        )
        assert a.l1 == pytest.approx(b.l1)
        assert a.footrule == b.footrule

    def test_reversed_estimate_penalised(self):
        global_scores = np.linspace(0.1, 1.0, 10)
        nodes = np.arange(10)
        reversed_scores = global_scores[::-1].copy()
        report = evaluate_estimate(
            global_scores, make_estimate(nodes, reversed_scores)
        )
        assert report.footrule == pytest.approx(1.0)
        assert report.kendall == pytest.approx(1.0)

    def test_rejects_nodes_beyond_global(self):
        global_scores = np.array([0.5, 0.5])
        estimate = make_estimate([0, 5], [0.5, 0.5])
        with pytest.raises(MetricError, match="beyond"):
            evaluate_estimate(global_scores, estimate)

    def test_rejects_2d_global(self):
        estimate = make_estimate([0], [1.0])
        with pytest.raises(MetricError, match="1-D"):
            evaluate_estimate(np.ones((2, 2)), estimate)

    def test_tie_atol_forwarded(self):
        global_scores = np.array([0.5000, 0.5001, 0.1])
        estimate = make_estimate([0, 1, 2], [0.5001, 0.5000, 0.1])
        strict = evaluate_estimate(global_scores, estimate)
        loose = evaluate_estimate(global_scores, estimate, tie_atol=0.01)
        assert strict.footrule > 0
        assert loose.footrule == 0.0
