"""Residual local-push engine: the invariant, the bound, the locality.

The decomposition ``p = p̂ + Σ_u r(u)·ppr(u)`` makes ``‖r‖₁`` an
*exact* L1 error certificate, so these tests can demand more than the
Monte Carlo suite: the measured error must track the reported bound to
float precision, and shrinking ``r_max`` must both tighten the answer
and keep the work proportional to the pushed frontier.
"""

import numpy as np
import pytest

from repro.core.approxrank import approxrank
from repro.estimation import PushEstimator
from repro.exceptions import EstimationError

from tests.estimation.conftest import SETTINGS

pytestmark = pytest.mark.estimation

#: Baseline truncation (~tol/(1−ε)) + float roundoff; the certificate
#: itself is exact, so the slack is only for the comparison baseline.
BASELINE_SLACK = 1e-9


@pytest.fixture(scope="module")
def exact(graph, local_nodes, prep):
    return approxrank(graph, local_nodes, SETTINGS, prep)


class TestCertificate:
    @pytest.mark.parametrize("r_max", [1e-2, 1e-3, 1e-4])
    def test_measured_l1_error_within_bound(
        self, graph, local_nodes, prep, exact, r_max
    ):
        scores = PushEstimator(r_max=r_max).estimate(
            graph, local_nodes, settings=SETTINGS, preprocessor=prep
        )
        local_gap = float(
            np.abs(scores.scores - exact.scores).sum()
        )
        lambda_gap = abs(
            scores.extras["lambda_score"]
            - exact.extras["lambda_score"]
        )
        measured = local_gap + lambda_gap
        assert (
            measured <= scores.extras["error_bound"] + BASELINE_SLACK
        )

    def test_reported_bound_at_most_r_max(
        self, graph, local_nodes, prep
    ):
        scores = PushEstimator(r_max=1e-3).estimate(
            graph, local_nodes, settings=SETTINGS, preprocessor=prep
        )
        assert scores.extras["error_bound"] <= 1e-3
        assert scores.extras["error_bound_apriori"] == pytest.approx(
            1e-3 / (1.0 - SETTINGS.damping)
        )

    def test_smaller_r_max_tightens_the_answer(
        self, graph, local_nodes, prep, exact
    ):
        errors = []
        for r_max in (1e-2, 1e-4):
            scores = PushEstimator(r_max=r_max).estimate(
                graph, local_nodes, settings=SETTINGS, preprocessor=prep
            )
            errors.append(
                float(np.abs(scores.scores - exact.scores).sum())
            )
        assert errors[1] < errors[0]


class TestLocality:
    def test_work_grows_with_precision(self, graph, local_nodes, prep):
        cheap = PushEstimator(r_max=1e-1).estimate(
            graph, local_nodes, settings=SETTINGS, preprocessor=prep
        )
        precise = PushEstimator(r_max=1e-4).estimate(
            graph, local_nodes, settings=SETTINGS, preprocessor=prep
        )
        assert (
            cheap.extras["edges_touched"]
            < precise.extras["edges_touched"]
        )
        assert cheap.extras["pushes"] < precise.extras["pushes"]

    def test_deterministic_without_a_seed(self, graph, local_nodes, prep):
        # Push has no randomness at all: two runs are bit-identical.
        first = PushEstimator(r_max=1e-3).estimate(
            graph, local_nodes, settings=SETTINGS, preprocessor=prep
        )
        second = PushEstimator(r_max=1e-3).estimate(
            graph, local_nodes, settings=SETTINGS, preprocessor=prep
        )
        assert np.array_equal(first.scores, second.scores)

    def test_estimate_underestimates_nothing_negative(
        self, graph, local_nodes, prep
    ):
        # p̂ only ever accumulates non-negative pushed mass, and sits
        # below the true fixed point coordinate-wise.
        scores = PushEstimator(r_max=1e-3).estimate(
            graph, local_nodes, settings=SETTINGS, preprocessor=prep
        )
        assert (scores.scores >= 0.0).all()


class TestValidation:
    @pytest.mark.parametrize("r_max", [0.0, -1e-3, 2.0])
    def test_r_max_range_enforced(self, r_max):
        with pytest.raises(EstimationError, match="r_max"):
            PushEstimator(r_max=r_max)
