#!/usr/bin/env python
"""Benchmark incremental re-ranking and emit ``BENCH_update.json``.

Runs a seeded edge-churn stream through the incremental re-ranking
engine twice per update — warm-started (the engine's default) and cold
(the baseline) — and records updates/sec, power-iteration totals and
the iterations-saved ratio, alongside two never-waived correctness
clauses: warm/cold agreement within solver truncation, and honest
Theorem-2 staleness accounting under the store's budget.

Usage::

    PYTHONPATH=src python benchmarks/bench_updates.py           # full
    PYTHONPATH=src python benchmarks/bench_updates.py --smoke   # CI gate

Exit code is non-zero when the smoke gate fails.  The accuracy and
staleness clauses are never waived; the iterations-saved ratio clause
is waived (and recorded) only when cold solves are too short to have
burn-in worth skipping.  See ``make bench-updates-smoke``.
"""

from __future__ import annotations

import argparse
import sys

from repro.updates.bench import (
    DEFAULT_OUTPUT,
    format_update_summary,
    run_update_benchmark,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Benchmark warm-started vs cold incremental re-ranking "
            "over a seeded edge-churn stream."
        )
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workload + hard gate (CI tier-2 mode)",
    )
    parser.add_argument(
        "--pages", type=int, default=None,
        help="override the synthetic web size (pages)",
    )
    parser.add_argument(
        "--updates", type=int, default=None,
        help="churn-stream length (default: 5 smoke / 12 full)",
    )
    parser.add_argument(
        "--seed", type=int, default=2009, help="RNG seed",
    )
    parser.add_argument(
        "--output", type=str, default=DEFAULT_OUTPUT,
        help=f"JSON record path (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    record = run_update_benchmark(
        smoke=args.smoke,
        pages=args.pages,
        updates=args.updates,
        seed=args.seed,
        output_path=args.output,
    )
    print(format_update_summary(record))
    if args.smoke and not record["gate_passed"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
