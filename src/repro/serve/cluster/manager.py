"""Booting, killing, and restarting shard replicas.

The :class:`ShardManager` owns the worker fleet: ``num_shards ×
replicas_per_shard`` replicas, each a full
:class:`~repro.serve.cluster.shard.ShardServer` over its own
:class:`~repro.serve.server.RankingService`, plus the
:class:`~repro.p2p.partition.HashRing` that assigns subgraph digests
to shards and the node partition (ownership metadata) behind the ring.

Two placements:

``thread``
    Each replica is a :class:`~repro.serve.server.BackgroundServer` —
    its own thread + event loop inside this process.  Deterministic
    and cheap: the default for tests, chaos matrices, and the 1-core
    benchmark container.  ``kill`` simulates a crash by dropping the
    replica's listener and connections on its own loop.
``process``
    Each replica is a forked worker process (the graph rides over
    fork's copy-on-write, never pickled) that reports its ephemeral
    port back through a pipe.  ``kill`` is a genuine ``SIGKILL``.

Serve-path chaos (:func:`repro.resilience.faults.arm_serve_faults`) is
armed inside the workers only — the router process/thread never arms,
so the recovery machinery under test is immune by construction.
"""

from __future__ import annotations

import asyncio
import logging
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field

from repro.exceptions import ServeError, SubgraphError
from repro.generators.datasets import WebDataset
from repro.graph.digraph import CSRGraph
from repro.obs.metrics import MetricsRegistry
from repro.p2p.partition import (
    HashRing,
    partition_by_label,
    random_partition,
)
from repro.pagerank.solver import PowerIterationSettings
from repro.resilience.faults import arm_serve_faults
from repro.serve.server import BackgroundServer, RankingService
from repro.serve.cluster.shard import ShardServer

__all__ = ["ReplicaHandle", "ShardManager"]

log = logging.getLogger(__name__)


@dataclass
class ReplicaHandle:
    """One live (or dead) replica and how to reach / control it."""

    shard: int
    replica: int
    placement: str
    address: tuple[str, int]
    background: BackgroundServer | None = None
    server: ShardServer | None = None
    process: "multiprocessing.process.BaseProcess | None" = None
    registry: MetricsRegistry | None = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return f"shard-{self.shard}/replica-{self.replica}"

    @property
    def alive(self) -> bool:
        """Best-effort liveness (the router's prober is authoritative)."""
        if self.placement == "process":
            return self.process is not None and self.process.is_alive()
        return self.server is not None and not self.server.crashed


def _shard_worker_main(
    graph: CSRGraph,
    shard: int,
    replica: int,
    settings: PowerIterationSettings | None,
    host: str,
    conn,
) -> None:
    """Entry point of a forked shard worker process."""
    arm_serve_faults()

    async def main() -> None:
        registry = MetricsRegistry()
        service = RankingService(
            graph, settings=settings, registry=registry
        )
        server = ShardServer(
            service,
            shard_id=shard,
            replica_index=replica,
            host=host,
            port=0,
            process_mode=True,
            registry=registry,
        )
        address = await server.start()
        conn.send(address)
        conn.close()
        await server.serve_forever()

    asyncio.run(main())


class ShardManager:
    """Boot and control the shard-replica fleet (see module docstring).

    Parameters
    ----------
    graph:
        The global graph every replica serves (sharding splits the
        request keyspace, not the graph — see the package docstring).
    num_shards / replicas_per_shard:
        Fleet shape.
    placement:
        ``"thread"`` (default) or ``"process"``.
    dataset:
        When given and labelled with ``"domain"``, the node partition
        backing shard ownership follows whole domains; otherwise a
        seeded random partition is used (pure metadata either way).
    settings:
        Base solver settings shared by every replica.
    vnodes / seed:
        Hash-ring smoothing and partition seed.
    """

    def __init__(
        self,
        graph: CSRGraph,
        num_shards: int = 2,
        replicas_per_shard: int = 1,
        placement: str = "thread",
        dataset: WebDataset | None = None,
        settings: PowerIterationSettings | None = None,
        host: str = "127.0.0.1",
        vnodes: int = 64,
        seed: int = 0,
    ):
        if num_shards < 1:
            raise SubgraphError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        if replicas_per_shard < 1:
            raise SubgraphError(
                f"replicas_per_shard must be >= 1, "
                f"got {replicas_per_shard}"
            )
        if placement not in ("thread", "process"):
            raise ServeError(
                f"placement must be 'thread' or 'process', "
                f"got {placement!r}"
            )
        if placement == "process" and (
            "fork" not in multiprocessing.get_all_start_methods()
        ):
            raise ServeError(
                "process placement requires the fork start method "
                "(the graph crosses via copy-on-write, not pickle)"
            )
        self.graph = graph
        self.num_shards = int(num_shards)
        self.replicas_per_shard = int(replicas_per_shard)
        self.placement = placement
        self.settings = (
            settings if settings is not None else PowerIterationSettings()
        )
        self._host = host
        self._seed = int(seed)
        self.ring = HashRing(self.num_shards, vnodes=vnodes)
        self.partitions = self._build_partitions(dataset)
        self._handles: dict[tuple[int, int], ReplicaHandle] = {}
        self._started = False

    def _build_partitions(self, dataset: WebDataset | None):
        if (
            dataset is not None
            and "domain" in getattr(dataset, "label_names", {})
        ):
            return partition_by_label(
                dataset, "domain", num_peers=self.num_shards
            )
        if self.num_shards <= self.graph.num_nodes:
            return random_partition(
                self.graph, self.num_shards, seed=self._seed
            )
        return []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ShardManager":
        """Boot every replica; idempotent."""
        if self._started:
            return self
        for shard in range(self.num_shards):
            for replica in range(self.replicas_per_shard):
                self._handles[(shard, replica)] = self._boot(
                    shard, replica
                )
        self._started = True
        return self

    def _boot(self, shard: int, replica: int) -> ReplicaHandle:
        if self.placement == "process":
            return self._boot_process(shard, replica)
        return self._boot_thread(shard, replica)

    def _boot_thread(self, shard: int, replica: int) -> ReplicaHandle:
        # Thread placement shares this process, so arming here covers
        # every replica; the site-keyed streams keep shards apart.
        arm_serve_faults()
        registry = MetricsRegistry()
        service = RankingService(
            self.graph, settings=self.settings, registry=registry
        )
        server = ShardServer(
            service,
            shard_id=shard,
            replica_index=replica,
            host=self._host,
            port=0,
            registry=registry,
        )
        background = BackgroundServer(server).start()
        handle = ReplicaHandle(
            shard=shard,
            replica=replica,
            placement="thread",
            address=background.address,
            background=background,
            server=server,
            registry=registry,
        )
        log.info("booted %s at %s:%d", handle.name, *handle.address)
        return handle

    def _boot_process(self, shard: int, replica: int) -> ReplicaHandle:
        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_shard_worker_main,
            args=(
                self.graph,
                shard,
                replica,
                self.settings,
                self._host,
                child_conn,
            ),
            name=f"repro-shard-{shard}-{replica}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(30.0):
            process.kill()
            raise ServeError(
                f"shard-{shard}/replica-{replica} worker did not "
                "report an address within 30s"
            )
        address = parent_conn.recv()
        parent_conn.close()
        handle = ReplicaHandle(
            shard=shard,
            replica=replica,
            placement="process",
            address=tuple(address),
            process=process,
        )
        log.info(
            "booted %s at %s:%d (pid %d)",
            handle.name,
            *handle.address,
            process.pid,
        )
        return handle

    # ------------------------------------------------------------------
    # Fleet access
    # ------------------------------------------------------------------

    def replicas(self, shard: int) -> list[ReplicaHandle]:
        """The handles of one shard, replica order."""
        return [
            self._handles[(shard, replica)]
            for replica in range(self.replicas_per_shard)
            if (shard, replica) in self._handles
        ]

    def all(self) -> list[ReplicaHandle]:
        """Every handle, (shard, replica) order."""
        return [
            self._handles[key] for key in sorted(self._handles)
        ]

    def handle(self, shard: int, replica: int) -> ReplicaHandle:
        return self._handles[(shard, replica)]

    def note_graph(self, graph: CSRGraph) -> None:
        """Record the cluster's current graph (used by restarts)."""
        self.graph = graph

    # ------------------------------------------------------------------
    # Failure and recovery
    # ------------------------------------------------------------------

    def kill(self, shard: int, replica: int) -> None:
        """Kill one replica abruptly (no drain, no goodbye)."""
        handle = self._handles[(shard, replica)]
        if handle.placement == "process":
            if handle.process is not None and handle.process.is_alive():
                os.kill(handle.process.pid, signal.SIGKILL)
                handle.process.join(timeout=5.0)
            return
        if handle.server is not None and handle.background is not None:
            try:
                handle.background.loop.call_soon_threadsafe(
                    handle.server.crash
                )
            except (RuntimeError, ServeError):
                pass  # loop already gone — it is dead either way
            deadline = time.monotonic() + 5.0
            while (
                not handle.server.crashed
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)

    def restart(self, shard: int, replica: int) -> ReplicaHandle:
        """Tear down one replica and boot a fresh one in its place.

        The new replica serves the manager's *current* graph — a
        replica restarted after a cluster update comes back already
        synced (the prober re-admits it on the first fingerprint
        match).
        """
        old = self._handles.pop((shard, replica), None)
        if old is not None:
            self._stop_handle(old)
        handle = self._boot(shard, replica)
        self._handles[(shard, replica)] = handle
        return handle

    def _stop_handle(self, handle: ReplicaHandle) -> None:
        if handle.placement == "process":
            if handle.process is not None and handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
                if handle.process.is_alive():
                    handle.process.kill()
                    handle.process.join(timeout=5.0)
            return
        if handle.background is not None:
            handle.background.stop(timeout=5.0)

    def stop(self) -> None:
        """Stop every replica (graceful where possible)."""
        for handle in self.all():
            self._stop_handle(handle)
        self._handles.clear()
        self._started = False
