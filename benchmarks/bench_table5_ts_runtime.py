"""Table V bench: runtimes on TS subgraphs (§V-F).

The per-algorithm benchmarks below *are* the Table V measurement:
pytest-benchmark's comparison table gives local PageRank, ApproxRank
(amortised, i.e. with a shared global preprocessor) and SC side by side
per topic subgraph.  The regeneration test prints the assembled table
with the paper's values alongside.
"""

from __future__ import annotations

import pytest

from repro.baselines.localpr import local_pagerank_baseline
from repro.baselines.sc import SCSettings, stochastic_complementation
from repro.core.approxrank import approxrank
from repro.core.precompute import ApproxRankPreprocessor
from repro.experiments import table5
from repro.subgraphs.topic import topic_subgraph

TOPICS = ("conservatism", "liberalism", "socialism")


class TestTable5Regeneration:
    def test_regenerate_table5(self, benchmark, bench_context):
        result = benchmark.pedantic(
            lambda: table5.run(bench_context), rounds=1, iterations=1
        )
        print()
        print(result.render())
        ratios = result.column("SC/AR (ours)")
        # The paper's headline: ApproxRank at least an order of
        # magnitude cheaper than SC (ratios far above 1).
        assert all(r > 5 for r in ratios)


@pytest.mark.parametrize("topic", TOPICS)
class TestPerTopicRuntime:
    def test_local_pagerank(self, benchmark, topic, bench_context, politics):
        nodes = topic_subgraph(politics, topic)
        benchmark(
            lambda: local_pagerank_baseline(
                politics.graph, nodes, bench_context.settings
            )
        )

    def test_approxrank_amortised(
        self, benchmark, topic, bench_context, politics
    ):
        nodes = topic_subgraph(politics, topic)
        prep = bench_context.preprocessor(politics)
        benchmark(
            lambda: approxrank(
                politics.graph, nodes, bench_context.settings,
                preprocessor=prep,
            )
        )

    def test_approxrank_cold(self, benchmark, topic, bench_context, politics):
        """Includes the one-off global pass (the paper's Table V
        ApproxRank column includes it too)."""
        nodes = topic_subgraph(politics, topic)
        benchmark.pedantic(
            lambda: approxrank(
                politics.graph, nodes, bench_context.settings,
                preprocessor=ApproxRankPreprocessor(politics.graph),
            ),
            rounds=3, iterations=1,
        )

    def test_sc(self, benchmark, topic, bench_context, politics):
        nodes = topic_subgraph(politics, topic)
        benchmark.pedantic(
            lambda: stochastic_complementation(
                politics.graph, nodes, bench_context.settings,
                SCSettings(expansions=bench_context.config.sc_expansions),
            ),
            rounds=1, iterations=1,
        )
