"""Ablation: how external-knowledge quality drives ApproxRank's error.

§IV-C closes by noting that the accuracy of ApproxRank "is dependent on
the knowledge of relative importance of external pages" and that
exploiting that relationship "will be our future work".  This
experiment implements the study: the E vector is swept from ApproxRank's
uniform assumption (knowledge 0) to IdealRank's exact scores
(knowledge 1), plus the zero-cost in-degree heuristic, and for each
estimate we report

* the a-priori gap ``‖E − E_estimate‖₁``,
* Theorem 2's resulting bound,
* the observed L1 error against IdealRank,
* the footrule distance against the true global ranking.

Expected shape: every column decreases monotonically (modulo noise) as
knowledge grows; the in-degree heuristic lands between uniform and
exact at no ranking cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import external_estimate_error, theorem2_bound
from repro.core.external import (
    blended_external_weights,
    indegree_external_weights,
    weights_from_scores,
)
from repro.core.idealrank import idealrank, rank_with_external_weights
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import TableResult
from repro.metrics.footrule import footrule_from_scores
from repro.subgraphs.domain import domain_subgraph

#: Blend levels swept (0 = ApproxRank's uniform E, 1 = IdealRank's E).
KNOWLEDGE_LEVELS = (0.0, 0.25, 0.5, 0.75, 1.0)

#: The domain used for the sweep (medium-sized, per Table IV).
ABLATION_DOMAIN = "csu.edu.au"


def run(context: ExperimentContext | None = None) -> TableResult:
    """Sweep external-estimate quality on one DS subgraph."""
    context = context or ExperimentContext()
    dataset = context.au
    truth = context.ground_truth(dataset).scores
    nodes = domain_subgraph(dataset, ABLATION_DOMAIN)
    settings = context.settings

    ideal = idealrank(dataset.graph, nodes, truth, settings)
    e_true = weights_from_scores(dataset.graph, nodes, truth)
    reference = truth[nodes]

    table = TableResult(
        experiment_id="ablation",
        title=(
            "Ablation -- external-estimate quality vs ApproxRank error "
            f"({ABLATION_DOMAIN}, n={nodes.size})"
        ),
        headers=[
            "E estimate", "||E-Ee||_1", "Thm2 bound",
            "observed L1 vs Ideal", "footrule vs truth",
        ],
    )

    def add_estimate(label: str, weights: np.ndarray) -> None:
        estimate = rank_with_external_weights(
            dataset.graph, nodes, weights, settings, method=label
        )
        gap = external_estimate_error(e_true, weights)
        observed = float(np.abs(estimate.scores - ideal.scores).sum())
        table.add_row(
            label,
            gap,
            theorem2_bound(gap, settings.damping),
            observed,
            footrule_from_scores(reference, estimate.scores),
        )

    for level in KNOWLEDGE_LEVELS:
        weights = blended_external_weights(
            dataset.graph, nodes, truth, knowledge=level
        )
        add_estimate(f"blend {level:.2f}", weights)
    add_estimate(
        "indegree heuristic",
        indegree_external_weights(dataset.graph, nodes),
    )

    # Design-choice ablation: replace P_ideal (1/N per local page,
    # (N-n)/N on Lambda) with the naive uniform 1/(n+1), keeping
    # ApproxRank's uniform E.  The naive vector starves Lambda of the
    # teleport mass the external world really absorbs.
    from repro.core.extended import build_extended_graph
    from repro.core.external import uniform_external_weights

    uniform_e = uniform_external_weights(dataset.graph, nodes)
    extended = build_extended_graph(
        dataset.graph, nodes, uniform_e, mode="approx"
    )
    naive_teleport = np.full(
        nodes.size + 1, 1.0 / (nodes.size + 1)
    )
    naive = extended.solve(settings, teleport_override=naive_teleport)
    gap = external_estimate_error(e_true, uniform_e)
    table.add_row(
        "uniform E + naive P (ablation)",
        gap,
        theorem2_bound(gap, settings.damping),
        float(np.abs(naive.local_scores - ideal.scores).sum()),
        footrule_from_scores(reference, naive.local_scores),
    )
    table.notes.append(
        "blend 0.00 is exactly ApproxRank; blend 1.00 is exactly "
        "IdealRank (observed L1 ~ solver tolerance)."
    )
    table.notes.append(
        "Expected shape: all error columns shrink as knowledge grows; "
        "the observed L1 always respects the Theorem 2 bound (which "
        "presumes P_ideal, so it does not govern the naive-P row)."
    )
    table.notes.append(
        "The naive-P row should be clearly worse than ApproxRank "
        "proper, quantifying the value of the paper's P_ideal design."
    )
    return table


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
