"""Authority-transfer schema graphs (ObjectRank, Figure 2).

A schema declares entity *types* and, for each ordered pair of types
that may be related, an *authority transfer rate* — the weight every
data-graph edge of that type pair receives.  The rates are the knob a
domain expert tunes ("the semantic connections are associated with an
authority transfer assignment which can be arbitrarily set by a domain
expert", §I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.exceptions import SchemaError


@dataclass(frozen=True)
class TransferEdge:
    """One directed authority-transfer declaration.

    Attributes
    ----------
    source_type / target_type:
        Entity type names.
    weight:
        Authority transfer rate (> 0).  Data edges of this type pair
        carry this weight; ranking normalises a node's outgoing
        weights into transition probabilities.
    """

    source_type: str
    target_type: str
    weight: float

    def __post_init__(self) -> None:
        if not self.source_type or not self.target_type:
            raise SchemaError("edge endpoints need non-empty type names")
        if not self.weight > 0:
            raise SchemaError(
                f"transfer weight must be positive, got {self.weight}"
            )


class AuthoritySchema:
    """A validated authority-transfer schema graph.

    Parameters
    ----------
    types:
        Entity type names (unique, non-empty).
    edges:
        Transfer declarations; both endpoints must be declared types,
        and a type pair may be declared at most once per direction.

    Examples
    --------
    >>> schema = AuthoritySchema(
    ...     types=["author", "paper"],
    ...     edges=[
    ...         TransferEdge("author", "paper", 0.2),
    ...         TransferEdge("paper", "author", 0.2),
    ...     ],
    ... )
    >>> schema.transfer_weight("author", "paper")
    0.2
    """

    def __init__(
        self, types: Iterable[str], edges: Iterable[TransferEdge]
    ):
        type_list = list(types)
        if not type_list:
            raise SchemaError("a schema needs at least one entity type")
        if len(set(type_list)) != len(type_list):
            raise SchemaError("entity type names must be unique")
        if any(not name for name in type_list):
            raise SchemaError("entity type names must be non-empty")
        self._types: tuple[str, ...] = tuple(type_list)
        self._type_index: Mapping[str, int] = {
            name: index for index, name in enumerate(self._types)
        }
        weights: dict[tuple[str, str], float] = {}
        for edge in edges:
            for endpoint in (edge.source_type, edge.target_type):
                if endpoint not in self._type_index:
                    raise SchemaError(
                        f"edge references undeclared type {endpoint!r}"
                    )
            key = (edge.source_type, edge.target_type)
            if key in weights:
                raise SchemaError(
                    f"duplicate transfer declaration for {key}"
                )
            weights[key] = edge.weight
        self._weights = weights

    @property
    def types(self) -> tuple[str, ...]:
        """Declared entity type names, in declaration order."""
        return self._types

    def type_index(self, name: str) -> int:
        """Stable integer index of a type name."""
        try:
            return self._type_index[name]
        except KeyError:
            raise SchemaError(
                f"{name!r} is not a declared entity type; "
                f"declared: {list(self._types)}"
            ) from None

    def transfer_weight(
        self, source_type: str, target_type: str
    ) -> float | None:
        """Transfer rate for a type pair, or None when undeclared.

        An undeclared pair means relations of that shape confer no
        authority (the data-graph builder rejects them, keeping schema
        violations loud).
        """
        self.type_index(source_type)
        self.type_index(target_type)
        return self._weights.get((source_type, target_type))

    def declared_pairs(self) -> tuple[tuple[str, str], ...]:
        """All declared (source_type, target_type) pairs."""
        return tuple(self._weights)
