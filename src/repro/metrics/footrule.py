"""Spearman's footrule distance for partial rankings with ties (§V-B).

With bucket positions σ₁, σ₂ (see :mod:`repro.metrics.buckets`), the
paper defines

    F(σ₁, σ₂) = Σ_i |σ₁(i) − σ₂(i)|  /  ⌊|σ₁|² / 2⌋

The denominator ⌊n²/2⌋ is the maximum possible footrule displacement
(attained by reversing a full ranking of n items), so F lies in
``[0, 1]`` and rankings that agree get 0 — the headline accuracy metric
of Tables III/IV and Figure 7.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MetricError
from repro.metrics.buckets import bucket_positions


def footrule_distance(
    positions_a: np.ndarray, positions_b: np.ndarray
) -> float:
    """Normalised footrule distance between two position vectors.

    Parameters
    ----------
    positions_a, positions_b:
        Bucket positions (as produced by
        :func:`~repro.metrics.buckets.bucket_positions`) aligned
        item-by-item.

    Returns
    -------
    float in ``[0, 1]``; 0 for identical partial rankings.
    """
    positions_a = np.asarray(positions_a, dtype=np.float64)
    positions_b = np.asarray(positions_b, dtype=np.float64)
    if positions_a.shape != positions_b.shape or positions_a.ndim != 1:
        raise MetricError(
            "position vectors must be 1-D and aligned, got shapes "
            f"{positions_a.shape} and {positions_b.shape}"
        )
    if positions_a.size == 0:
        raise MetricError("position vectors must not be empty")
    denominator = (positions_a.size ** 2) // 2
    if denominator == 0:
        # A single item: the two rankings are trivially identical.
        return 0.0
    total = float(np.abs(positions_a - positions_b).sum())
    return total / denominator


def footrule_from_scores(
    reference: np.ndarray,
    estimate: np.ndarray,
    tie_atol: float = 0.0,
) -> float:
    """Footrule distance between the rankings induced by two score vectors.

    Convenience wrapper: converts both score vectors to bucket
    positions (higher score = better rank, exact-equality ties by
    default) and applies :func:`footrule_distance`.

    Parameters
    ----------
    reference:
        Ground-truth scores (``R₁`` — global PageRank restricted to the
        subgraph).
    estimate:
        Estimated scores (``R₂``).
    tie_atol:
        Tie tolerance forwarded to the bucketing.
    """
    reference = np.asarray(reference, dtype=np.float64)
    estimate = np.asarray(estimate, dtype=np.float64)
    if reference.shape != estimate.shape:
        raise MetricError(
            "score vectors must be aligned, got shapes "
            f"{reference.shape} and {estimate.shape}"
        )
    return footrule_distance(
        bucket_positions(reference, tie_atol),
        bucket_positions(estimate, tie_atol),
    )
