"""Performance infrastructure: caches and benchmark harnesses.

This package holds the machinery that keeps repeated ranking work from
redoing structural computation:

* :mod:`repro.perf.cache` — a graph-identity-keyed cache of transition
  matrices, their transposes and per-subgraph local-block bundles, so
  repeated solves on the same (sub)graph never rebuild CSR structures.
* :mod:`repro.perf.bench` — the solver-kernel benchmark behind
  ``benchmarks/bench_solver_kernels.py`` and the
  ``python -m repro bench-kernels`` CLI subcommand.
"""

from repro.perf.cache import (
    GLOBAL_TRANSITION_CACHE,
    CacheStats,
    LocalBlockBundle,
    TransitionCache,
    cached_local_block,
    cached_transition_matrix,
    cached_transition_matrix_transpose,
)

__all__ = [
    "CacheStats",
    "GLOBAL_TRANSITION_CACHE",
    "LocalBlockBundle",
    "TransitionCache",
    "cached_local_block",
    "cached_transition_matrix",
    "cached_transition_matrix_transpose",
]
