"""Unit tests for graph statistics."""

import math

import pytest

from repro.graph.builder import graph_from_edges
from repro.graph.stats import (
    compute_stats,
    degree_histogram,
    powerlaw_tail_exponent,
)
from repro.generators.simple import star_graph
from repro.generators.weblike import generate_web_graph
from repro.generators.config import WebGraphConfig


@pytest.fixture
def sample_graph():
    return graph_from_edges(
        5, [(0, 1), (0, 2), (1, 2), (2, 2), (3, 0)]
    )  # node 4 dangling; node 2 has a self-loop


class TestComputeStats:
    def test_counts(self, sample_graph):
        stats = compute_stats(sample_graph)
        assert stats.num_nodes == 5
        assert stats.num_edges == 5

    def test_avg_out_degree(self, sample_graph):
        stats = compute_stats(sample_graph)
        assert stats.avg_out_degree == pytest.approx(1.0)

    def test_max_degrees(self, sample_graph):
        stats = compute_stats(sample_graph)
        assert stats.max_out_degree == 2
        assert stats.max_in_degree == 3  # node 2: from 0, 1 and itself

    def test_dangling_fraction(self, sample_graph):
        assert compute_stats(sample_graph).dangling_fraction == (
            pytest.approx(0.2)
        )

    def test_self_loops_counted(self, sample_graph):
        assert compute_stats(sample_graph).self_loop_count == 1

    def test_as_table_row(self, sample_graph):
        pages, links, avg = compute_stats(sample_graph).as_table_row()
        assert pages == pytest.approx(5e-6)
        assert links == pytest.approx(5e-6)
        assert avg == pytest.approx(1.0)


class TestDegreeHistogram:
    def test_out_histogram(self, sample_graph):
        values, counts = degree_histogram(sample_graph, "out")
        assert values.tolist() == [0, 1, 2]
        assert counts.tolist() == [1, 3, 1]

    def test_in_histogram_sums_to_nodes(self, sample_graph):
        __, counts = degree_histogram(sample_graph, "in")
        assert counts.sum() == 5

    def test_invalid_direction(self, sample_graph):
        with pytest.raises(ValueError, match="direction"):
            degree_histogram(sample_graph, "sideways")


class TestPowerlawExponent:
    def test_too_small_returns_nan(self, sample_graph):
        assert math.isnan(powerlaw_tail_exponent(sample_graph))

    def test_star_graph_is_not_powerlaw_but_finite(self):
        graph = star_graph(100)
        # all leaves have in-degree 1, hub 100: tail has 1 node -> nan
        assert math.isnan(powerlaw_tail_exponent(graph, min_degree=50))

    def test_generated_graph_in_plausible_band(self):
        config = WebGraphConfig(
            num_pages=20_000, group_shares=(1.0,), seed=1
        )
        graph, __ = generate_web_graph(config)
        exponent = powerlaw_tail_exponent(graph, "in", min_degree=5)
        # Real web in-degree exponents sit near 2.1; accept a broad
        # power-law band, rejecting Poisson-like (which gives >> 4).
        assert 1.5 < exponent < 4.0

    def test_invalid_direction(self, sample_graph):
        with pytest.raises(ValueError, match="direction"):
            powerlaw_tail_exponent(sample_graph, "both")
