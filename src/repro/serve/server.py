"""The online ranking service and its asyncio HTTP front end.

Figure 1 of the paper frames ApproxRank as the ranking engine behind a
*localized search engine*; this module is that box made concrete. Two
layers:

* :class:`RankingService` — the transport-free engine.  It owns the
  global graph, an amortised
  :class:`~repro.core.precompute.ApproxRankPreprocessor` (one global
  pass shared by every query), a :class:`~repro.serve.store.ScoreStore`
  of warm results, and a :class:`~repro.serve.batching.RankBatcher`
  that coalesces cold bursts.  A ``rank`` call resolves as: store hit →
  answer immediately; miss → micro-batch → solve → store → answer.  A
  batch of **one** routes through the exact offline
  ``ApproxRankPreprocessor.rank`` path, so a lone served request is
  bit-identical to :func:`repro.core.approxrank.approxrank`; only
  same-subgraph bursts with distinct dampings take the batched
  multi-column kernel.
* :class:`RankingServer` — a dependency-free asyncio HTTP/1.1 server
  exposing ``POST /rank``, ``POST /search``, ``POST
  /semantic-search`` (query→select→rank→dedup, see
  :mod:`repro.semantic`), ``GET /healthz`` and ``GET /metrics``
  (Prometheus text), with keep-alive connections and
  a graceful shutdown that stops accepting, drains in-flight requests
  and flushes the batcher.

Scores cross the wire as JSON floats.  Python's ``json`` emits
``repr`` shortest-round-trip literals and parses them back to the
identical IEEE-754 double, so bit-identity survives HTTP.

:func:`start_background_server` runs a server on a dedicated thread
with its own event loop — the harness tests and the closed-loop
benchmark drive the real socket path through it.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
import urllib.parse
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Iterable

import numpy as np

from repro.core.precompute import ApproxRankPreprocessor
from repro.core.extended import solve_to_subgraph_scores
from repro.estimation import resolve_estimator
from repro.exceptions import (
    DatasetError,
    DeadlineExceededError,
    EstimationError,
    GraphError,
    ReproError,
    ServeError,
    ServiceOverloadedError,
    SubgraphError,
)
from repro.graph.digraph import CSRGraph
from repro.graph.subgraph import normalize_node_set
from repro.obs.export import to_prometheus_text
from repro.obs.metrics import (
    REGISTRY,
    SECONDS_BUCKETS,
    MetricsRegistry,
)
from repro.pagerank.result import SubgraphScores
from repro.pagerank.solver import PowerIterationSettings
from repro.search.engine import SearchHit, SubgraphSearchEngine
from repro.search.lexicon import SyntheticLexicon
from repro.semantic.metrics import record_semantic_metrics
from repro.semantic.pipeline import (
    SemanticAnswer,
    SemanticPipeline,
    SemanticSelection,
)
from repro.serve.batching import BatchPolicy, RankBatcher
from repro.serve.store import ScoreStore, graph_fingerprint, subgraph_digest
from repro.updates.delta import GraphDelta, apply_delta

__all__ = [
    "RankingService",
    "RankingServer",
    "RankOutcome",
    "BackgroundServer",
    "start_background_server",
]


@dataclass(frozen=True)
class RankOutcome:
    """A served ranking plus its cache and staleness accounting.

    ``stale`` is True when the scores predate a graph update and are
    served under the Theorem-2 bound; ``staleness`` is the entry's
    cumulative charge (0.0 for fresh results).  A non-stale outcome is
    bit-identical to the offline solve on the current graph.
    """

    scores: SubgraphScores
    cache_hit: bool
    stale: bool = False
    staleness: float = 0.0

log = logging.getLogger(__name__)

#: Largest request body accepted (a node list for a million-page
#: subgraph fits comfortably; anything bigger is abuse).
_MAX_BODY_BYTES = 64 * 1024 * 1024

#: Deadline-propagation header: seconds of budget remaining at send
#: time.  A hop that cannot finish inside it drops the work (503)
#: instead of burning solver time on an answer nobody is waiting for.
DEADLINE_HEADER = "X-Repro-Deadline"

#: Internal pseudo-header carrying the raw request query string from
#: the connection handler into ``_route`` — the cluster subclasses
#: override ``_route`` with a fixed signature, so the query rides in
#: the headers dict rather than a new parameter.
_QUERY_PSEUDO_HEADER = "x-repro-query"

_JSON = {"Content-Type": "application/json"}
_TEXT = {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"}


@dataclass(frozen=True)
class _GraphState:
    """The swappable per-graph trio the service serves from."""

    graph: CSRGraph
    preprocessor: ApproxRankPreprocessor
    fingerprint: str


class RankingService:
    """Transport-free online ranking engine (see module docstring).

    Parameters
    ----------
    graph:
        The global graph to serve subgraph rankings of.
    store:
        Warm score store; a default LRU store is created when omitted.
    policy:
        Micro-batching knobs; defaults to :class:`BatchPolicy`.
    settings:
        Base solver settings; a request's ``damping`` overrides the
        damping field per call.
    lexicon:
        Term assignment for ``/search``.  Built lazily (synthetic,
        seeded) when omitted, and rebuilt after a graph update adds
        pages.
    solver_threads:
        Size of the dedicated solve executor.  One thread is the
        honest default: the solver is CPU-bound, so the batcher's
        coalescing — not thread oversubscription — is the concurrency
        mechanism.
    registry:
        Metrics registry (the process-wide one by default).
    default_estimator:
        Estimator spec applied to requests that do not name one
        (``None`` = exact).  A per-request ``estimator`` always
        overrides it; ``"exact"`` requests take the bit-identical
        batched path regardless of this default.
    semantic_pipeline:
        Pre-built :class:`~repro.semantic.pipeline.SemanticPipeline`
        for ``/semantic-search`` (its graph must be the served
        graph).  Built lazily with default knobs when omitted, and
        rebuilt — reusing the embeddings where the lexicon survives —
        after a graph update.
    """

    def __init__(
        self,
        graph: CSRGraph,
        store: ScoreStore | None = None,
        policy: BatchPolicy | None = None,
        settings: PowerIterationSettings | None = None,
        lexicon: SyntheticLexicon | None = None,
        solver_threads: int = 1,
        registry: MetricsRegistry | None = None,
        default_estimator: str | None = None,
        semantic_pipeline: SemanticPipeline | None = None,
    ):
        self._registry = registry if registry is not None else REGISTRY
        self._settings = (
            settings if settings is not None else PowerIterationSettings()
        )
        self.store = (
            store
            if store is not None
            else ScoreStore(registry=self._registry)
        )
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, int(solver_threads)),
            thread_name_prefix="repro-serve-solve",
        )
        self.batcher = RankBatcher(
            self._solve_group,
            policy=policy,
            executor=self._executor,
            registry=self._registry,
        )
        self._state = _GraphState(
            graph=graph,
            preprocessor=ApproxRankPreprocessor(graph),
            fingerprint=graph_fingerprint(graph),
        )
        self._default_estimator = default_estimator
        if default_estimator is not None:
            # Fail at construction, not first request.
            resolve_estimator(default_estimator)
        self._lexicon = lexicon
        self._lexicon_lock = threading.Lock()
        self._semantic = semantic_pipeline
        if semantic_pipeline is not None:
            if semantic_pipeline.graph is not graph:
                raise DatasetError(
                    "semantic_pipeline was built for a different "
                    "graph"
                )
            if self._lexicon is None:
                # /search and /semantic-search must agree on term
                # assignments.
                self._lexicon = semantic_pipeline.lexicon
        self._semantic_lock = threading.Lock()
        # Selection cache: (fingerprint, query digest) → selected
        # neighborhood.  The query digest is the semantic analogue of
        # the subgraph digest — same digest, same G_l — so repeated
        # queries skip the embed/select stage entirely (the rank
        # stage below it caches in the ScoreStore as usual).
        self._semantic_selections: dict[
            tuple[str, str], SemanticSelection
        ] = {}
        self._update_lock = asyncio.Lock()
        self._refresh_tasks: set[asyncio.Task] = set()
        self._updates_applied = 0
        self._staleness_spent = 0.0
        self._iterations_saved = 0
        self._entries_refreshed = 0

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------

    @property
    def graph(self) -> CSRGraph:
        """The global graph currently served."""
        return self._state.graph

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the graph currently served."""
        return self._state.fingerprint

    @property
    def settings(self) -> PowerIterationSettings:
        """Base solver settings."""
        return self._settings

    def _require_lexicon(self) -> SyntheticLexicon:
        with self._lexicon_lock:
            if self._lexicon is None:
                self._lexicon = SyntheticLexicon(self._state.graph)
            return self._lexicon

    def _require_semantic(self) -> SemanticPipeline:
        """The semantic pipeline for the *current* graph state.

        Rebuilt after a graph swap; the embedding matrix is reused
        when the lexicon survived the update (edge-only deltas keep
        term assignments, so the vectors are still valid).
        """
        state = self._state
        lexicon = self._require_lexicon()
        with self._semantic_lock:
            pipeline = self._semantic
            if (
                pipeline is not None
                and pipeline.graph is state.graph
                and pipeline.lexicon is lexicon
            ):
                return pipeline
            embeddings = None
            if (
                pipeline is not None
                and pipeline.lexicon is lexicon
                and pipeline.embeddings.num_pages
                == state.graph.num_nodes
            ):
                embeddings = pipeline.embeddings
            rebuilt = SemanticPipeline(
                state.graph,
                lexicon,
                embeddings=embeddings,
                dim=(
                    pipeline.embeddings.dim
                    if pipeline is not None
                    else 256
                ),
                embedding_seed=(
                    pipeline.embeddings.seed
                    if pipeline is not None
                    else 0
                ),
                top_m=(
                    pipeline.top_m if pipeline is not None else 20
                ),
                similarity_threshold=(
                    pipeline.similarity_threshold
                    if pipeline is not None
                    else 0.05
                ),
                max_hops=(
                    pipeline.max_hops if pipeline is not None else 1
                ),
                tau=(pipeline.tau if pipeline is not None else 0.9),
                settings=(
                    pipeline.settings
                    if pipeline is not None
                    else self._settings
                ),
                preprocessor=state.preprocessor,
            )
            self._semantic = rebuilt
            self._semantic_selections.clear()
            return rebuilt

    # ------------------------------------------------------------------
    # Solving (runs on the executor thread)
    # ------------------------------------------------------------------

    def _solve_group(
        self,
        group_key: Any,
        local_nodes: np.ndarray,
        dampings: tuple[float, ...],
    ) -> list[SubgraphScores]:
        state = self._state
        if group_key[0] != state.fingerprint:
            # The graph was swapped while this batch sat in the queue;
            # solving against the new operator would silently answer
            # with the wrong graph's scores.
            raise ServeError(
                "graph was updated while the request was queued; retry"
            )
        if len(dampings) == 1:
            # The exact offline path: bit-identical to approxrank().
            settings = replace(self._settings, damping=dampings[0])
            return [state.preprocessor.rank(local_nodes, settings)]
        # Same subgraph, several ε: one extended matrix, one batched
        # multi-column solve — the serving payoff of PR 1's kernel.
        start = time.perf_counter()
        extended = state.preprocessor.extended_graph(local_nodes)
        teleports = np.repeat(
            extended.p_ideal[:, None], len(dampings), axis=1
        )
        outcomes = extended.solve_many(
            teleports,
            self._settings,
            dampings=np.asarray(dampings, dtype=np.float64),
        )
        runtime = time.perf_counter() - start
        return [
            solve_to_subgraph_scores(
                extended,
                method="approxrank",
                total_runtime=runtime,
                solve=outcome,
                extras={
                    "preprocess_seconds": (
                        state.preprocessor.preprocess_seconds
                    ),
                    "batched_columns": len(dampings),
                },
            )
            for outcome in outcomes
        ]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _resolve_damping(self, damping: float | None) -> float:
        if damping is None:
            return self._settings.damping
        value = float(damping)
        # Route validation through the settings dataclass so the
        # accepted range has exactly one definition.
        replace(self._settings, damping=value)
        return value

    async def rank(
        self,
        nodes: Iterable[int],
        damping: float | None = None,
        deadline_seconds: float | None = None,
        estimator: str | None = None,
    ) -> tuple[SubgraphScores, bool]:
        """Scores for one subgraph; returns ``(scores, cache_hit)``."""
        outcome = await self.rank_with_meta(
            nodes, damping, deadline_seconds, estimator=estimator
        )
        return outcome.scores, outcome.cache_hit

    async def rank_with_meta(
        self,
        nodes: Iterable[int],
        damping: float | None = None,
        deadline_seconds: float | None = None,
        estimator: str | None = None,
    ) -> RankOutcome:
        """Scores plus cache/staleness accounting for one subgraph.

        A warm hit on a stale-but-bounded entry is served immediately
        with its staleness charge attached (the store guarantees the
        charge is within budget); a miss solves fresh.

        ``estimator`` opts a request into the sublinear engines (spec
        string, e.g. ``"montecarlo:walks=20000"``); it falls back to
        the service's ``default_estimator``.  Estimated results are
        *never* bit-identical to the offline solve, so they are always
        flagged stale, carry their certified ``error_bound`` as the
        staleness charge, and live in the store under the estimator's
        own variant key — an exact request can never be answered from
        an estimated entry.
        """
        spec = estimator if estimator is not None else (
            self._default_estimator
        )
        if spec is not None:
            engine = resolve_estimator(spec)
            if engine.name != "exact":
                return await self._rank_estimated(
                    engine, nodes, damping, deadline_seconds
                )
        state = self._state
        local = normalize_node_set(state.graph, nodes)
        epsilon = self._resolve_damping(damping)
        hit = self.store.lookup(state.graph, local, epsilon)
        if hit is not None:
            return RankOutcome(
                scores=hit.scores,
                cache_hit=True,
                stale=hit.stale,
                staleness=hit.staleness,
            )
        group_key = (state.fingerprint, subgraph_digest(local))
        scores = await self.batcher.submit(
            group_key, local, epsilon, deadline_seconds
        )
        self.store.put(state.graph, local, epsilon, scores)
        return RankOutcome(scores=scores, cache_hit=False)

    async def _rank_estimated(
        self,
        engine,
        nodes: Iterable[int],
        damping: float | None,
        deadline_seconds: float | None,
    ) -> RankOutcome:
        """The opt-in sublinear path: estimate, certify, cache.

        Estimates bypass the micro-batcher (there is no multi-column
        kernel to amortise) and run on the solver executor.  The
        certified error bound doubles as the entry's staleness charge:
        both it and any later Theorem-2 update charges upper-bound the
        score drift, so the store's budget accounting uniformly caps
        total certified error.
        """
        state = self._state
        local = normalize_node_set(state.graph, nodes)
        epsilon = self._resolve_damping(damping)
        variant = engine.variant
        hit = self.store.lookup(state.graph, local, epsilon, variant)
        if hit is not None:
            return RankOutcome(
                scores=hit.scores,
                cache_hit=True,
                stale=True,
                staleness=hit.staleness,
            )
        settings = replace(self._settings, damping=epsilon)
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._executor,
            lambda: engine.estimate(
                state.graph, local, settings, state.preprocessor
            ),
        )
        if deadline_seconds is not None:
            try:
                scores = await asyncio.wait_for(
                    asyncio.shield(future), timeout=deadline_seconds
                )
            except asyncio.TimeoutError:
                raise DeadlineExceededError(
                    f"estimate missed its {deadline_seconds:.3f}s "
                    "deadline",
                    deadline_seconds=deadline_seconds,
                )
        else:
            scores = await future
        bound = float(scores.extras.get("error_bound", 0.0))
        self.store.put(
            state.graph,
            local,
            epsilon,
            scores,
            stale=True,
            staleness=bound,
            variant=variant,
        )
        return RankOutcome(
            scores=scores,
            cache_hit=False,
            stale=True,
            staleness=bound,
        )

    async def search(
        self,
        nodes: Iterable[int],
        terms: Iterable[int],
        k: int = 10,
        mode: str = "all",
        damping: float | None = None,
        deadline_seconds: float | None = None,
        estimator: str | None = None,
    ) -> tuple[list[SearchHit], RankOutcome]:
        """Top-``k`` matching pages of a ranked subgraph (Figure 1).

        ``estimator`` selects the ranking engine exactly as in
        :meth:`rank_with_meta` — the answer list is then ordered by
        the estimated scores and the outcome carries the certified
        bound (a bogus spec raises
        :class:`~repro.exceptions.EstimationError`, a 400 at the
        HTTP layer).
        """
        outcome = await self.rank_with_meta(
            nodes, damping, deadline_seconds, estimator=estimator
        )
        engine = SubgraphSearchEngine(
            outcome.scores, self._require_lexicon()
        )
        return engine.search(list(terms), k=k, mode=mode), outcome

    async def semantic_search(
        self,
        terms: Iterable[int],
        k: int = 10,
        estimator: str | None = None,
        damping: float | None = None,
        deadline_seconds: float | None = None,
    ) -> tuple[SemanticAnswer, RankOutcome]:
        """Query→select→rank→dedup over the semantic ``G_l``.

        The selection stage is cached by query digest (same query +
        same embedding config ⇒ same neighborhood, no re-embed); the
        ranking stage goes through :meth:`rank_with_meta`, so it
        honours ``estimator`` (and the service default) and the
        ScoreStore's variant-keyed caching.  The exact path is
        bit-identical to the offline
        :meth:`~repro.semantic.pipeline.SemanticPipeline.run`.
        """
        pipeline = self._require_semantic()
        term_list = [int(t) for t in terms]
        state = self._state
        key = (state.fingerprint, pipeline.query_digest(term_list))
        with self._semantic_lock:
            selection = self._semantic_selections.get(key)
        if selection is None:
            loop = asyncio.get_running_loop()
            selection = await loop.run_in_executor(
                self._executor,
                lambda: pipeline.select(term_list),
            )
            with self._semantic_lock:
                if len(self._semantic_selections) >= 1024:
                    self._semantic_selections.clear()
                self._semantic_selections[key] = selection
        outcome = await self.rank_with_meta(
            selection.nodes,
            damping,
            deadline_seconds,
            estimator=estimator,
        )
        answer = pipeline.finish(
            selection,
            outcome.scores,
            k=k,
            estimator_name=str(
                outcome.scores.extras.get("estimator", "exact")
            ),
        )
        record_semantic_metrics(answer, self._registry)
        return answer, outcome

    async def apply_update(
        self,
        delta: GraphDelta,
        hops: int = 2,
        migrate_unaffected: bool = True,
        refresh: bool = False,
    ):
        """Apply a :class:`GraphDelta` and swap the served graph.

        Runs the rebuild + new global pass off the event loop, then
        atomically swaps the state and migrates affected store entries
        into the stale-but-bounded state (see
        :meth:`ScoreStore.apply_update`): they keep serving — flagged,
        charged against the Theorem-2 budget — while an incremental
        re-rank brings them back.  The refresh is scheduled off-loop
        by default (a background task warm-starts each stale entry
        from its previous score vector); ``refresh=True`` awaits it
        before returning instead.
        """
        async with self._update_lock:
            old_state = self._state
            loop = asyncio.get_running_loop()
            new_graph = await loop.run_in_executor(
                None, apply_delta, old_state.graph, delta
            )
            new_prep = await loop.run_in_executor(
                None, ApproxRankPreprocessor, new_graph
            )
            report = await loop.run_in_executor(
                None,
                lambda: self.store.apply_update(
                    old_state.graph,
                    new_graph,
                    delta=delta,
                    hops=hops,
                    migrate_unaffected=migrate_unaffected,
                ),
            )
            with self._lexicon_lock:
                if new_graph.num_nodes != old_state.graph.num_nodes:
                    self._lexicon = None
            new_state = _GraphState(
                graph=new_graph,
                preprocessor=new_prep,
                fingerprint=graph_fingerprint(new_graph),
            )
            self._state = new_state
            self._updates_applied += 1
            self._staleness_spent += report.staleness_charge
        if report.stale_entries:
            if refresh:
                await self._refresh_entries(
                    new_state, report.stale_entries, mode="eager"
                )
                report = replace(
                    report, refreshed=len(report.stale_entries)
                )
            else:
                task = asyncio.create_task(
                    self._refresh_entries(
                        new_state,
                        report.stale_entries,
                        mode="background",
                    )
                )
                self._refresh_tasks.add(task)
                task.add_done_callback(self._refresh_tasks.discard)
        return report

    # ------------------------------------------------------------------
    # Incremental refresh (stale-but-bounded entries)
    # ------------------------------------------------------------------

    def _refresh_entry_sync(
        self,
        state: _GraphState,
        nodes: np.ndarray,
        damping: float,
    ) -> int:
        """Re-rank one stale entry, warm-starting from its old vector.

        Returns the iterations the warm start saved.  The refreshed
        entry is re-inserted still flagged stale, carrying the solver
        truncation bound ``(residual + tolerance)/(1−ε)`` — it is
        within that of a cold solve but not bit-identical, and the
        serving contract only unflags bit-identical results.  A cold
        refresh (no warm vector available) inserts fresh.
        """
        hit = self.store.lookup(state.graph, nodes, damping)
        initial = None
        if hit is not None:
            old = hit.scores
            lam = old.extras.get("lambda_score")
            if lam is None:
                lam = max(1.0 - float(old.scores.sum()), 0.0)
            candidate = np.concatenate(
                [np.asarray(old.scores, dtype=np.float64), [float(lam)]]
            )
            if candidate.sum() > 0 and np.all(candidate >= 0):
                initial = candidate
        settings = replace(
            self._settings,
            damping=damping,
            safe_restart=initial is not None,
        )
        fresh = state.preprocessor.rank(
            nodes, settings, initial=initial
        )
        if initial is not None:
            remaining = (fresh.residual + settings.tolerance) / (
                1.0 - damping
            )
            self.store.put(
                state.graph,
                np.asarray(fresh.local_nodes),
                damping,
                fresh,
                stale=True,
                staleness=remaining,
            )
        else:
            self.store.put(
                state.graph,
                np.asarray(fresh.local_nodes),
                damping,
                fresh,
            )
        return int(fresh.extras.get("iterations_saved", 0))

    async def _refresh_entries(
        self,
        state: _GraphState,
        entries,
        mode: str,
    ) -> None:
        loop = asyncio.get_running_loop()
        for nodes, damping in entries:
            if state is not self._state:
                # The graph moved on while this refresh waited; the
                # next update's work list supersedes this one.
                return
            saved = await loop.run_in_executor(
                None,
                self._refresh_entry_sync,
                state,
                np.asarray(nodes, dtype=np.int64),
                float(damping),
            )
            self._iterations_saved += saved
            self._entries_refreshed += 1
            self._registry.counter(
                "repro_update_background_refreshes_total",
                "Stale store entries re-ranked after a graph update, "
                "by scheduling mode.",
                mode=mode,
            ).inc()

    async def close(self) -> None:
        """Drain refreshes and the batcher, release the executor."""
        if self._refresh_tasks:
            await asyncio.gather(
                *tuple(self._refresh_tasks), return_exceptions=True
            )
        await self.batcher.drain()
        self._executor.shutdown(wait=True)

    def health(self) -> dict:
        """The ``/healthz`` payload."""
        from repro.pagerank.backends import backend_info

        state = self._state
        store_stats = self.store.stats()
        return {
            "status": "ok",
            "graph_nodes": state.graph.num_nodes,
            "graph_edges": state.graph.num_edges,
            "graph_fingerprint": state.fingerprint[:16],
            "store": store_stats,
            "batching": self.batcher.policy.enabled,
            "pending": self.batcher.pending,
            "solver_backend": backend_info(),
            "default_estimator": self._default_estimator or "exact",
            "updates": {
                "applied": self._updates_applied,
                "staleness_spent": self._staleness_spent,
                "staleness_budget": self.store.staleness_budget,
                "stale_entries": store_stats.get("stale_entries", 0),
                "iterations_saved": self._iterations_saved,
                "entries_refreshed": self._entries_refreshed,
                "pending_refreshes": len(self._refresh_tasks),
            },
        }


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------


def _scores_payload(
    scores: SubgraphScores,
    cache_hit: bool,
    stale: bool = False,
    staleness: float = 0.0,
) -> dict:
    payload = {
        "nodes": scores.local_nodes.tolist(),
        "scores": scores.scores.tolist(),
        "method": scores.method,
        "iterations": scores.iterations,
        "residual": scores.residual,
        "converged": scores.converged,
        "runtime_seconds": scores.runtime_seconds,
        "cache_hit": cache_hit,
        # The serving contract: a result is either bit-identical to
        # the offline solve on the current graph, or explicitly
        # flagged stale with its Theorem-2 charge attached.
        "stale": stale,
        "staleness": staleness,
    }
    if "lambda_score" in scores.extras:
        payload["lambda_score"] = scores.extras["lambda_score"]
    if "warm_start" in scores.extras:
        payload["warm_start"] = bool(scores.extras["warm_start"])
        payload["iterations_saved"] = int(
            scores.extras.get("iterations_saved", 0)
        )
    estimator = scores.extras.get("estimator")
    if estimator is not None:
        # Sublinear results are clearly flagged non-bit-identical and
        # ship their certificate with the scores.
        payload["estimator"] = str(estimator)
        payload["estimated"] = estimator != "exact"
        payload["error_bound"] = float(
            scores.extras.get("error_bound", 0.0)
        )
        if "edges_touched" in scores.extras:
            payload["edges_touched"] = int(
                scores.extras["edges_touched"]
            )
    return payload


def _search_meta(payload: dict, outcome: RankOutcome) -> dict:
    """Attach rank-outcome accounting to a search-style payload."""
    payload["cache_hit"] = outcome.cache_hit
    payload["stale"] = outcome.stale
    payload["staleness"] = outcome.staleness
    extras = outcome.scores.extras
    estimator = extras.get("estimator")
    if estimator is not None:
        payload["estimator"] = str(estimator)
        payload["estimated"] = estimator != "exact"
        payload["error_bound"] = float(
            extras.get("error_bound", 0.0)
        )
    return payload


def _semantic_payload(
    answer: SemanticAnswer, outcome: RankOutcome
) -> dict:
    payload = {
        "hits": [
            {
                "page": hit.page,
                "score": hit.score,
                "rank": hit.rank,
                "similarity": hit.similarity,
                "cluster_size": hit.cluster_size,
                "merged_score": hit.merged_score,
            }
            for hit in answer.hits
        ],
        "nodes": answer.local_nodes.tolist(),
        "query_digest": answer.query_digest,
        "estimator": answer.estimator,
        "estimated": answer.estimated,
        "error_bound": answer.error_bound,
        "neighborhood_size": answer.neighborhood_size,
        "candidates_pruned": answer.candidates_pruned,
        "dedup_merges": answer.dedup_merges,
        "clusters": answer.extras.get("clusters", []),
        "cache_hit": outcome.cache_hit,
        # Same serving contract as /rank: bit-identical to the
        # offline pipeline, or explicitly flagged with a certified
        # bound.
        "stale": outcome.stale,
        "staleness": outcome.staleness,
    }
    return payload


class RankingServer:
    """Asyncio HTTP/1.1 front end for a :class:`RankingService`.

    Parameters
    ----------
    service:
        The engine to serve.
    host / port:
        Bind address; port 0 picks an ephemeral port (tests).
    drain_timeout:
        Grace period for in-flight requests at shutdown; connections
        still busy afterwards are cancelled.
    registry:
        Metrics registry for request counters and latency histograms.
    """

    #: Paths that get their own metrics label; everything else is
    #: bucketed as "unknown" so a scan cannot explode cardinality.
    ENDPOINTS: tuple[str, ...] = (
        "/rank", "/search", "/semantic-search", "/healthz", "/metrics"
    )

    def __init__(
        self,
        service: RankingService,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_timeout: float = 5.0,
        registry: MetricsRegistry | None = None,
    ):
        self.service = service
        self._host = host
        self._port = port
        self._drain_timeout = drain_timeout
        self._registry = registry if registry is not None else REGISTRY
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._closing = False

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        if self._server is None:
            raise ServeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        return self.address

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` (or cancellation)."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, then close."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            done, pending = await asyncio.wait(
                self._connections, timeout=self._drain_timeout
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        await self.service.close()

    async def run(self) -> None:
        """Start and serve until cancelled; then shut down gracefully."""
        await self.start()
        try:
            await self.serve_forever()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                keep_alive = await self._handle_one_request(
                    reader, writer
                )
                if not keep_alive or self._closing:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        except asyncio.CancelledError:
            # Shutdown (or a simulated shard crash) cancelled this
            # handler; finish quietly — re-raising from a start_server
            # handler only feeds asyncio's noisy connection_made
            # callback, and the socket is closed below either way.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_one_request(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        request_line = await reader.readline()
        if not request_line:
            return False
        try:
            method, target, version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            await self._respond(
                writer, 400, {"error": "malformed request line"},
                endpoint="unknown", keep_alive=False,
            )
            return False

        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            await self._respond(
                writer, 400, {"error": "request body too large"},
                endpoint="unknown", keep_alive=False,
            )
            return False
        body = await reader.readexactly(length) if length else b""

        keep_alive = (
            headers.get("connection", "").lower() != "close"
            and version != "HTTP/1.0"
            and not self._closing
        )

        started = time.perf_counter()
        path, _, query = target.partition("?")
        if query:
            headers[_QUERY_PSEUDO_HEADER] = query
        status, payload, content_type = await self._route(
            method, path, body, headers
        )
        endpoint = path if path in self.ENDPOINTS else "unknown"
        elapsed = time.perf_counter() - started
        self._registry.counter(
            "repro_serve_requests_total",
            "HTTP requests served, by endpoint and status.",
            endpoint=endpoint,
            status=str(status),
        ).inc()
        self._registry.histogram(
            "repro_serve_request_seconds",
            "End-to-end request handling latency.",
            buckets=SECONDS_BUCKETS,
            endpoint=endpoint,
        ).observe(elapsed)
        await self._respond(
            writer, status, payload,
            endpoint=endpoint,
            keep_alive=keep_alive,
            content_type=content_type,
        )
        return keep_alive

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, Any, dict]:
        """Dispatch one request; returns (status, payload, headers)."""
        headers = headers or {}
        try:
            if path == "/healthz":
                if method != "GET":
                    return 405, {"error": "use GET"}, _JSON
                return 200, self.service.health(), _JSON
            if path == "/metrics":
                if method != "GET":
                    return 405, {"error": "use GET"}, _JSON
                text = to_prometheus_text(self._registry.snapshot())
                return 200, text, _TEXT
            if path == "/rank":
                if method != "POST":
                    return 405, {"error": "use POST"}, _JSON
                request = self._parse_json(body)
                # The opt-in estimator: `/rank?estimator=push:r_max=1e-3`
                # (query form wins) or an "estimator" body field.
                estimator = self._query_param(headers, "estimator")
                if estimator is None:
                    estimator = request.get("estimator")
                outcome = await self.service.rank_with_meta(
                    self._require_nodes(request),
                    damping=request.get("damping"),
                    deadline_seconds=self._effective_deadline(
                        request, headers
                    ),
                    estimator=estimator,
                )
                payload = _scores_payload(
                    outcome.scores,
                    outcome.cache_hit,
                    stale=outcome.stale,
                    staleness=outcome.staleness,
                )
                # The graph the answer was computed on; a router in
                # front compares this against its own fingerprint to
                # catch a replica still serving a pre-update graph.
                payload["graph_fingerprint"] = (
                    self.service.fingerprint[:16]
                )
                return 200, payload, _JSON
            if path == "/search":
                if method != "POST":
                    return 405, {"error": "use POST"}, _JSON
                request = self._parse_json(body)
                terms = self._require_terms(request)
                # Same estimator plumbing as /rank: the query form
                # wins over the body field, bogus specs are 400s.
                estimator = self._query_param(headers, "estimator")
                if estimator is None:
                    estimator = request.get("estimator")
                hits, outcome = await self.service.search(
                    self._require_nodes(request),
                    terms=terms,
                    k=int(request.get("k", 10)),
                    mode=str(request.get("mode", "all")),
                    damping=request.get("damping"),
                    deadline_seconds=self._effective_deadline(
                        request, headers
                    ),
                    estimator=estimator,
                )
                payload = _search_meta({
                    "hits": [
                        {
                            "page": hit.page,
                            "score": hit.score,
                            "rank": hit.rank,
                        }
                        for hit in hits
                    ],
                }, outcome)
                return 200, payload, _JSON
            if path == "/semantic-search":
                if method != "POST":
                    return 405, {"error": "use POST"}, _JSON
                request = self._parse_json(body)
                terms = self._require_terms(request)
                estimator = self._query_param(headers, "estimator")
                if estimator is None:
                    estimator = request.get("estimator")
                answer, outcome = await self.service.semantic_search(
                    terms=terms,
                    k=int(request.get("k", 10)),
                    estimator=estimator,
                    damping=request.get("damping"),
                    deadline_seconds=self._effective_deadline(
                        request, headers
                    ),
                )
                payload = _semantic_payload(answer, outcome)
                payload["graph_fingerprint"] = (
                    self.service.fingerprint[:16]
                )
                return 200, payload, _JSON
            return 404, {"error": f"unknown path {path}"}, _JSON
        except (ServiceOverloadedError, DeadlineExceededError) as exc:
            return 503, {
                "error": str(exc),
                "kind": type(exc).__name__,
            }, _JSON
        except (
            SubgraphError,
            GraphError,
            DatasetError,
            EstimationError,
            ValueError,
        ) as exc:
            return 400, {
                "error": str(exc),
                "kind": type(exc).__name__,
            }, _JSON
        except ReproError as exc:
            return 500, {
                "error": str(exc),
                "kind": type(exc).__name__,
            }, _JSON
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            return 500, {
                "error": f"internal error: {exc}",
                "kind": type(exc).__name__,
            }, _JSON

    @staticmethod
    def _effective_deadline(
        request: dict, headers: dict[str, str]
    ) -> float | None:
        """The tighter of the body deadline and the propagated header.

        The router stamps :data:`DEADLINE_HEADER` with the seconds of
        budget remaining when it forwarded the request; queued work
        that cannot finish inside the *end-to-end* budget is then
        dropped by the batcher without spending solver time.
        """
        body_deadline = request.get("deadline_seconds")
        header_value = headers.get(DEADLINE_HEADER.lower())
        header_deadline: float | None = None
        if header_value is not None:
            try:
                header_deadline = float(header_value)
            except ValueError:
                raise ValueError(
                    f"malformed {DEADLINE_HEADER} header: "
                    f"{header_value!r}"
                )
        if body_deadline is None:
            return header_deadline
        if header_deadline is None:
            return float(body_deadline)
        return min(float(body_deadline), header_deadline)

    @staticmethod
    def _query_param(
        headers: dict[str, str], name: str
    ) -> str | None:
        """One query-string parameter, from the pseudo-header.

        Splits on ``&`` and the *first* ``=`` only, so estimator specs
        — which embed ``=`` and ``,`` in their value — survive intact.
        """
        query = headers.get(_QUERY_PSEUDO_HEADER, "")
        for part in query.split("&"):
            key, sep, value = part.partition("=")
            if sep and key == name:
                return urllib.parse.unquote(value)
        return None

    @staticmethod
    def _parse_json(body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    @staticmethod
    def _require_nodes(request: dict) -> list[int]:
        nodes = request.get("nodes")
        if not isinstance(nodes, list) or not nodes:
            raise SubgraphError(
                "'nodes' must be a non-empty list of page ids"
            )
        return [int(node) for node in nodes]

    @staticmethod
    def _require_terms(request: dict) -> list[int]:
        terms = request.get("terms")
        if not isinstance(terms, list) or not terms:
            raise DatasetError(
                "'terms' must be a non-empty list of term ids"
            )
        return [int(term) for term in terms]

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        endpoint: str,
        keep_alive: bool,
        content_type: dict | None = None,
    ) -> None:
        reasons = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error",
            503: "Service Unavailable",
        }
        headers = dict(content_type or _JSON)
        if isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = (json.dumps(payload) + "\n").encode("utf-8")
        headers["Content-Length"] = str(len(body))
        headers["Connection"] = "keep-alive" if keep_alive else "close"
        if status == 503:
            headers["Retry-After"] = "1"
        head = [f"HTTP/1.1 {status} {reasons.get(status, 'Error')}"]
        head += [f"{name}: {value}" for name, value in headers.items()]
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        )
        await writer.drain()


# ----------------------------------------------------------------------
# Background-thread harness (tests / benchmark / CLI-adjacent tooling)
# ----------------------------------------------------------------------


class BackgroundServer:
    """A :class:`RankingServer` running on its own thread + event loop.

    The thread owns the loop; :meth:`stop` requests a graceful
    shutdown from outside and joins the thread.  Use as a context
    manager::

        with start_background_server(service) as handle:
            client = RankingClient(*handle.address)
            ...
    """

    def __init__(self, server: RankingServer):
        self._server = server
        self._address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._thread_main,
            name="repro-serve-http",
            daemon=True,
        )

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise ServeError("background server is not running")
        return self._address

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The thread's event loop; valid while running.  Lets a
        manager schedule work onto the server (e.g. a simulated crash)
        via ``call_soon_threadsafe``."""
        if self._loop is None:
            raise ServeError("background server is not running")
        return self._loop

    def _thread_main(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            self._address = await self._server.start()
        except BaseException as exc:  # surface bind errors to starter
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        serving = asyncio.ensure_future(self._server.serve_forever())
        await self._stop_event.wait()
        await self._server.stop()
        serving.cancel()
        await asyncio.gather(serving, return_exceptions=True)

    def start(self) -> "BackgroundServer":
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self, timeout: float = 10.0) -> bool:
        """Request shutdown and join the server thread.

        Returns ``True`` when the thread exited within ``timeout``.  A
        thread still alive afterwards is a leak — the event loop is
        wedged (a hung solve, an undrained connection) — and is
        reported loudly on the ``repro.serve`` logger instead of being
        ignored; the daemon flag keeps it from blocking interpreter
        exit, but every result it might still write is untrustworthy.
        """
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout)
        if self._thread.is_alive():
            log.warning(
                "background server thread %r failed to stop within "
                "%.1fs and is leaking (event loop wedged?)",
                self._thread.name,
                timeout,
            )
            return False
        return True

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_background_server(
    service: RankingService,
    host: str = "127.0.0.1",
    port: int = 0,
    registry: MetricsRegistry | None = None,
) -> BackgroundServer:
    """Boot a server for ``service`` on a daemon thread; returns the
    running handle (its ``address`` carries the ephemeral port)."""
    server = RankingServer(
        service, host=host, port=port, registry=registry
    )
    return BackgroundServer(server).start()
