"""Figure 7 bench: BFS-subgraph footrule sweep (§V-E).

Regenerates the Figure 7 series (footrule vs crawl size for ApproxRank,
local PageRank and LPR2, plus SC on the smallest crawls) and asserts
the paper's three qualitative findings: ApproxRank dominates, LPR2 is
the worst baseline on boundary-heavy crawls, and BFS subgraphs are
harder than DS subgraphs of comparable size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.approxrank import approxrank
from repro.experiments import figure7
from repro.metrics.evaluation import evaluate_estimate
from repro.subgraphs.bfs import bfs_subgraph, default_bfs_seed
from repro.subgraphs.domain import domain_subgraph


class TestFigure7Regeneration:
    def test_regenerate_figure7(self, benchmark, bench_context):
        result = benchmark.pedantic(
            lambda: figure7.run(bench_context), rounds=1, iterations=1
        )
        print()
        print(result.render())
        approx = result.column("ApproxRank")
        local_pr = result.column("localPR")
        lpr2_col = result.column("LPR2")
        assert all(a < l for a, l in zip(approx, local_pr))
        assert all(a < p for a, p in zip(approx, lpr2_col))


class TestBfsVsDsHardness:
    def test_bfs_harder_than_ds_at_similar_size(
        self, bench_context, au, au_truth
    ):
        """§V-E: BFS distances exceed DS distances at similar size."""
        seed = default_bfs_seed(au.graph)
        ds_nodes = domain_subgraph(au, "anu.edu.au")
        fraction = ds_nodes.size / au.graph.num_nodes
        bfs_nodes = bfs_subgraph(au.graph, seed, fraction)
        prep = bench_context.preprocessor(au)
        from repro.baselines.localpr import local_pagerank_baseline

        ds_report = evaluate_estimate(
            au_truth.scores,
            local_pagerank_baseline(
                au.graph, ds_nodes, bench_context.settings
            ),
        )
        bfs_report = evaluate_estimate(
            au_truth.scores,
            local_pagerank_baseline(
                au.graph, bfs_nodes, bench_context.settings
            ),
        )
        assert bfs_report.footrule > ds_report.footrule


@pytest.mark.parametrize("fraction", [0.02, 0.10, 0.20])
class TestApproxRankOnBfs:
    def test_approxrank_scaling(
        self, benchmark, fraction, bench_context, au, au_truth
    ):
        seed = default_bfs_seed(au.graph)
        nodes = bfs_subgraph(au.graph, seed, fraction)
        prep = bench_context.preprocessor(au)
        estimate = benchmark(
            lambda: approxrank(
                au.graph, nodes, bench_context.settings,
                preprocessor=prep,
            )
        )
        report = evaluate_estimate(au_truth.scores, estimate)
        assert report.footrule < 0.35
        assert nodes.size == int(
            np.round(fraction * au.graph.num_nodes)
        )
