"""Convergence telemetry: ring buffer semantics and recording gates.

Registry assertions are **delta-based**: the process-wide REGISTRY
accumulates across the whole test session, so each test reads the
before-value of the counters it touches.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import state, telemetry
from repro.obs.metrics import REGISTRY
from repro.obs.telemetry import RingBuffer, SolveRecord, TRACE_TAIL

pytestmark = pytest.mark.obs


class TestRingBuffer:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_fills_then_evicts_oldest(self):
        buf = RingBuffer(3)
        for i in range(5):
            buf.append(i)
        assert buf.items() == [2, 3, 4]
        assert len(buf) == 3
        assert buf.total_appended == 5

    def test_order_preserved_before_wrap(self):
        buf = RingBuffer(8)
        for i in range(3):
            buf.append(i)
        assert buf.items() == [0, 1, 2]

    def test_wraps_repeatedly(self):
        buf = RingBuffer(2)
        for i in range(7):
            buf.append(i)
        assert buf.items() == [5, 6]

    def test_clear(self):
        buf = RingBuffer(2)
        buf.append(1)
        buf.clear()
        assert buf.items() == []
        assert buf.total_appended == 0


def _value(name, **labels):
    return REGISTRY.value(name, **labels)


class TestRecordSolve:
    def test_registry_always_counts_even_when_obs_off(self):
        obs.disable()
        telemetry.reset()
        before = _value("repro_solver_solves_total", solver="power")
        telemetry.record_solve(
            "power",
            iterations=12,
            residual=1e-6,
            converged=True,
            damping=0.85,
            runtime_seconds=0.01,
        )
        after = _value("repro_solver_solves_total", solver="power")
        assert after == before + 1
        # ...but the per-solve ring buffer stays empty.
        assert telemetry.SOLVE_HISTORY.items() == []

    def test_history_recorded_when_obs_on(self):
        obs.enable()
        telemetry.reset()
        trace = [10.0 ** -k for k in range(TRACE_TAIL + 10)]
        telemetry.record_solve(
            "power",
            iterations=40,
            residual=trace[-1],
            converged=True,
            damping=0.85,
            runtime_seconds=0.02,
            residual_trace=trace,
        )
        (record,) = telemetry.SOLVE_HISTORY.items()
        assert isinstance(record, SolveRecord)
        assert record.solver == "power"
        assert record.iterations == 40
        assert record.converged
        # Only the tail of a long residual trace is kept.
        assert len(record.residual_tail) == TRACE_TAIL
        assert record.residual_tail == tuple(trace[-TRACE_TAIL:])

    def test_unconverged_solves_counted(self):
        obs.disable()
        before = _value("repro_solver_unconverged_total", solver="power")
        telemetry.record_solve(
            "power",
            iterations=1000,
            residual=1e-3,
            converged=False,
            damping=0.85,
            runtime_seconds=0.5,
        )
        after = _value("repro_solver_unconverged_total", solver="power")
        assert after == before + 1


class TestRecordBatchedSolve:
    def test_counts_columns_and_unconverged(self):
        obs.enable()
        telemetry.reset()
        before_cols = _value("repro_solver_batched_columns_total")
        before_unconv = _value(
            "repro_solver_unconverged_total", solver="batched"
        )
        telemetry.record_batched_solve(
            iterations=[30, 45, 60],
            residuals=[1e-6, 1e-6, 1e-4],
            converged=[True, True, False],
            dampings=[0.85, 0.85, 0.85],
            sweeps=60,
            runtime_seconds=0.1,
            residual_trace=[1e-2, 1e-4, 1e-6],
        )
        assert _value("repro_solver_batched_columns_total") == before_cols + 3
        assert (
            _value("repro_solver_unconverged_total", solver="batched")
            == before_unconv + 1
        )
        (record,) = telemetry.SOLVE_HISTORY.items()
        assert record.solver == "batched"
        assert record.columns == 3
        assert record.sweeps == 60
        assert not record.converged  # one column capped out
        assert record.residual == pytest.approx(1e-4)  # worst column


class TestEventCounters:
    def test_divergence_counter_and_last_sweep_gauge(self):
        before = _value(
            "repro_solver_divergence_trips_total", solver="power"
        )
        telemetry.record_divergence("power", 17)
        assert (
            _value("repro_solver_divergence_trips_total", solver="power")
            == before + 1
        )
        assert (
            _value("repro_solver_last_divergence_sweep", solver="power")
            == 17
        )

    def test_safe_restart_counter(self):
        before = _value("repro_solver_safe_restarts_total", solver="power")
        telemetry.record_safe_restart("power")
        assert (
            _value("repro_solver_safe_restarts_total", solver="power")
            == before + 1
        )

    def test_workspace_allocation_counters(self):
        before_n = _value("repro_solver_workspace_allocations_total")
        before_bytes = _value("repro_solver_workspace_bytes_total")
        telemetry.record_workspace_allocation(1000, 24_000)
        assert (
            _value("repro_solver_workspace_allocations_total")
            == before_n + 1
        )
        assert (
            _value("repro_solver_workspace_bytes_total")
            == before_bytes + 24_000
        )


class TestHistoryPayload:
    def test_payload_is_json_shaped(self):
        obs.enable()
        telemetry.reset()
        telemetry.record_solve(
            "power",
            iterations=5,
            residual=1e-7,
            converged=True,
            damping=0.9,
            runtime_seconds=0.001,
            residual_trace=[1e-5, 1e-7],
        )
        (payload,) = telemetry.history_payload()
        assert payload["solver"] == "power"
        assert payload["residual_tail"] == [1e-5, 1e-7]
        assert payload["columns"] == 1
        assert payload["sweeps"] is None


class TestEnvGate:
    def test_env_var_controls_worker_inheritance(self, monkeypatch):
        import os

        obs.enable()
        assert os.environ[state.ENV_VAR] == "1"
        obs.disable()
        assert os.environ[state.ENV_VAR] == "0"

    @pytest.mark.parametrize("raw", ["", "0", "false", "no", "off", "OFF"])
    def test_falsey_env_values(self, monkeypatch, raw):
        monkeypatch.setenv(state.ENV_VAR, raw)
        assert not state._env_enabled()

    @pytest.mark.parametrize("raw", ["1", "true", "yes", "on"])
    def test_truthy_env_values(self, monkeypatch, raw):
        monkeypatch.setenv(state.ENV_VAR, raw)
        assert state._env_enabled()
