"""Synthetic term assignment for web pages.

Real pages carry terms; synthetic pages need them assigned.  The model
here captures the two properties query evaluation depends on:

* **Zipfian term popularity** — a few terms match many pages, most
  match few (so Top-K pruning matters);
* **group coherence** — pages of the same group (domain/topic) share
  vocabulary more than random pages do, controlled by ``coherence``.

Terms are integers ``0..num_terms-1`` (callers can map them to strings
if they like); assignment is a deterministic function of the seed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError
from repro.graph.digraph import CSRGraph


class SyntheticLexicon:
    """Deterministic page-term assignment with an inverted index.

    Parameters
    ----------
    graph:
        The graph whose pages receive terms.
    group_of:
        Optional group index per page (domains/topics); groups share
        vocabulary.  ``None`` treats all pages as one group.
    num_terms:
        Vocabulary size.
    terms_per_page:
        Mean number of distinct terms per page (Poisson, min 1).
    coherence:
        Probability a page's term is drawn from its group's preferred
        sub-vocabulary rather than the global Zipf distribution.
    zipf_exponent:
        Popularity skew of the global term distribution.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        graph: CSRGraph,
        group_of: np.ndarray | None = None,
        num_terms: int = 1000,
        terms_per_page: float = 8.0,
        coherence: float = 0.5,
        zipf_exponent: float = 1.1,
        seed: int = 0,
    ):
        if num_terms < 1:
            raise DatasetError(f"num_terms must be >= 1, got {num_terms}")
        if terms_per_page <= 0:
            raise DatasetError(
                f"terms_per_page must be positive, got {terms_per_page}"
            )
        if not 0.0 <= coherence <= 1.0:
            raise DatasetError(
                f"coherence must lie in [0, 1], got {coherence}"
            )
        if zipf_exponent <= 0:
            raise DatasetError(
                f"zipf_exponent must be positive, got {zipf_exponent}"
            )
        self.num_terms = int(num_terms)
        num_pages = graph.num_nodes
        if num_pages < 1:
            # group_of.max() on an empty graph would raise a raw
            # numpy ValueError; fail with the typed error instead.
            raise DatasetError(
                "cannot assign terms on an empty graph (0 pages)"
            )
        if group_of is None:
            group_of = np.zeros(num_pages, dtype=np.int64)
        else:
            group_of = np.asarray(group_of, dtype=np.int64)
            if group_of.shape != (num_pages,):
                raise DatasetError(
                    "group_of must label every page, expected shape "
                    f"({num_pages},), got {group_of.shape}"
                )
        rng = np.random.default_rng(seed)

        # Global Zipf weights over terms.
        ranks = np.arange(1, num_terms + 1, dtype=np.float64)
        global_weights = ranks ** (-zipf_exponent)
        global_cdf = np.cumsum(global_weights)
        global_cdf /= global_cdf[-1]

        # Each group prefers a contiguous slice of the vocabulary.
        num_groups = int(group_of.max()) + 1
        slice_size = max(num_terms // max(num_groups, 1), 1)
        group_start = (
            rng.integers(0, max(num_terms - slice_size, 1), num_groups)
            if num_terms > slice_size
            else np.zeros(num_groups, dtype=np.int64)
        )

        page_terms: list[np.ndarray] = []
        postings: dict[int, list[int]] = {}
        counts = np.maximum(rng.poisson(terms_per_page, num_pages), 1)
        for page in range(num_pages):
            count = int(counts[page])
            use_group = rng.random(count) < coherence
            terms = np.empty(count, dtype=np.int64)
            n_global = int((~use_group).sum())
            if n_global:
                draws = rng.random(n_global)
                terms[~use_group] = np.searchsorted(global_cdf, draws)
            n_group = count - n_global
            if n_group:
                start = group_start[group_of[page]]
                terms[use_group] = start + rng.integers(
                    0, slice_size, n_group
                )
            terms = np.unique(np.clip(terms, 0, num_terms - 1))
            page_terms.append(terms)
            for term in terms:
                postings.setdefault(int(term), []).append(page)

        self._page_terms = page_terms
        self._postings = {
            term: np.asarray(pages, dtype=np.int64)
            for term, pages in postings.items()
        }

    @property
    def num_pages(self) -> int:
        """Number of pages terms were assigned to."""
        return len(self._page_terms)

    def terms_of(self, page: int) -> np.ndarray:
        """Sorted distinct terms of one page."""
        if not 0 <= page < len(self._page_terms):
            raise DatasetError(f"unknown page {page}")
        return self._page_terms[page]

    def pages_with_term(self, term: int) -> np.ndarray:
        """Sorted ids of pages containing ``term`` (possibly empty)."""
        if not 0 <= term < self.num_terms:
            raise DatasetError(
                f"term {term} outside vocabulary of {self.num_terms}"
            )
        return self._postings.get(int(term), np.empty(0, dtype=np.int64))

    def pages_matching(
        self, terms, mode: str = "all"
    ) -> np.ndarray:
        """Pages matching a multi-term query.

        Parameters
        ----------
        terms:
            Query terms.
        mode:
            ``"all"`` (conjunctive, default) or ``"any"``
            (disjunctive).
        """
        term_list = list(terms)
        if not term_list:
            raise DatasetError("a query needs at least one term")
        if mode not in ("all", "any"):
            raise DatasetError(f"mode must be 'all' or 'any', got {mode!r}")
        posting_lists = [self.pages_with_term(t) for t in term_list]
        if mode == "all":
            result = posting_lists[0]
            for postings in posting_lists[1:]:
                result = np.intersect1d(result, postings)
            return result
        return np.unique(np.concatenate(posting_lists))

    def document_frequency(self, term: int) -> int:
        """Number of pages containing ``term``."""
        return int(self.pages_with_term(term).size)

    def popular_terms(self, count: int) -> np.ndarray:
        """The ``count`` terms with the highest document frequency."""
        if count < 1:
            raise DatasetError(f"count must be >= 1, got {count}")
        frequencies = [
            (term, postings.size)
            for term, postings in self._postings.items()
        ]
        frequencies.sort(key=lambda item: (-item[1], item[0]))
        return np.asarray(
            [term for term, __ in frequencies[:count]], dtype=np.int64
        )
