"""One shard worker: a :class:`RankingServer` with chaos hooks.

A shard worker is a full :class:`~repro.serve.server.RankingServer` —
it holds the **whole global graph**, so every answer it produces is
bit-identical to the offline solve (the cluster shards the *request
keyspace* for cache affinity, never the graph; see
:mod:`repro.serve.cluster`).  On top of the base server it adds:

* ``POST /update`` — apply a wire-shipped
  :class:`~repro.updates.delta.GraphDelta` and swap the served graph,
  so the router can fan one update out to every replica;
* the **serve-path fault injection sites** — each request is an
  opportunity for the armed :mod:`repro.resilience.faults` kinds
  (``kill_shard``, ``slow_shard``, ``drop_conn``, ``flap_health``),
  keyed by this worker's site name so each replica replays its own
  deterministic schedule.

Faults only ever *remove* behaviour (a missing response, a late
response, a failing health check) — they never alter score bytes, so
whatever survives them is either correct or visibly absent.  That is
what makes the chaos contract ("fresh, flagged-stale, or honest 503 —
never silently wrong") testable.
"""

from __future__ import annotations

import asyncio
import logging
import os
import signal

from repro.exceptions import GraphError, ReproError
from repro.resilience.faults import serve_fault_fires
from repro.serve.server import RankingServer, _JSON
from repro.updates.delta import GraphDelta

__all__ = ["ShardServer"]

log = logging.getLogger(__name__)


class _DropConnectionSignal(ConnectionResetError):
    """Raised through the request handler to sever the connection.

    Subclasses :class:`ConnectionResetError` so the base server's
    connection loop swallows it and closes the socket without writing
    a response — from the router's side the replica just vanished
    mid-request.
    """


class ShardServer(RankingServer):
    """A shard replica's HTTP server (see module docstring).

    Parameters
    ----------
    service:
        The replica's own :class:`~repro.serve.server.RankingService`.
    shard_id / replica_index:
        Position in the cluster; together they name the fault site
        (``shard-<id>``: faults are scheduled per shard, so a
        replica's schedule does not depend on how many siblings the
        shard has) and the log identity.
    process_mode:
        True when this server owns a whole worker process, making
        ``kill_shard`` a genuine ``SIGKILL``; in thread placement the
        crash is simulated by dropping the listening socket and every
        open connection.
    """

    ENDPOINTS: tuple[str, ...] = (
        "/rank", "/search", "/healthz", "/metrics", "/update"
    )

    def __init__(
        self,
        service,
        shard_id: int,
        replica_index: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        process_mode: bool = False,
        **kwargs,
    ):
        super().__init__(service, host=host, port=port, **kwargs)
        self.shard_id = int(shard_id)
        self.replica_index = int(replica_index)
        self.process_mode = bool(process_mode)
        self.crashed = False
        self._site = f"shard-{self.shard_id}"

    @property
    def name(self) -> str:
        return f"shard-{self.shard_id}/replica-{self.replica_index}"

    # ------------------------------------------------------------------
    # Simulated abrupt death (thread placement)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Die abruptly: stop listening, sever every connection.

        Must run on the server's own event loop.  In process mode the
        whole worker process is SIGKILLed instead — the real thing.
        """
        if self.process_mode:
            log.warning("%s: SIGKILL (injected kill_shard)", self.name)
            os.kill(os.getpid(), signal.SIGKILL)
            return
        log.warning(
            "%s: simulated crash — dropping listener and %d "
            "connection(s)",
            self.name,
            len(self._connections),
        )
        self.crashed = True
        if self._server is not None:
            self._server.close()
        current = asyncio.current_task()
        for task in list(self._connections):
            if task is not current:
                task.cancel()

    # ------------------------------------------------------------------
    # Routing (fault sites + /update)
    # ------------------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: dict[str, str] | None = None,
    ):
        if path in ("/rank", "/search"):
            # Injection sites: each ranked request is one opportunity
            # per kind, in a fixed order so the per-site schedule is
            # reproducible.
            if serve_fault_fires("kill_shard", self._site) is not None:
                self.crash()
                raise _DropConnectionSignal("injected kill_shard")
            spec = serve_fault_fires("slow_shard", self._site)
            if spec is not None:
                await asyncio.sleep(spec.delay)
            if serve_fault_fires("drop_conn", self._site) is not None:
                raise _DropConnectionSignal("injected drop_conn")
        elif path == "/healthz":
            if serve_fault_fires("flap_health", self._site) is not None:
                return 503, {
                    "status": "failing",
                    "error": "injected health flap",
                    "shard": self.shard_id,
                    "replica": self.replica_index,
                }, _JSON
        elif path == "/update":
            return await self._handle_update(method, body)
        return await super()._route(method, path, body, headers)

    async def _handle_update(self, method: str, body: bytes):
        if method != "POST":
            return 405, {"error": "use POST"}, _JSON
        try:
            request = self._parse_json(body)
            delta = GraphDelta.from_payload(
                request.get("delta", request)
            )
            report = await self.service.apply_update(delta)
        except (GraphError, ValueError) as exc:
            return 400, {
                "error": str(exc),
                "kind": type(exc).__name__,
            }, _JSON
        except ReproError as exc:
            return 500, {
                "error": str(exc),
                "kind": type(exc).__name__,
            }, _JSON
        return 200, {
            "graph_fingerprint": self.service.fingerprint[:16],
            "graph_nodes": self.service.graph.num_nodes,
            "graph_edges": self.service.graph.num_edges,
            "stale_entries": report.stale,
            "evicted": report.evicted,
            "staleness_charge": report.staleness_charge,
        }, _JSON
