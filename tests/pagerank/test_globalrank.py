"""Unit tests for global PageRank against closed-form/known results."""

import numpy as np
import pytest

from repro.generators.simple import (
    complete_graph,
    cycle_graph,
    line_graph,
    star_graph,
)
from repro.graph.builder import graph_from_edges
from repro.pagerank.globalrank import global_pagerank
from repro.pagerank.solver import PowerIterationSettings


class TestKnownGraphs:
    def test_cycle_is_uniform(self, tight_settings):
        result = global_pagerank(cycle_graph(6), tight_settings)
        assert result.scores == pytest.approx(np.full(6, 1 / 6), abs=1e-10)

    def test_complete_graph_is_uniform(self, tight_settings):
        result = global_pagerank(complete_graph(5), tight_settings)
        assert result.scores == pytest.approx(np.full(5, 0.2), abs=1e-10)

    def test_star_hub_dominates(self, tight_settings):
        result = global_pagerank(star_graph(10), tight_settings)
        hub = result.scores[0]
        leaves = result.scores[1:]
        assert np.all(hub > leaves)
        assert np.allclose(leaves, leaves[0])

    def test_two_node_closed_form(self, tight_settings):
        # 0 <-> 1 is symmetric: both get 1/2 for any damping.
        graph = graph_from_edges(2, [(0, 1), (1, 0)])
        result = global_pagerank(graph, tight_settings)
        assert result.scores == pytest.approx([0.5, 0.5], abs=1e-12)

    def test_chain_closed_form(self, tight_settings):
        # 0 -> 1, 1 dangling, uniform teleport/dangling jump.
        # x1 = e*(x0 + x1/2) + (1-e)/2 ; x0 = e*x1/2 + (1-e)/2
        graph = line_graph(2)
        eps = 0.85
        result = global_pagerank(graph, tight_settings)
        x0, x1 = result.scores
        assert x0 == pytest.approx(
            eps * x1 / 2 + (1 - eps) / 2, abs=1e-10
        )
        assert x0 + x1 == pytest.approx(1.0, abs=1e-12)
        assert x1 > x0  # 1 receives 0's full endorsement


class TestProperties:
    def test_scores_form_distribution(self, messy_graph, paper_settings):
        result = global_pagerank(messy_graph, paper_settings)
        assert result.scores.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(result.scores > 0)

    def test_converges_and_reports(self, messy_graph, paper_settings):
        result = global_pagerank(messy_graph, paper_settings)
        assert result.converged
        assert result.iterations > 1
        assert result.residual < paper_settings.tolerance
        assert result.runtime_seconds >= 0
        assert result.method == "global-pagerank"

    def test_deterministic(self, messy_graph, paper_settings):
        a = global_pagerank(messy_graph, paper_settings)
        b = global_pagerank(messy_graph, paper_settings)
        assert np.array_equal(a.scores, b.scores)

    def test_personalization_biases_scores(
        self, messy_graph, tight_settings
    ):
        n = messy_graph.num_nodes
        biased = np.zeros(n)
        biased[:10] = 0.1
        uniform_result = global_pagerank(messy_graph, tight_settings)
        biased_result = global_pagerank(
            messy_graph, tight_settings, personalization=biased
        )
        # Mass concentrates on/near the personalised pages.
        assert (
            biased_result.scores[:10].sum()
            > uniform_result.scores[:10].sum()
        )

    def test_all_dangling_graph(self, tight_settings):
        # No edges at all: every step teleports; scores are uniform.
        graph = graph_from_edges(4, [])
        result = global_pagerank(graph, tight_settings)
        assert result.scores == pytest.approx(np.full(4, 0.25), abs=1e-12)

    def test_more_inlinks_more_score(self, tight_settings):
        # 2 receives two endorsements, 3 receives one.
        graph = graph_from_edges(
            4, [(0, 2), (1, 2), (0, 3), (2, 0), (3, 0), (1, 0)]
        )
        result = global_pagerank(graph, tight_settings)
        assert result.scores[2] > result.scores[3]

    def test_top_k_ordering(self, messy_graph, paper_settings):
        result = global_pagerank(messy_graph, paper_settings)
        top = result.top_k(5)
        scores = result.scores[top]
        assert np.all(np.diff(scores) <= 0)
        assert result.scores[top[0]] == result.scores.max()


class TestIterationAccounting:
    def test_tighter_tolerance_costs_more_iterations(self, messy_graph):
        loose = global_pagerank(
            messy_graph, PowerIterationSettings(tolerance=1e-3)
        )
        tight = global_pagerank(
            messy_graph, PowerIterationSettings(tolerance=1e-10)
        )
        assert tight.iterations > loose.iterations
