"""Tests for personalised (non-uniform teleport) extended walks.

Theorem 1's proof only needs ``Q2^T P = P_collapsed``, so IdealRank is
exact for *any* global teleport distribution — the property that makes
ObjectRank base-set ranking work through the framework.  These tests
pin that generalisation down.
"""

import numpy as np
import pytest

from repro.core.extended import (
    build_extended_graph,
    collapse_personalization,
)
from repro.core.external import (
    uniform_external_weights,
    weights_from_scores,
)
from repro.core.idealrank import idealrank, rank_with_external_weights
from repro.exceptions import SubgraphError
from repro.pagerank.globalrank import global_pagerank
from repro.pagerank.solver import PowerIterationSettings
from tests.conftest import random_digraph

TIGHT = PowerIterationSettings(tolerance=1e-12, max_iterations=20_000)


def random_personalization(size: int, seed: int, sparse: bool = False):
    rng = np.random.default_rng(seed)
    if sparse:
        vector = np.zeros(size)
        chosen = rng.choice(size, size=max(size // 10, 1), replace=False)
        vector[chosen] = rng.random(chosen.size)
    else:
        vector = rng.random(size)
    return vector / vector.sum()


class TestCollapse:
    def test_collapsed_entries(self):
        graph = random_digraph(20, seed=1)
        local = np.array([2, 5, 7])
        personalization = random_personalization(20, seed=2)
        collapsed = collapse_personalization(personalization, 20, local)
        np.testing.assert_allclose(
            collapsed[:3], personalization[local]
        )
        assert collapsed[3] == pytest.approx(
            1.0 - personalization[local].sum()
        )
        assert collapsed.sum() == pytest.approx(1.0)

    def test_uniform_collapse_matches_equation5(self):
        local = np.arange(4)
        uniform = np.full(10, 0.1)
        collapsed = collapse_personalization(uniform, 10, local)
        np.testing.assert_allclose(collapsed[:4], 0.1)
        assert collapsed[4] == pytest.approx(0.6)

    def test_validation(self):
        local = np.array([0, 1])
        with pytest.raises(SubgraphError, match="cover"):
            collapse_personalization(np.ones(3) / 3, 5, local)
        with pytest.raises(SubgraphError, match="non-negative"):
            bad = np.array([0.5, 0.7, -0.2, 0.0, 0.0])
            collapse_personalization(bad, 5, local)
        with pytest.raises(SubgraphError, match="sum to 1"):
            collapse_personalization(np.full(5, 0.1), 5, local)


class TestPersonalizedTheorem1:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_idealrank_exact_under_dense_personalization(self, seed):
        graph = random_digraph(150, dangling_fraction=0.2, seed=seed)
        personalization = random_personalization(150, seed=seed + 10)
        truth = global_pagerank(
            graph, TIGHT, personalization=personalization
        )
        local = np.arange(30, 80)
        result = idealrank(
            graph, local, truth.scores, TIGHT,
            personalization=personalization,
        )
        np.testing.assert_allclose(
            result.scores, truth.scores[local], atol=1e-9
        )

    def test_idealrank_exact_under_sparse_base_set(self):
        """ObjectRank-style: teleport restricted to a small base set,
        including the case where the base set is wholly external."""
        graph = random_digraph(120, seed=5)
        personalization = np.zeros(120)
        personalization[90:100] = 0.1  # base set outside the subgraph
        truth = global_pagerank(
            graph, TIGHT, personalization=personalization
        )
        local = np.arange(0, 40)
        result = idealrank(
            graph, local, truth.scores, TIGHT,
            personalization=personalization,
        )
        np.testing.assert_allclose(
            result.scores, truth.scores[local], atol=1e-9
        )

    def test_wrong_personalization_breaks_exactness(self):
        """Sanity: the exactness genuinely depends on matching P."""
        graph = random_digraph(100, seed=6)
        personalization = random_personalization(100, seed=7)
        truth = global_pagerank(
            graph, TIGHT, personalization=personalization
        )
        local = np.arange(25)
        mismatched = idealrank(graph, local, truth.scores, TIGHT)
        error = np.abs(mismatched.scores - truth.scores[local]).max()
        assert error > 1e-6


class TestPersonalizedApprox:
    def test_extended_matrix_rows_unchanged_by_p(self):
        """P changes teleportation, not the link-following matrix —
        except the Λ row's dangling-external term."""
        graph = random_digraph(80, dangling_fraction=0.0, seed=8)
        local = np.arange(20)
        weights = uniform_external_weights(graph, local)
        uniform_build = build_extended_graph(graph, local, weights)
        personalized_build = build_extended_graph(
            graph, local, weights,
            personalization=random_personalization(80, seed=9),
        )
        difference = (
            uniform_build.transition_ext_t
            - personalized_build.transition_ext_t
        ).tocoo()
        max_diff = (
            np.abs(difference.data).max() if difference.nnz else 0.0
        )
        assert max_diff < 1e-12  # no danglers -> identical matrices

    def test_personalized_approx_biases_scores(self):
        graph = random_digraph(150, seed=10)
        local = np.arange(40)
        weights = uniform_external_weights(graph, local)
        personalization = np.zeros(150)
        personalization[:5] = 0.2  # teleport only to 5 local pages
        uniform = rank_with_external_weights(
            graph, local, weights, TIGHT
        )
        biased = rank_with_external_weights(
            graph, local, weights, TIGHT,
            personalization=personalization,
        )
        assert biased.scores[:5].sum() > uniform.scores[:5].sum()

    def test_personalized_approx_tracks_personalized_truth(self):
        from repro.metrics.footrule import footrule_from_scores

        graph = random_digraph(200, seed=11)
        personalization = random_personalization(200, seed=12)
        truth = global_pagerank(
            graph, TIGHT, personalization=personalization
        )
        local = np.arange(60)
        weights = uniform_external_weights(graph, local)
        estimate = rank_with_external_weights(
            graph, local, weights, TIGHT,
            personalization=personalization,
        )
        assert footrule_from_scores(
            truth.scores[local], estimate.scores
        ) < 0.25


class TestSemanticBaseSet:
    def test_base_set_subgraph_rank_exact_with_known_scores(self):
        from repro.objectrank.dblp import make_dblp_like
        from repro.objectrank.rank import objectrank, semantic_subgraph_rank

        data = make_dblp_like(
            num_conferences=3, years_per_conference=2,
            papers_per_year=8, num_authors=30, seed=4,
        )
        papers = data.entities_of_type("paper")
        base = papers[:4]
        truth = objectrank(data, TIGHT, base_set=base)
        result = semantic_subgraph_rank(
            data, {"paper", "author"}, TIGHT,
            known_scores=truth.scores, base_set=base,
        )
        np.testing.assert_allclose(
            result.scores, truth.scores[result.local_nodes], atol=1e-8
        )

    def test_base_set_approx_mode_runs(self):
        from repro.objectrank.dblp import make_dblp_like
        from repro.objectrank.rank import semantic_subgraph_rank

        data = make_dblp_like(
            num_conferences=3, years_per_conference=2,
            papers_per_year=8, num_authors=30, seed=4,
        )
        base = data.entities_of_type("paper")[:4]
        result = semantic_subgraph_rank(
            data, {"paper", "author"}, TIGHT, base_set=base
        )
        assert result.method == "approxrank"
        assert result.scores.sum() > 0
