"""Top-k overlap between rankings.

§V-C motivates order accuracy by Top-K query answering: what matters to
a search user is whether the *top* of the estimated ranking matches the
top of the true one.  ``top_k_overlap`` measures exactly that — the
fraction of the true top-k pages the estimate also places in its
top-k (a.k.a. precision@k of the estimated top set).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MetricError


def top_k_overlap(
    reference: np.ndarray, estimate: np.ndarray, k: int
) -> float:
    """Overlap fraction of the top-k sets induced by two score vectors.

    Parameters
    ----------
    reference, estimate:
        Aligned score vectors over the same items.
    k:
        Size of the top sets; clipped to the number of items.

    Returns
    -------
    float in ``[0, 1]``; 1 when the two top-k *sets* coincide.

    Notes
    -----
    Ties are broken by ascending item index in both rankings, so the
    measure is deterministic; with heavy ties at the k boundary this is
    a pessimistic convention applied equally to both sides.
    """
    reference = np.asarray(reference, dtype=np.float64)
    estimate = np.asarray(estimate, dtype=np.float64)
    if reference.shape != estimate.shape or reference.ndim != 1:
        raise MetricError(
            "score vectors must be 1-D and aligned, got shapes "
            f"{reference.shape} and {estimate.shape}"
        )
    if reference.size == 0:
        raise MetricError("score vectors must not be empty")
    if k <= 0:
        raise MetricError(f"k must be positive, got {k}")
    k = min(k, reference.size)
    top_reference = _top_k_indices(reference, k)
    top_estimate = _top_k_indices(estimate, k)
    overlap = np.intersect1d(top_reference, top_estimate).size
    return overlap / k


def _top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    order = np.lexsort((np.arange(scores.size), -scores))
    return order[:k]
