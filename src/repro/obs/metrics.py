"""Process-wide metrics registry: counters, gauges, histograms.

The registry is the library's single source of runtime numbers — cache
hit rates, executor retries, solver iteration distributions — replacing
the scattered private counters that predated it.  Design points:

* **Three metric types.**  :class:`Counter` (monotone, ``inc``),
  :class:`Gauge` (set-to-current, ``set``/``inc``) and fixed-bucket
  :class:`Histogram` (``observe``; cumulative-bucket semantics match
  Prometheus, so the text exposition in :mod:`repro.obs.export` is a
  direct rendering).
* **Labels.**  A metric *family* (one name, one type, one help string)
  holds one child per label set: ``registry.counter("repro_solver_"
  "solves_total", solver="batched")``.  Children are created on first
  touch and cached, so the steady-state cost of an increment is one
  dict lookup plus a locked float add.
* **Thread safety.**  One reentrant lock per registry guards family
  creation, child creation and every value update.  The lock is
  registry-wide rather than per-child because contention is negligible
  at the library's event granularity (per solve / per chunk, not per
  sweep).
* **Worker→parent merge.**  Parallel workers accumulate into their own
  process-local registry and ship a :meth:`MetricsRegistry.drain`
  snapshot back through the executor's result channel; the parent
  :meth:`MetricsRegistry.merge`\\ s it in.  ``drain`` atomically
  snapshots *and zeroes* the values, so repeated shipments never double
  count; counters and histogram buckets merge additively, gauges
  last-write-wins.
* **Collectors.**  Pull-style sources (the transition cache's hit/miss
  counters) register a callback that is invoked at every
  ``snapshot``/``drain``, bridging externally-maintained counts into
  the registry as deltas.

The process-wide instance is :data:`REGISTRY`; independent registries
can be instantiated for isolation in tests.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "ITERATION_BUCKETS",
    "SECONDS_BUCKETS",
]

#: Generic default histogram buckets (upper bounds; +Inf is implicit).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for solver iteration / sweep counts (the paper's global runs
#: converge in ~131 iterations; the cap is 1000).
ITERATION_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 150, 250, 500, 1000,
)

#: Buckets for wall-clock durations in seconds.
SECONDS_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)

#: Label-set key: sorted (name, value) tuple.
_LabelKey = "tuple[tuple[str, str], ...]"


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("labels", "_lock", "_value")

    def __init__(self, labels: Mapping[str, str], lock: threading.RLock):
        self.labels = dict(labels)
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (last write wins on merge)."""

    __slots__ = ("labels", "_lock", "_value")

    def __init__(self, labels: Mapping[str, str], lock: threading.RLock):
        self.labels = dict(labels)
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with Prometheus cumulative semantics.

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches everything above the last bound.
    An observation equal to a bound lands in that bound's bucket
    (``le`` is inclusive, as in Prometheus).
    """

    __slots__ = ("labels", "buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self,
        labels: Mapping[str, str],
        lock: threading.RLock,
        buckets: tuple[float, ...],
    ):
        self.labels = dict(labels)
        self.buckets = buckets
        self._lock = lock
        self._counts = [0] * (len(buckets) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket (non-cumulative) counts; the last entry is +Inf."""
        return tuple(self._counts)

    def cumulative_counts(self) -> tuple[int, ...]:
        """Cumulative counts per bucket bound, ending at ``count``."""
        total = 0
        out = []
        for c in self._counts:
            total += c
            out.append(total)
        return tuple(out)


class _Family:
    """One metric name: its type, help text and labelled children."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: tuple[float, ...] | None,
    ):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: dict[tuple[tuple[str, str], ...], Any] = {}


def _validate_buckets(buckets: Iterable[float]) -> tuple[float, ...]:
    bounds = tuple(float(b) for b in buckets)
    if not bounds:
        raise ValueError("histogram needs at least one bucket bound")
    if any(nxt <= prev for prev, nxt in zip(bounds, bounds[1:])):
        raise ValueError(
            f"bucket bounds must be strictly increasing, got {bounds}"
        )
    return bounds


class MetricsRegistry:
    """A named collection of metric families (see module docstring)."""

    def __init__(self):
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []

    # ------------------------------------------------------------------
    # Metric accessors (create-on-first-touch)
    # ------------------------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: tuple[float, ...] | None = None,
    ) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, requested as {kind}"
            )
        elif help_text and not family.help:
            family.help = help_text
        return family

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """The counter child of family ``name`` for this label set."""
        key = _label_key(labels)
        with self._lock:
            family = self._family(name, "counter", help)
            child = family.children.get(key)
            if child is None:
                child = Counter(dict(key), self._lock)
                family.children[key] = child
            return child

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """The gauge child of family ``name`` for this label set."""
        key = _label_key(labels)
        with self._lock:
            family = self._family(name, "gauge", help)
            child = family.children.get(key)
            if child is None:
                child = Gauge(dict(key), self._lock)
                family.children[key] = child
            return child

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] | None = None,
        **labels: str,
    ) -> Histogram:
        """The histogram child of family ``name`` for this label set.

        ``buckets`` fixes the family's bounds on first touch; later
        calls inherit them (a conflicting spec raises, because mixed
        bucket layouts cannot merge).
        """
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                bounds = _validate_buckets(
                    buckets if buckets is not None else DEFAULT_BUCKETS
                )
                family = self._family(name, "histogram", help, bounds)
            else:
                if family.kind != "histogram":
                    raise ValueError(
                        f"metric {name!r} is a {family.kind}, "
                        f"requested as histogram"
                    )
                if buckets is not None:
                    bounds = _validate_buckets(buckets)
                    if bounds != family.buckets:
                        raise ValueError(
                            f"metric {name!r} already has buckets "
                            f"{family.buckets}, requested {bounds}"
                        )
                if help and not family.help:
                    family.help = help
            child = family.children.get(key)
            if child is None:
                child = Histogram(dict(key), self._lock, family.buckets)
                family.children[key] = child
            return child

    # ------------------------------------------------------------------
    # Collectors
    # ------------------------------------------------------------------

    def register_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Register a pull-style source invoked at snapshot/drain time.

        The callback receives this registry and should *increment*
        metrics by deltas (not publish cumulative totals), so draining
        and merging stay double-count-free.
        """
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)

    def _run_collectors(self) -> None:
        for collector in list(self._collectors):
            collector(self)

    # ------------------------------------------------------------------
    # Snapshot / drain / merge
    # ------------------------------------------------------------------

    def snapshot(self, run_collectors: bool = True) -> dict:
        """A JSON-/pickle-safe copy of every family and sample."""
        with self._lock:
            if run_collectors:
                self._run_collectors()
            families: dict[str, dict] = {}
            for name in sorted(self._families):
                family = self._families[name]
                samples = []
                for key in sorted(family.children):
                    child = family.children[key]
                    sample: dict[str, Any] = {"labels": dict(key)}
                    if family.kind == "histogram":
                        sample["count"] = child.count
                        sample["sum"] = child.sum
                        sample["bucket_counts"] = list(child.bucket_counts)
                    else:
                        sample["value"] = child.value
                    samples.append(sample)
                families[name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "buckets": (
                        list(family.buckets)
                        if family.buckets is not None
                        else None
                    ),
                    "samples": samples,
                }
            return {"families": families}

    def drain(self) -> dict:
        """Snapshot *and reset* every value (families are kept).

        The worker-side half of the merge path: what has been drained
        is owned by the receiver, so shipping the same registry again
        later only carries activity since this call.
        """
        with self._lock:
            snap = self.snapshot()
            for family in self._families.values():
                for child in family.children.values():
                    if family.kind == "histogram":
                        child._counts = [0] * (len(child.buckets) + 1)
                        child._sum = 0.0
                        child._count = 0
                    else:
                        child._value = 0.0
            return snap

    def merge(self, snapshot: Mapping) -> None:
        """Fold a :meth:`snapshot`/:meth:`drain` payload into this registry.

        Counters and histograms add; gauges take the incoming value.
        Families absent here are created with the payload's type, help
        and buckets, so a parent can merge from a worker whose code
        path touched metrics the parent never did.
        """
        families = snapshot.get("families", {})
        with self._lock:
            for name, payload in families.items():
                kind = payload["kind"]
                buckets = payload.get("buckets")
                for sample in payload["samples"]:
                    labels = sample["labels"]
                    if kind == "counter":
                        if sample["value"]:
                            self.counter(
                                name, payload.get("help", ""), **labels
                            ).inc(sample["value"])
                    elif kind == "gauge":
                        self.gauge(
                            name, payload.get("help", ""), **labels
                        ).set(sample["value"])
                    elif kind == "histogram":
                        child = self.histogram(
                            name,
                            payload.get("help", ""),
                            buckets=buckets,
                            **labels,
                        )
                        incoming = sample["bucket_counts"]
                        if len(incoming) != len(child._counts):
                            raise ValueError(
                                f"histogram {name!r} bucket layout "
                                f"mismatch on merge"
                            )
                        for i, c in enumerate(incoming):
                            child._counts[i] += c
                        child._sum += sample["sum"]
                        child._count += sample["count"]
                    else:  # pragma: no cover - future-proofing
                        raise ValueError(
                            f"unknown metric kind {kind!r} in merge payload"
                        )

    def reset(self) -> None:
        """Zero every value and drop every family (collectors kept)."""
        with self._lock:
            self._families.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def value(self, name: str, **labels: str) -> float:
        """Current value of a counter/gauge child (0.0 when absent)."""
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return 0.0
            child = family.children.get(key)
            if child is None:
                return 0.0
            if family.kind == "histogram":
                raise ValueError(
                    f"metric {name!r} is a histogram; read its samples "
                    f"from snapshot()"
                )
            return child.value

    def family_names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._families))


#: The process-wide registry the library routes through.
REGISTRY = MetricsRegistry()
