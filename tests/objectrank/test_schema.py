"""Unit tests for authority-transfer schemas."""

import pytest

from repro.exceptions import SchemaError
from repro.objectrank.schema import AuthoritySchema, TransferEdge


class TestTransferEdge:
    def test_valid(self):
        edge = TransferEdge("a", "b", 0.3)
        assert edge.weight == 0.3

    def test_rejects_zero_weight(self):
        with pytest.raises(SchemaError, match="positive"):
            TransferEdge("a", "b", 0.0)

    def test_rejects_empty_type(self):
        with pytest.raises(SchemaError, match="non-empty"):
            TransferEdge("", "b", 0.5)


class TestAuthoritySchema:
    def test_basic(self):
        schema = AuthoritySchema(
            types=["author", "paper"],
            edges=[TransferEdge("author", "paper", 0.2)],
        )
        assert schema.types == ("author", "paper")
        assert schema.transfer_weight("author", "paper") == 0.2
        assert schema.transfer_weight("paper", "author") is None
        assert schema.declared_pairs() == (("author", "paper"),)

    def test_type_index_stable(self):
        schema = AuthoritySchema(["x", "y", "z"], [])
        assert schema.type_index("y") == 1

    def test_rejects_empty_types(self):
        with pytest.raises(SchemaError, match="at least one"):
            AuthoritySchema([], [])

    def test_rejects_duplicate_types(self):
        with pytest.raises(SchemaError, match="unique"):
            AuthoritySchema(["a", "a"], [])

    def test_rejects_undeclared_edge_endpoint(self):
        with pytest.raises(SchemaError, match="undeclared"):
            AuthoritySchema(
                ["a"], [TransferEdge("a", "ghost", 0.1)]
            )

    def test_rejects_duplicate_edge(self):
        with pytest.raises(SchemaError, match="duplicate"):
            AuthoritySchema(
                ["a", "b"],
                [
                    TransferEdge("a", "b", 0.1),
                    TransferEdge("a", "b", 0.2),
                ],
            )

    def test_unknown_type_lookup(self):
        schema = AuthoritySchema(["a"], [])
        with pytest.raises(SchemaError, match="not a declared"):
            schema.type_index("q")
        with pytest.raises(SchemaError, match="not a declared"):
            schema.transfer_weight("a", "q")

    def test_self_loop_type_pair_allowed(self):
        # Citations: paper -> paper.
        schema = AuthoritySchema(
            ["paper"], [TransferEdge("paper", "paper", 0.7)]
        )
        assert schema.transfer_weight("paper", "paper") == 0.7
