"""Tests for Fagin's K^(p) Kendall distance with ties."""

import numpy as np
import pytest

from repro.exceptions import MetricError
from repro.metrics.footrule import footrule_from_scores
from repro.metrics.kendall_ties import kendall_p_distance


def naive_kp(reference, estimate, p):
    """Direct per-pair reference implementation."""
    n = len(reference)
    penalty = 0.0
    for i in range(n):
        for j in range(i + 1, n):
            r = np.sign(reference[i] - reference[j])
            e = np.sign(estimate[i] - estimate[j])
            if r != 0 and e != 0:
                if r != e:
                    penalty += 1.0
            elif (r == 0) != (e == 0):
                penalty += p
    return penalty


class TestBasics:
    def test_identical_zero(self):
        scores = np.array([0.5, 0.2, 0.9])
        assert kendall_p_distance(scores, scores) == 0.0

    def test_identical_with_ties_zero(self):
        scores = np.array([0.5, 0.5, 0.1, 0.1])
        assert kendall_p_distance(scores, scores) == 0.0

    def test_reversed_is_one(self):
        forward = np.array([1.0, 2.0, 3.0, 4.0])
        assert kendall_p_distance(
            forward, forward[::-1].copy()
        ) == pytest.approx(1.0)

    def test_single_swap_unnormalised(self):
        a = np.array([3.0, 2.0, 1.0])
        b = np.array([2.0, 3.0, 1.0])
        assert kendall_p_distance(
            a, b, normalize=False
        ) == pytest.approx(1.0)

    def test_tie_vs_order_costs_p(self):
        a = np.array([1.0, 1.0])   # tied
        b = np.array([2.0, 1.0])   # ordered
        assert kendall_p_distance(
            a, b, p=0.5, normalize=False
        ) == pytest.approx(0.5)
        assert kendall_p_distance(
            a, b, p=0.0, normalize=False
        ) == 0.0

    def test_both_tied_costs_nothing(self):
        a = np.array([1.0, 1.0, 2.0])
        b = np.array([5.0, 5.0, 9.0])
        assert kendall_p_distance(a, b) == 0.0

    def test_single_item(self):
        assert kendall_p_distance(
            np.array([1.0]), np.array([2.0])
        ) == 0.0


class TestAgainstNaive:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_matches_reference_implementation(self, seed, p):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 5, 25).astype(float)  # heavy ties
        b = rng.integers(0, 5, 25).astype(float)
        fast = kendall_p_distance(a, b, p=p, normalize=False)
        slow = naive_kp(a, b, p)
        assert fast == pytest.approx(slow)


class TestMetricProperties:
    def test_symmetry_at_half(self):
        rng = np.random.default_rng(5)
        a = rng.integers(0, 4, 20).astype(float)
        b = rng.integers(0, 4, 20).astype(float)
        assert kendall_p_distance(a, b) == pytest.approx(
            kendall_p_distance(b, a)
        )

    def test_bounded(self):
        rng = np.random.default_rng(6)
        for __ in range(10):
            a = rng.integers(0, 6, 15).astype(float)
            b = rng.integers(0, 6, 15).astype(float)
            assert 0.0 <= kendall_p_distance(a, b) <= 1.0

    def test_diaconis_graham_band_strict_rankings(self):
        """On strict rankings, K <= F <= 2K (unnormalised Diaconis–
        Graham); check via the unnormalised values."""
        rng = np.random.default_rng(7)
        for __ in range(5):
            a = rng.permutation(12).astype(float)
            b = rng.permutation(12).astype(float)
            kendall = kendall_p_distance(a, b, normalize=False)
            # Unnormalised footrule: displacement sum over positions.
            from repro.metrics.buckets import bucket_positions

            footrule = float(
                np.abs(
                    bucket_positions(a) - bucket_positions(b)
                ).sum()
            )
            assert kendall <= footrule <= 2 * kendall + 1e-9

    def test_validation(self):
        with pytest.raises(MetricError, match="aligned"):
            kendall_p_distance(np.ones(2), np.ones(3))
        with pytest.raises(MetricError, match="p must"):
            kendall_p_distance(np.ones(2), np.ones(2), p=2.0)
        with pytest.raises(MetricError, match="empty"):
            kendall_p_distance(np.array([]), np.array([]))
        with pytest.raises(MetricError, match="finite"):
            kendall_p_distance(
                np.array([1.0, np.nan]), np.array([1.0, 2.0])
            )
