"""Unit tests for graph traversals."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.builder import graph_from_edges
from repro.graph.traversal import (
    bfs_order,
    bfs_tree_depths,
    bfs_within_depth,
    out_neighbors_of_set,
    reachable_set,
    weakly_connected_components,
)
from repro.generators.simple import cycle_graph, line_graph


@pytest.fixture
def tree_graph():
    #        0
    #      /   \
    #     1     2
    #    / \     \
    #   3   4     5
    return graph_from_edges(7, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)])
    # node 6 is isolated


class TestBfsOrder:
    def test_visits_in_level_order(self, tree_graph):
        order = bfs_order(tree_graph, 0)
        assert order.tolist() == [0, 1, 2, 3, 4, 5]

    def test_max_nodes_budget(self, tree_graph):
        order = bfs_order(tree_graph, 0, max_nodes=3)
        assert order.tolist() == [0, 1, 2]

    def test_multiple_seeds(self, tree_graph):
        order = bfs_order(tree_graph, [2, 1])
        # seeds first (ascending), then their children
        assert order.tolist()[:2] == [1, 2]

    def test_isolated_seed(self, tree_graph):
        assert bfs_order(tree_graph, 6).tolist() == [6]

    def test_rejects_empty_seed_set(self, tree_graph):
        with pytest.raises(GraphError, match="at least one seed"):
            bfs_order(tree_graph, [])

    def test_rejects_out_of_range_seed(self, tree_graph):
        with pytest.raises(GraphError, match="out of range"):
            bfs_order(tree_graph, 7)

    def test_rejects_non_positive_budget(self, tree_graph):
        with pytest.raises(GraphError, match="positive"):
            bfs_order(tree_graph, 0, max_nodes=0)

    def test_cycle_full_visit(self):
        graph = cycle_graph(5)
        assert bfs_order(graph, 2).size == 5


class TestDepths:
    def test_depths(self, tree_graph):
        depths = bfs_tree_depths(tree_graph, 0)
        assert depths.tolist() == [0, 1, 1, 2, 2, 2, -1]

    def test_within_depth_zero_is_seeds(self, tree_graph):
        assert bfs_within_depth(tree_graph, [0, 2], 0).tolist() == [0, 2]

    def test_within_depth_one(self, tree_graph):
        assert bfs_within_depth(tree_graph, 0, 1).tolist() == [0, 1, 2]

    def test_within_depth_negative_rejected(self, tree_graph):
        with pytest.raises(GraphError, match=">= 0"):
            bfs_within_depth(tree_graph, 0, -1)

    def test_reachable_set(self, tree_graph):
        assert reachable_set(tree_graph, 1).tolist() == [1, 3, 4]

    def test_line_graph_depths(self):
        graph = line_graph(4)
        depths = bfs_tree_depths(graph, 0)
        assert depths.tolist() == [0, 1, 2, 3]


class TestComponents:
    def test_two_components(self, tree_graph):
        components = weakly_connected_components(tree_graph)
        assert len(components) == 2
        assert components[0].tolist() == [0, 1, 2, 3, 4, 5]
        assert components[1].tolist() == [6]

    def test_directed_edges_treated_undirected(self):
        # 0 -> 1 and 2 -> 1: all weakly connected despite directions.
        graph = graph_from_edges(3, [(0, 1), (2, 1)])
        components = weakly_connected_components(graph)
        assert len(components) == 1

    def test_edgeless_graph(self):
        graph = graph_from_edges(3, [])
        components = weakly_connected_components(graph)
        assert len(components) == 3


class TestNeighborsOfSet:
    def test_union_of_out_neighbors(self, tree_graph):
        result = out_neighbors_of_set(tree_graph, [0, 1])
        assert result.tolist() == [1, 2, 3, 4]

    def test_empty_set(self, tree_graph):
        assert out_neighbors_of_set(tree_graph, []).size == 0

    def test_dangling_members_contribute_nothing(self, tree_graph):
        assert out_neighbors_of_set(tree_graph, [5, 6]).size == 0

    def test_matches_bruteforce_on_random_graph(self, messy_graph):
        nodes = np.arange(0, 50)
        expected = set()
        for node in nodes:
            expected.update(messy_graph.out_neighbors(node).tolist())
        result = out_neighbors_of_set(messy_graph, nodes)
        assert set(result.tolist()) == expected
