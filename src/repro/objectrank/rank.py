"""Ranking on semantic data graphs: ObjectRank and its subgraph variant.

* :func:`objectrank` — global weighted PageRank over the data graph
  (the expensive computation a search engine cannot afford "for all
  possible combinations of keywords and authority transfer
  assignments", §I).
* :func:`objectrank_multi` — the per-keyword workload done right: K
  base sets share the data graph's transition matrix, so their walks
  run as one batched multi-vector solve (one sparse mat-mat per
  iteration) instead of K independent solves.
* :func:`semantic_subgraph_rank` — the Figure 3 scenario: restrict
  attention to the entity types a domain expert cares about and
  estimate their scores with ApproxRank (or IdealRank when a previous
  global ranking is available).
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

from repro.core.approxrank import approxrank
from repro.core.idealrank import idealrank
from repro.exceptions import SubgraphError
from repro.objectrank.datagraph import DataGraph
from repro.pagerank.batched import batched_power_iteration
from repro.pagerank.localrank import pagerank_on_graph
from repro.pagerank.result import RankResult, SubgraphScores
from repro.pagerank.solver import PowerIterationSettings, uniform_teleport
from repro.perf.cache import cached_transition_matrix_transpose


def objectrank(
    data: DataGraph,
    settings: PowerIterationSettings | None = None,
    base_set: np.ndarray | None = None,
) -> RankResult:
    """Global ObjectRank: weighted PageRank over the whole data graph.

    Parameters
    ----------
    data:
        The instantiated data graph (edge weights = transfer rates).
    settings:
        Solver knobs.
    base_set:
        Optional node ids of a keyword base set; teleportation is
        restricted to them (ObjectRank's query-specific walk).  Omit it
        for the query-independent "global ObjectRank".
    """
    personalization = None
    if base_set is not None:
        base_set = np.asarray(base_set, dtype=np.int64)
        if base_set.size == 0:
            raise SubgraphError("base_set must not be empty")
        personalization = np.zeros(data.graph.num_nodes, dtype=np.float64)
        personalization[base_set] = 1.0 / base_set.size
    return pagerank_on_graph(
        data.graph, settings, personalization=personalization
    )


def objectrank_multi(
    data: DataGraph,
    base_sets: Sequence[np.ndarray | None],
    settings: PowerIterationSettings | None = None,
) -> list[RankResult]:
    """ObjectRank for several keyword base sets in one batched solve.

    Every keyword shares the data graph's transition matrix; only the
    teleport (base-set) vector differs.  Stacking the K personalisation
    vectors into an ``(N, K)`` block and driving them through
    :func:`repro.pagerank.batched.batched_power_iteration` reads the
    matrix once per iteration for all keywords, which is the whole cost
    of sparse PageRank at scale — the per-keyword results match
    :func:`objectrank` to solver tolerance.

    Parameters
    ----------
    data:
        The instantiated data graph.
    base_sets:
        One entry per keyword: node ids whose entities match the
        keyword (teleportation restricted to them), or ``None`` for the
        query-independent uniform walk.
    settings:
        Solver knobs shared by every keyword.

    Returns
    -------
    list[RankResult], one per base set, in input order.
    """
    if len(base_sets) == 0:
        raise SubgraphError("base_sets must not be empty")
    num_nodes = data.graph.num_nodes
    start = time.perf_counter()
    teleports = np.empty((num_nodes, len(base_sets)), dtype=np.float64)
    for k, base_set in enumerate(base_sets):
        if base_set is None:
            teleports[:, k] = uniform_teleport(num_nodes)
            continue
        base_set = np.asarray(base_set, dtype=np.int64)
        if base_set.size == 0:
            raise SubgraphError(f"base set {k} must not be empty")
        column = np.zeros(num_nodes, dtype=np.float64)
        column[base_set] = 1.0 / base_set.size
        teleports[:, k] = column
    transition_t, dangling_mask = cached_transition_matrix_transpose(
        data.graph
    )
    outcome = batched_power_iteration(
        transition_t,
        teleports=teleports,
        dangling_mask=dangling_mask,
        settings=settings,
    )
    runtime = time.perf_counter() - start
    per_keyword = runtime / outcome.num_columns
    return [
        RankResult(
            scores=outcome.scores[:, k].copy(),
            iterations=int(outcome.iterations[k]),
            residual=float(outcome.residuals[k]),
            converged=bool(outcome.converged[k]),
            runtime_seconds=per_keyword,
            method="objectrank-batched",
        )
        for k in range(outcome.num_columns)
    ]


def semantic_subgraph_rank(
    data: DataGraph,
    types_of_interest: Iterable[str],
    settings: PowerIterationSettings | None = None,
    known_scores: np.ndarray | None = None,
    base_set: np.ndarray | None = None,
) -> SubgraphScores:
    """Rank only the entity types a domain expert cares about.

    Parameters
    ----------
    data:
        The semantic data graph.
    types_of_interest:
        Entity type names forming the subgraph (e.g. ``{"author",
        "paper"}`` while conferences and years stay external).
    settings:
        Solver knobs.
    known_scores:
        A previously computed global (Object)Rank vector.  When given,
        IdealRank reuses it for the external region — the paper's
        "PageRank scores for other regions ... may also remain largely
        unchanged" scenario; when omitted, ApproxRank estimates without
        it.
    base_set:
        Optional node ids of an ObjectRank keyword base set; the walk
        teleports only to them.  With ``known_scores`` from a walk
        personalised the same way, the result is exact (Theorem 1
        holds for any teleport distribution).

    Returns
    -------
    SubgraphScores over the entities of the chosen types.
    """
    local_nodes = data.entities_of_types(types_of_interest)
    if local_nodes.size == 0:
        raise SubgraphError(
            f"no entities of types {sorted(set(types_of_interest))}"
        )
    if local_nodes.size >= data.graph.num_nodes:
        raise SubgraphError(
            "types_of_interest cover every entity; nothing is external"
        )
    personalization = None
    if base_set is not None:
        base_set = np.asarray(base_set, dtype=np.int64)
        if base_set.size == 0:
            raise SubgraphError("base_set must not be empty")
        personalization = np.zeros(data.graph.num_nodes)
        personalization[base_set] = 1.0 / base_set.size
    if known_scores is not None:
        return idealrank(
            data.graph, local_nodes, known_scores, settings,
            personalization=personalization,
        )
    if personalization is not None:
        from repro.core.external import uniform_external_weights
        from repro.core.idealrank import rank_with_external_weights

        weights = uniform_external_weights(data.graph, local_nodes)
        return rank_with_external_weights(
            data.graph, local_nodes, weights, settings,
            method="approxrank", personalization=personalization,
        )
    return approxrank(data.graph, local_nodes, settings)
