"""Unit tests for the canonical synthetic datasets."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.generators.datasets import (
    AU_NAMED_DOMAINS,
    AU_TOTAL_DOMAINS,
    POLITICS_TOPICS,
    make_au_like,
    make_politics_like,
    make_tiny_web,
)


@pytest.fixture(scope="module")
def au():
    return make_au_like(num_pages=20_000, seed=5)


@pytest.fixture(scope="module")
def politics():
    return make_politics_like(num_pages=20_000, seed=6)


class TestAuLike:
    def test_38_domains(self, au):
        assert len(au.label_names["domain"]) == AU_TOTAL_DOMAINS
        assert au.labels["domain"].max() == AU_TOTAL_DOMAINS - 1

    def test_named_domain_shares_match_table4(self, au):
        n = au.graph.num_nodes
        for name, share in AU_NAMED_DOMAINS:
            pages = au.pages_with_label("domain", name)
            measured = 100.0 * pages.size / n
            assert measured == pytest.approx(share, abs=0.15), name

    def test_mean_out_degree_matches_crawl(self, au):
        assert au.graph.out_degrees.mean() == pytest.approx(6.15, rel=0.2)

    def test_deterministic(self):
        a = make_au_like(num_pages=3000, seed=1)
        b = make_au_like(num_pages=3000, seed=1)
        assert (a.graph.adjacency != b.graph.adjacency).nnz == 0

    def test_description_nonempty(self, au):
        assert "AU" in au.description


class TestPoliticsLike:
    def test_topics_present(self, politics):
        names = politics.label_names["topic"]
        assert names[0] == "general"
        for topic, __ in POLITICS_TOPICS:
            assert topic in names

    def test_topic_core_shares(self, politics):
        n = politics.graph.num_nodes
        for topic, share in POLITICS_TOPICS:
            pages = politics.pages_with_label("topic", topic)
            measured = 100.0 * pages.size / n
            assert measured == pytest.approx(share, abs=0.2), topic

    def test_general_is_majority(self, politics):
        general = politics.pages_with_label("topic", "general")
        assert general.size > 0.9 * politics.graph.num_nodes

    def test_mean_out_degree_matches_crawl(self, politics):
        assert politics.graph.out_degrees.mean() == pytest.approx(
            3.93, rel=0.2
        )


class TestWebDatasetApi:
    def test_label_index(self, au):
        index = au.label_index("domain", "anu.edu.au")
        assert au.label_names["domain"][index] == "anu.edu.au"

    def test_unknown_dimension(self, au):
        with pytest.raises(DatasetError, match="dimension"):
            au.label_index("topic", "anything")

    def test_unknown_label(self, au):
        with pytest.raises(DatasetError, match="not a domain"):
            au.label_index("domain", "mit.edu")

    def test_pages_with_label_partition(self, au):
        total = sum(
            au.pages_with_label("domain", name).size
            for name in au.label_names["domain"]
        )
        assert total == au.graph.num_nodes


class TestTinyWeb:
    def test_shape(self):
        tiny = make_tiny_web(num_pages=300, num_groups=3, seed=0)
        assert tiny.graph.num_nodes == 300
        assert len(tiny.label_names["domain"]) == 3

    def test_rejects_zero_groups(self):
        with pytest.raises(DatasetError):
            make_tiny_web(num_groups=0)
