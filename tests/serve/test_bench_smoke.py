"""Tier-2 performance gate: the serving benchmark in smoke mode.

Excluded from the tier-1 run by the ``tier2`` marker; CI runs it via
``make bench-serve-smoke``.  The correctness clauses (batched-vs-
offline agreement, singleton bit-identity) must hold on any hardware;
the wall-clock speedup clause is waived on single-core machines only.
"""

import pytest

from repro.serve.bench import run_serve_benchmark

pytestmark = [pytest.mark.tier2, pytest.mark.serve]


@pytest.fixture(scope="module")
def smoke_record():
    return run_serve_benchmark(smoke=True, output_path=None)


class TestSmokeGate:
    def test_gate_passes(self, smoke_record):
        assert smoke_record["gate_passed"], (
            "smoke gate failed: "
            f"speedup={smoke_record['speedup']:.2f}x, "
            f"agreement={smoke_record['agreement_max_abs_diff']:.2e}, "
            f"bit_identical={smoke_record['bit_identical_singleton']}"
        )

    def test_batched_answers_agree_with_offline(self, smoke_record):
        assert smoke_record["agreement_ok"]
        assert (
            smoke_record["agreement_max_abs_diff"]
            <= smoke_record["agreement_atol"]
        )

    def test_singleton_is_bit_identical(self, smoke_record):
        assert smoke_record["bit_identical_singleton"] is True

    def test_batching_wins_or_waiver_recorded(self, smoke_record):
        if smoke_record["speedup_gate_waived"]:
            assert smoke_record["cpu_count"] < 2
        else:
            assert (
                smoke_record["speedup"]
                >= smoke_record["target_speedup"]
            )

    def test_every_request_was_answered(self, smoke_record):
        for mode in ("batching_on", "batching_off"):
            assert (
                smoke_record[mode]["requests"]
                == smoke_record["total_requests"]
            )
