"""Property-based tests: Theorems 1 and 2 on arbitrary graphs.

These are the strongest tests in the suite: for *any* random digraph
and *any* proper subgraph, IdealRank must recover the exact global
PageRank (Theorem 1) and ApproxRank's deviation must respect the
analytic bound (Theorem 2).
"""

import numpy as np
import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.core.approxrank import approxrank
from repro.core.bounds import theorem2_report
from repro.core.extended import build_extended_graph
from repro.core.external import uniform_external_weights
from repro.core.idealrank import idealrank
from repro.graph.builder import GraphBuilder
from repro.pagerank.globalrank import global_pagerank
from repro.pagerank.solver import PowerIterationSettings
from repro.pagerank.transition import row_stochastic_check

SOLVER = PowerIterationSettings(tolerance=1e-11, max_iterations=20_000)


@st.composite
def graph_with_subgraph(draw):
    """A digraph plus a proper non-empty local node subset."""
    num_nodes = draw(st.integers(min_value=2, max_value=25))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_nodes - 1),
                st.integers(0, num_nodes - 1),
            ),
            max_size=4 * num_nodes,
        )
    )
    local_size = draw(st.integers(1, num_nodes - 1))
    local = draw(
        st.permutations(range(num_nodes)).map(
            lambda p: sorted(p[:local_size])
        )
    )
    return num_nodes, edges, local


def build(num_nodes, edges):
    builder = GraphBuilder(num_nodes)
    builder.add_edges(edges)
    return builder.build(dedup=True)


class TestTheorem1Property:
    @given(graph_with_subgraph())
    @hsettings(max_examples=50, deadline=None)
    def test_idealrank_exact(self, spec):
        num_nodes, edges, local = spec
        graph = build(num_nodes, edges)
        truth = global_pagerank(graph, SOLVER)
        result = idealrank(graph, local, truth.scores, SOLVER)
        np.testing.assert_allclose(
            result.scores, truth.scores[local], atol=1e-7
        )
        assert result.extras["lambda_score"] == pytest.approx(
            1.0 - truth.scores[local].sum(), abs=1e-7
        )


class TestTheorem2Property:
    @given(graph_with_subgraph())
    @hsettings(max_examples=50, deadline=None)
    def test_bound_holds(self, spec):
        num_nodes, edges, local = spec
        graph = build(num_nodes, edges)
        truth = global_pagerank(graph, SOLVER)
        report = theorem2_report(graph, local, truth.scores, SOLVER)
        assert report.observed_l1 <= report.bound + 1e-7


class TestExtendedInvariants:
    @given(graph_with_subgraph())
    @hsettings(max_examples=50, deadline=None)
    def test_extended_matrix_stochastic(self, spec):
        num_nodes, edges, local = spec
        graph = build(num_nodes, edges)
        weights = uniform_external_weights(graph, np.asarray(local))
        extended = build_extended_graph(graph, local, weights)
        matrix = extended.transition_ext_t.T.tocsr()
        assert row_stochastic_check(
            matrix, extended.dangling_mask_ext, atol=1e-8
        )

    @given(graph_with_subgraph())
    @hsettings(max_examples=50, deadline=None)
    def test_approxrank_mass_conservation(self, spec):
        num_nodes, edges, local = spec
        graph = build(num_nodes, edges)
        result = approxrank(graph, local, SOLVER)
        total = result.scores.sum() + result.extras["lambda_score"]
        assert total == pytest.approx(1.0, abs=1e-8)
        assert np.all(result.scores >= 0)
