"""Unit tests for GraphBuilder."""

import numpy as np
import pytest

from repro.exceptions import GraphBuildError
from repro.graph.builder import GraphBuilder, graph_from_edges


class TestAddEdge:
    def test_basic_build(self):
        builder = GraphBuilder(3)
        builder.add_edge(0, 1)
        builder.add_edge(1, 2)
        graph = builder.build()
        assert graph.num_edges == 2
        assert graph.has_edge(0, 1)

    def test_num_pending_edges(self):
        builder = GraphBuilder(3)
        assert builder.num_pending_edges == 0
        builder.add_edge(0, 1)
        builder.add_edge(0, 1)
        assert builder.num_pending_edges == 2

    def test_rejects_negative_num_nodes(self):
        with pytest.raises(GraphBuildError, match=">= 0"):
            GraphBuilder(-1)

    def test_rejects_out_of_range_source(self):
        builder = GraphBuilder(2)
        with pytest.raises(GraphBuildError, match="source"):
            builder.add_edge(2, 0)

    def test_rejects_out_of_range_target(self):
        builder = GraphBuilder(2)
        with pytest.raises(GraphBuildError, match="target"):
            builder.add_edge(0, -1)

    def test_rejects_zero_weight(self):
        builder = GraphBuilder(2)
        with pytest.raises(GraphBuildError, match="positive"):
            builder.add_edge(0, 1, 0.0)

    def test_rejects_nan_weight(self):
        builder = GraphBuilder(2)
        with pytest.raises(GraphBuildError, match="finite"):
            builder.add_edge(0, 1, float("nan"))


class TestBulkAdd:
    def test_add_edges_iterable(self):
        builder = GraphBuilder(4)
        builder.add_edges([(0, 1), (1, 2), (2, 3)])
        assert builder.build().num_edges == 3

    def test_add_weighted_edges(self):
        builder = GraphBuilder(2)
        builder.add_weighted_edges([(0, 1, 0.5)])
        assert builder.build().edge_weight(0, 1) == 0.5

    def test_add_edge_arrays(self):
        builder = GraphBuilder(5)
        builder.add_edge_arrays([0, 1, 2], [1, 2, 3])
        graph = builder.build()
        assert graph.num_edges == 3
        assert graph.is_unweighted()

    def test_add_edge_arrays_with_weights(self):
        builder = GraphBuilder(3)
        builder.add_edge_arrays([0, 1], [1, 2], [2.0, 3.0])
        graph = builder.build()
        assert graph.edge_weight(1, 2) == 3.0

    def test_add_edge_arrays_shape_mismatch(self):
        builder = GraphBuilder(3)
        with pytest.raises(GraphBuildError, match="equal length"):
            builder.add_edge_arrays([0, 1], [1])

    def test_add_edge_arrays_range_check(self):
        builder = GraphBuilder(3)
        with pytest.raises(GraphBuildError, match="out of range"):
            builder.add_edge_arrays([0, 5], [1, 2])

    def test_add_edge_arrays_weight_validation(self):
        builder = GraphBuilder(3)
        with pytest.raises(GraphBuildError, match="positive"):
            builder.add_edge_arrays([0], [1], [-1.0])


class TestBuildSemantics:
    def test_duplicates_summed_by_default(self):
        builder = GraphBuilder(2)
        builder.add_edge(0, 1, 1.0)
        builder.add_edge(0, 1, 2.0)
        graph = builder.build()
        assert graph.num_edges == 1
        assert graph.edge_weight(0, 1) == 3.0

    def test_dedup_collapses_to_unit(self):
        builder = GraphBuilder(2)
        builder.add_edge(0, 1)
        builder.add_edge(0, 1)
        graph = builder.build(dedup=True)
        assert graph.num_edges == 1
        assert graph.edge_weight(0, 1) == 1.0

    def test_empty_build(self):
        graph = GraphBuilder(3).build()
        assert graph.num_nodes == 3
        assert graph.num_edges == 0
        assert graph.dangling_mask.all()

    def test_builder_reusable_after_build(self):
        builder = GraphBuilder(2)
        builder.add_edge(0, 1)
        first = builder.build()
        builder.add_edge(1, 0)
        second = builder.build()
        assert first.num_edges == 1
        assert second.num_edges == 2

    def test_graph_from_edges_convenience(self):
        graph = graph_from_edges(3, [(0, 1), (0, 1), (1, 2)])
        assert graph.num_edges == 2
        assert graph.edge_weight(0, 1) == 1.0


class TestLargeBulk:
    def test_many_edges_roundtrip(self):
        rng = np.random.default_rng(5)
        sources = rng.integers(0, 1000, 20_000)
        targets = rng.integers(0, 1000, 20_000)
        builder = GraphBuilder(1000)
        builder.add_edge_arrays(sources, targets)
        graph = builder.build(dedup=True)
        assert graph.num_nodes == 1000
        # dedup means strictly fewer or equal edges than inserted
        assert 0 < graph.num_edges <= 20_000
        # spot-check membership
        assert graph.has_edge(int(sources[0]), int(targets[0]))
