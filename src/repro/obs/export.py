"""Observability sinks: JSON snapshots, Prometheus text, report tables.

Three output formats off the same data:

* :func:`build_snapshot` — a JSON-safe dict bundling the metrics
  registry, the active tracer's span tree and the solver telemetry
  history.  :func:`write_snapshot` serialises it to disk; this is what
  ``python -m repro all --obs-out obs.json`` writes.
* :func:`to_prometheus_text` — the Prometheus text exposition format
  (``# HELP``/``# TYPE``, cumulative ``_bucket{le=...}`` plus
  ``_sum``/``_count`` for histograms) rendered from a metrics
  snapshot, for scraping or diffing against a golden file.
* :func:`render_report` — a human-readable summary (cache hit rate,
  executor retries/fallbacks, per-solver iteration tables, indented
  span tree) used by ``python -m repro obs-report obs.json``.

Everything operates on snapshot *payloads*, so reports can be rendered
from a file written by a different process or an earlier run.
"""

from __future__ import annotations

import json
import re
import time
from pathlib import Path
from typing import Any, Mapping

from repro.obs import state, telemetry, tracing
from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = [
    "SNAPSHOT_SCHEMA",
    "build_snapshot",
    "write_snapshot",
    "load_snapshot",
    "to_prometheus_text",
    "parse_prometheus_text",
    "render_report",
]

#: Version tag embedded in snapshots so future readers can migrate.
SNAPSHOT_SCHEMA = 1


def build_snapshot(registry: MetricsRegistry | None = None) -> dict:
    """Bundle metrics + span tree + solve history into one payload."""
    reg = registry if registry is not None else REGISTRY
    return {
        "schema": SNAPSHOT_SCHEMA,
        "generated_unix": time.time(),
        "obs_enabled": state.enabled(),
        "metrics": reg.snapshot(),
        "spans": tracing.get_tracer().to_payload(),
        "solve_history": telemetry.history_payload(),
    }


def write_snapshot(
    path: str | Path, registry: MetricsRegistry | None = None
) -> dict:
    """Write :func:`build_snapshot` to ``path`` as JSON; return it."""
    snapshot = build_snapshot(registry)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(snapshot, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return snapshot


def load_snapshot(path: str | Path) -> dict:
    """Read a snapshot previously written by :func:`write_snapshot`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "metrics" not in payload:
        raise ValueError(f"{path} is not a repro obs snapshot")
    return payload


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{k}="{_escape_label_value(str(v))}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    """Render integers without a trailing ``.0`` (Prometheus style)."""
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _format_bound(bound: float) -> str:
    return _format_value(bound)


def to_prometheus_text(metrics_snapshot: Mapping) -> str:
    """Render a registry snapshot in the Prometheus text format.

    Families and samples come out in the snapshot's (sorted) order, so
    the output for a fixed workload is deterministic — the golden-file
    test relies on this.
    """
    lines: list[str] = []
    for name, family in metrics_snapshot.get("families", {}).items():
        kind = family["kind"]
        help_text = family.get("help") or ""
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            bounds = family.get("buckets") or []
            for sample in family["samples"]:
                labels = sample["labels"]
                cumulative = 0
                for bound, count in zip(bounds, sample["bucket_counts"]):
                    cumulative += count
                    label_str = _format_labels(
                        labels, f'le="{_format_bound(bound)}"'
                    )
                    lines.append(
                        f"{name}_bucket{label_str} {cumulative}"
                    )
                cumulative += sample["bucket_counts"][-1]
                label_str = _format_labels(labels, 'le="+Inf"')
                lines.append(f"{name}_bucket{label_str} {cumulative}")
                plain = _format_labels(labels)
                lines.append(
                    f"{name}_sum{plain} {_format_value(sample['sum'])}"
                )
                lines.append(f"{name}_count{plain} {sample['count']}")
        else:
            for sample in family["samples"]:
                label_str = _format_labels(sample["labels"])
                lines.append(
                    f"{name}{label_str} {_format_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


#: One exposition sample line: ``name{labels} value``.
_SAMPLE_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$"
)

#: One ``key="value"`` pair inside a label block (value may contain
#: escaped quotes/backslashes/newlines).
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def _unescape_label_value(value: str) -> str:
    return re.sub(
        r"\\(.)",
        lambda m: {"n": "\n"}.get(m.group(1), m.group(1)),
        value,
    )


def _parse_labels(block: str | None) -> dict[str, str]:
    if not block:
        return {}
    return {
        key: _unescape_label_value(raw)
        for key, raw in _LABEL_PAIR_RE.findall(block)
    }


def parse_prometheus_text(text: str) -> dict:
    """Parse the Prometheus text exposition back into snapshot form.

    The inverse of :func:`to_prometheus_text`: the return value has
    the same ``{"families": {name: {kind, help, buckets, samples}}}``
    shape as :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, so
    ``parse_prometheus_text(to_prometheus_text(snap)) == snap
    ["families"]``-wise — the round-trip the golden-file test (and the
    serving smoke test's ``/metrics`` scrape) asserts.  Histogram
    ``_bucket`` lines are de-cumulated back into per-bucket counts
    (the final slot is the implicit ``+Inf`` bucket).
    """
    families: dict[str, dict] = {}
    # Histogram reassembly state: (family, frozen labels) -> parts.
    histogram_parts: dict[tuple[str, tuple], dict] = {}

    def family_for(name: str) -> dict:
        return families.setdefault(
            name,
            {"kind": "", "help": "", "buckets": None, "samples": []},
        )

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            family_for(name)["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            family_for(name)["kind"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_LINE_RE.match(line)
        if match is None:
            raise ValueError(
                f"unparseable exposition line: {line!r}"
            )
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        value = float(match.group("value"))

        base = None
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                candidate = name[: -len(suffix)]
                if families.get(candidate, {}).get("kind") == (
                    "histogram"
                ):
                    base = (candidate, suffix)
                    break
        if base is not None:
            family_name, suffix = base
            le = labels.pop("le", None)
            key = (family_name, tuple(sorted(labels.items())))
            parts = histogram_parts.setdefault(
                key,
                {"labels": labels, "cumulative": [], "sum": 0.0,
                 "count": 0},
            )
            if suffix == "_bucket":
                parts["cumulative"].append((le, value))
            elif suffix == "_sum":
                parts["sum"] = value
            else:
                parts["count"] = int(value)
            continue

        family = family_for(name)
        family["samples"].append({"labels": labels, "value": value})

    for (family_name, _), parts in histogram_parts.items():
        family = families[family_name]
        finite = [
            float(le) for le, _ in parts["cumulative"]
            if le not in ("+Inf", None)
        ]
        if family["buckets"] is None:
            family["buckets"] = finite
        counts: list[int] = []
        previous = 0
        for _, cumulative in parts["cumulative"]:
            counts.append(int(cumulative) - previous)
            previous = int(cumulative)
        family["samples"].append(
            {
                "labels": parts["labels"],
                "count": parts["count"],
                "sum": parts["sum"],
                "bucket_counts": counts,
            }
        )

    for family in families.values():
        family["samples"].sort(
            key=lambda sample: tuple(sorted(sample["labels"].items()))
        )
    return {"families": dict(sorted(families.items()))}


# ----------------------------------------------------------------------
# Human-readable report
# ----------------------------------------------------------------------


def _sample_map(metrics: Mapping, name: str) -> list[dict]:
    family = metrics.get("families", {}).get(name)
    if not family:
        return []
    return family["samples"]


def _metric_total(metrics: Mapping, name: str, **match: str) -> float:
    total = 0.0
    for sample in _sample_map(metrics, name):
        labels = sample["labels"]
        if all(labels.get(k) == v for k, v in match.items()):
            total += sample.get("value", 0.0)
    return total


def _cache_section(metrics: Mapping) -> list[str]:
    hits = _metric_total(metrics, "repro_cache_hits_total")
    misses = _metric_total(metrics, "repro_cache_misses_total")
    evictions = _metric_total(metrics, "repro_cache_evictions_total")
    total = hits + misses
    if total == 0 and evictions == 0:
        return []
    rate = hits / total if total else 0.0
    return [
        "Transition cache",
        f"  hits {int(hits)}  misses {int(misses)}  "
        f"evictions {int(evictions)}  hit-rate {rate:.1%}",
    ]


def _executor_section(metrics: Mapping) -> list[str]:
    rows = []
    for label, name in (
        ("chunks completed", "repro_executor_chunks_completed_total"),
        ("chunk attempts", "repro_executor_chunk_attempts_total"),
        ("retries", "repro_executor_retries_total"),
        ("timeouts", "repro_executor_timeouts_total"),
        ("pool rebuilds", "repro_executor_pool_rebuilds_total"),
        ("serial fallback chunks", "repro_executor_serial_fallback_total"),
        ("backoff sleeps", "repro_executor_backoff_sleeps_total"),
    ):
        value = _metric_total(metrics, name)
        if value:
            rows.append(f"  {label} {int(value)}")
    failures = _sample_map(metrics, "repro_executor_failures_total")
    for sample in failures:
        labels = sample["labels"]
        tag = "{}/{}→{}".format(
            labels.get("stage", "?"),
            labels.get("error", "?"),
            labels.get("action", "?"),
        )
        if sample.get("value"):
            rows.append(f"  failures[{tag}] {int(sample['value'])}")
    if not rows:
        return []
    return ["Parallel executor"] + rows


def _faults_section(metrics: Mapping) -> list[str]:
    samples = _sample_map(metrics, "repro_faults_injected_total")
    rows = [
        f"  {sample['labels'].get('kind', '?')} {int(sample['value'])}"
        for sample in samples
        if sample.get("value")
    ]
    if not rows:
        return []
    return ["Injected faults"] + rows


def _backend_info_line(metrics: Mapping) -> str | None:
    """The active solver backend, read off the info gauge.

    ``repro_solver_backend_info`` carries value 1 on exactly one label
    set (switching backends zeroes the previous set), so the first
    sample at 1 *is* the active backend.
    """
    for sample in _sample_map(metrics, "repro_solver_backend_info"):
        if sample.get("value") != 1.0:
            continue
        labels = sample["labels"]
        return (
            "  backend {}/{} (layout {}, numba {})".format(
                labels.get("backend", "?"),
                labels.get("dtype", "?"),
                labels.get("layout", "?"),
                labels.get("numba", "?"),
            )
        )
    return None


def _solver_section(metrics: Mapping) -> list[str]:
    iteration_family = metrics.get("families", {}).get(
        "repro_solver_iterations"
    )
    if not iteration_family:
        return []
    bounds = iteration_family.get("buckets") or []
    rows = ["Solver iterations (per solve)"]
    header = "  {:<12} {:>7} {:>9} {:>9}".format(
        "solver", "solves", "mean", "max<="
    )
    rows.append(header)
    for sample in iteration_family["samples"]:
        solver = sample["labels"].get("solver", "?")
        count = sample["count"]
        if not count:
            continue
        mean = sample["sum"] / count
        top = "+Inf"
        cumulative = 0
        for bound, bucket in zip(bounds, sample["bucket_counts"]):
            cumulative += bucket
            if cumulative >= count:
                top = _format_value(bound)
                break
        rows.append(
            "  {:<12} {:>7} {:>9.1f} {:>9}".format(
                solver, count, mean, top
            )
        )
        runtime = _sample_map(metrics, "repro_solver_runtime_seconds")
        for rt in runtime:
            if rt["labels"].get("solver") == solver and rt["count"]:
                rows[-1] += "   total {:.3f}s".format(rt["sum"])
                break
    unconverged = _metric_total(metrics, "repro_solver_unconverged_total")
    divergences = _metric_total(
        metrics, "repro_solver_divergence_trips_total"
    )
    restarts = _metric_total(metrics, "repro_solver_safe_restarts_total")
    if unconverged or divergences or restarts:
        rows.append(
            f"  unconverged {int(unconverged)}  divergence trips "
            f"{int(divergences)}  safe restarts {int(restarts)}"
        )
    if len(rows) <= 2:
        return []
    backend_line = _backend_info_line(metrics)
    if backend_line is not None:
        rows.insert(1, backend_line)
    return rows


def _algorithm_section(metrics: Mapping) -> list[str]:
    runtime_family = metrics.get("families", {}).get(
        "repro_algorithm_runtime_seconds"
    )
    iteration_samples = _sample_map(metrics, "repro_algorithm_iterations")
    if not runtime_family:
        return []
    iters_by_algo = {
        s["labels"].get("algorithm"): s for s in iteration_samples
    }
    rows = ["Algorithms (per subgraph solve)"]
    rows.append(
        "  {:<12} {:>7} {:>11} {:>12}".format(
            "algorithm", "solves", "total (s)", "mean iters"
        )
    )
    for sample in runtime_family["samples"]:
        algo = sample["labels"].get("algorithm", "?")
        count = sample["count"]
        if not count:
            continue
        iters = iters_by_algo.get(algo)
        mean_iters = (
            iters["sum"] / iters["count"]
            if iters and iters["count"]
            else 0.0
        )
        rows.append(
            "  {:<12} {:>7} {:>11.3f} {:>12.1f}".format(
                algo, count, sample["sum"], mean_iters
            )
        )
    return rows if len(rows) > 2 else []


def _experiment_section(metrics: Mapping) -> list[str]:
    samples = _sample_map(metrics, "repro_experiment_seconds")
    rows = []
    for sample in samples:
        if not sample.get("count"):
            continue
        name = sample["labels"].get("experiment", "?")
        rows.append(f"  {name:<12} {sample['sum']:.3f}s")
    if not rows:
        return []
    return ["Experiment wall-clock"] + rows


def _serve_section(metrics: Mapping) -> list[str]:
    request_samples = _sample_map(metrics, "repro_serve_requests_total")
    latency_samples = _sample_map(metrics, "repro_serve_request_seconds")
    batch_samples = _sample_map(metrics, "repro_serve_batch_size")
    hits = _metric_total(metrics, "repro_serve_store_hits_total")
    misses = _metric_total(metrics, "repro_serve_store_misses_total")
    eviction_samples = _sample_map(
        metrics, "repro_serve_store_evictions_total"
    )
    rejected_samples = _sample_map(metrics, "repro_serve_rejected_total")
    if not (request_samples or hits or misses or batch_samples):
        return []
    rows = ["Serving"]
    latency_by_endpoint = {
        s["labels"].get("endpoint"): s for s in latency_samples
    }
    for sample in request_samples:
        if not sample.get("value"):
            continue
        endpoint = sample["labels"].get("endpoint", "?")
        status = sample["labels"].get("status", "?")
        row = "  {:<9} {:>4} x{:<6}".format(
            endpoint, status, int(sample["value"])
        )
        latency = latency_by_endpoint.get(endpoint)
        if latency and latency["count"]:
            mean_ms = latency["sum"] / latency["count"] * 1e3
            row += "  mean {:.1f}ms".format(mean_ms)
        rows.append(row)
    for sample in batch_samples:
        if not sample.get("count"):
            continue
        mean = sample["sum"] / sample["count"]
        rows.append(
            "  micro-batches {}  mean columns {:.2f}".format(
                sample["count"], mean
            )
        )
    total = hits + misses
    if total:
        rows.append(
            "  score store: hits {}  misses {}  hit-rate {:.1%}".format(
                int(hits), int(misses), hits / total
            )
        )
    evictions = [
        "{}={}".format(
            s["labels"].get("reason", "?"), int(s["value"])
        )
        for s in eviction_samples
        if s.get("value")
    ]
    if evictions:
        rows.append("  store evictions: " + "  ".join(evictions))
    rejected = [
        "{}={}".format(
            s["labels"].get("reason", "?"), int(s["value"])
        )
        for s in rejected_samples
        if s.get("value")
    ]
    if rejected:
        rows.append("  rejected: " + "  ".join(rejected))
    return rows if len(rows) > 1 else []


def _updates_section(metrics: Mapping) -> list[str]:
    """The incremental re-ranking engine's ``repro_update_*`` family."""
    applied = _metric_total(metrics, "repro_update_applied_total")
    regions = _metric_total(
        metrics, "repro_update_regions_reranked_total"
    )
    saved = _metric_total(
        metrics, "repro_update_iterations_saved_total"
    )
    spent = _metric_total(
        metrics, "repro_update_staleness_spent_total"
    )
    refresh_samples = _sample_map(
        metrics, "repro_update_background_refreshes_total"
    )
    if not (applied or regions or saved or refresh_samples):
        return []
    rows = ["Updates (incremental re-ranking)"]
    if applied or spent:
        line = f"  updates applied {int(applied)}"
        line += f"  staleness spent {spent:.4g}"
        budget_samples = _sample_map(
            metrics, "repro_update_staleness_budget"
        )
        if budget_samples:
            line += "  budget {:.4g}".format(
                budget_samples[0]["value"]
            )
        rows.append(line)
    if regions or saved:
        rows.append(
            f"  regions re-ranked {int(regions)}  "
            f"iterations saved {int(saved)}"
        )
    refreshes = [
        "{}={}".format(
            s["labels"].get("mode", "?"), int(s["value"])
        )
        for s in refresh_samples
        if s.get("value")
    ]
    if refreshes:
        rows.append("  refreshes: " + "  ".join(refreshes))
    stale = _metric_total(metrics, "repro_update_stale_entries")
    if stale:
        rows.append(f"  stale-but-bounded entries {int(stale)}")
    return rows if len(rows) > 1 else []


def _estimation_section(metrics: Mapping) -> list[str]:
    """The sublinear estimators' ``repro_estimate_*`` family."""
    request_samples = _sample_map(
        metrics, "repro_estimate_requests_total"
    )
    if not request_samples:
        return []
    latency_by_estimator = {
        s["labels"].get("estimator"): s
        for s in _sample_map(metrics, "repro_estimate_seconds")
    }
    bound_by_estimator = {
        s["labels"].get("estimator"): s
        for s in _sample_map(metrics, "repro_estimate_error_bound")
    }
    rows = ["Estimation (sublinear engines)"]
    for sample in request_samples:
        if not sample.get("value"):
            continue
        estimator = sample["labels"].get("estimator", "?")
        row = "  {:<12} x{:<6}".format(estimator, int(sample["value"]))
        edges = _metric_total(
            metrics,
            "repro_estimate_edges_touched_total",
            estimator=estimator,
        )
        if edges:
            row += "  edges {}".format(int(edges))
        latency = latency_by_estimator.get(estimator)
        if latency and latency["count"]:
            row += "  mean {:.1f}ms".format(
                latency["sum"] / latency["count"] * 1e3
            )
        bound = bound_by_estimator.get(estimator)
        if bound and bound["count"]:
            row += "  mean bound {:.2e}".format(
                bound["sum"] / bound["count"]
            )
        rows.append(row)
    walks = _metric_total(metrics, "repro_estimate_walks_total")
    pushes = _metric_total(metrics, "repro_estimate_pushes_total")
    if walks or pushes:
        rows.append(
            "  walks simulated {}  residual pushes {}".format(
                int(walks), int(pushes)
            )
        )
    return rows if len(rows) > 1 else []


def _semantic_section(metrics: Mapping) -> list[str]:
    """The semantic pipeline's ``repro_semantic_*`` family."""
    query_samples = _sample_map(
        metrics, "repro_semantic_queries_total"
    )
    if not query_samples:
        return []
    rows = ["Semantic"]
    for sample in query_samples:
        if not sample.get("value"):
            continue
        estimator = sample["labels"].get("estimator", "?")
        rows.append(
            "  queries[{}] x{}".format(
                estimator, int(sample["value"])
            )
        )
    pruned = _metric_total(
        metrics, "repro_semantic_candidates_pruned_total"
    )
    merges = _metric_total(
        metrics, "repro_semantic_dedup_merges_total"
    )
    if pruned or merges:
        rows.append(
            f"  candidates pruned {int(pruned)}  "
            f"dedup merges {int(merges)}"
        )
    for sample in _sample_map(
        metrics, "repro_semantic_neighborhood_pages"
    ):
        if not sample.get("count"):
            continue
        mean = sample["sum"] / sample["count"]
        rows.append(
            "  neighborhoods {}  mean {:.1f} pages".format(
                sample["count"], mean
            )
        )
    return rows if len(rows) > 1 else []


def _cluster_section(metrics: Mapping) -> list[str]:
    """The shard router's ``repro_cluster_*`` family."""
    request_samples = _sample_map(
        metrics, "repro_cluster_requests_total"
    )
    retry_samples = _sample_map(metrics, "repro_cluster_retries_total")
    latency_samples = _sample_map(
        metrics, "repro_cluster_forward_seconds"
    )
    ejections = _metric_total(
        metrics, "repro_cluster_ejections_total"
    )
    readmissions = _metric_total(
        metrics, "repro_cluster_readmissions_total"
    )
    breaker_samples = _sample_map(
        metrics, "repro_cluster_breaker_state"
    )
    if not (request_samples or retry_samples):
        return []
    rows = ["Cluster (shard router)"]
    latency_by_endpoint = {
        s["labels"].get("endpoint"): s for s in latency_samples
    }
    for sample in request_samples:
        if not sample.get("value"):
            continue
        endpoint = sample["labels"].get("endpoint", "?")
        outcome = sample["labels"].get("outcome", "?")
        row = "  {:<9} {:<11} x{:<6}".format(
            endpoint, outcome, int(sample["value"])
        )
        latency = latency_by_endpoint.get(endpoint)
        if latency and latency["count"]:
            mean_ms = latency["sum"] / latency["count"] * 1e3
            row += "  mean {:.1f}ms".format(mean_ms)
        rows.append(row)
    retries = [
        "{}={}".format(
            s["labels"].get("error", "?"), int(s["value"])
        )
        for s in retry_samples
        if s.get("value")
    ]
    if retries:
        rows.append("  retries: " + "  ".join(retries))
    if ejections or readmissions:
        rows.append(
            f"  ejections {int(ejections)}  "
            f"readmissions {int(readmissions)}"
        )
    open_breakers = [
        s["labels"].get("replica", "?")
        for s in breaker_samples
        if s.get("value")  # 0 = closed
    ]
    if open_breakers:
        rows.append(
            "  non-closed breakers: " + "  ".join(sorted(open_breakers))
        )
    return rows if len(rows) > 1 else []


def _span_lines(node: Mapping, depth: int, out: list[str]) -> None:
    indent = "  " * depth
    error = f"  !{node['error']}" if node.get("error") else ""
    counters = node.get("counters") or {}
    counter_str = (
        "  [" + ", ".join(
            f"{k}={_format_value(v)}" for k, v in sorted(counters.items())
        ) + "]"
        if counters
        else ""
    )
    out.append(
        f"  {indent}{node['name']}  wall {node['wall_seconds']:.3f}s  "
        f"cpu {node['cpu_seconds']:.3f}s{counter_str}{error}"
    )
    for child in node.get("children", []):
        _span_lines(child, depth + 1, out)


def _span_section(snapshot: Mapping) -> list[str]:
    spans = snapshot.get("spans") or []
    if not spans:
        return []
    rows = ["Span tree"]
    for root in spans:
        _span_lines(root, 0, rows)
    return rows


def _history_section(snapshot: Mapping) -> list[str]:
    history = snapshot.get("solve_history") or []
    if not history:
        return []
    rows = ["Recent solves (newest last, ring-buffered)"]
    for record in history[-10:]:
        tail = record.get("residual_tail") or []
        tail_str = (
            "  tail " + ">".join(f"{r:.1e}" for r in tail[-4:])
            if tail
            else ""
        )
        status = "ok" if record.get("converged") else "UNCONVERGED"
        rows.append(
            "  {solver:<10} iters {iterations:>4}  residual "
            "{residual:.2e}  {status}{tail}".format(
                solver=record.get("solver", "?"),
                iterations=record.get("iterations", 0),
                residual=record.get("residual", 0.0),
                status=status,
                tail=tail_str,
            )
        )
    return rows


def render_report(snapshot: Mapping) -> str:
    """Render a snapshot as the ``obs-report`` plain-text summary."""
    metrics = snapshot.get("metrics", {})
    sections = [
        section
        for section in (
            _cache_section(metrics),
            _executor_section(metrics),
            _faults_section(metrics),
            _solver_section(metrics),
            _algorithm_section(metrics),
            _experiment_section(metrics),
            _serve_section(metrics),
            _updates_section(metrics),
            _estimation_section(metrics),
            _semantic_section(metrics),
            _cluster_section(metrics),
            _span_section(snapshot),
            _history_section(snapshot),
        )
        if section
    ]
    if not sections:
        return "observability report: no recorded activity\n"
    header = "observability report (schema {}, obs {})".format(
        snapshot.get("schema", "?"),
        "enabled" if snapshot.get("obs_enabled") else "disabled",
    )
    body = "\n\n".join("\n".join(section) for section in sections)
    return f"{header}\n\n{body}\n"
