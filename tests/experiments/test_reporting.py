"""Unit tests for table rendering."""

import pytest

from repro.experiments.reporting import TableResult, format_cell


class TestFormatCell:
    def test_int_passthrough(self):
        assert format_cell(42) == "42"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"

    def test_zero(self):
        assert format_cell(0.0) == "0"

    def test_large_float_grouped(self):
        assert format_cell(12345.6) == "12,346"

    def test_mid_float_two_decimals(self):
        assert format_cell(3.14159) == "3.14"

    def test_small_float_six_decimals(self):
        assert format_cell(0.012112) == "0.012112"

    def test_tiny_float_scientific(self):
        assert format_cell(3.2e-9) == "3.20e-09"

    def test_trailing_zeros_stripped(self):
        assert format_cell(0.5) == "0.5"


class TestTableResult:
    @pytest.fixture
    def table(self):
        table = TableResult(
            experiment_id="test",
            title="A test table",
            headers=["name", "value"],
        )
        table.add_row("alpha", 0.5)
        table.add_row("beta", 1500.0)
        table.notes.append("a note")
        return table

    def test_add_row_arity_check(self, table):
        with pytest.raises(ValueError, match="columns"):
            table.add_row("only-one")

    def test_column_access(self, table):
        assert table.column("name") == ["alpha", "beta"]

    def test_render_contains_everything(self, table):
        text = table.render()
        assert "A test table" in text
        assert "alpha" in text
        assert "1,500" in text
        assert "note: a note" in text

    def test_render_alignment(self, table):
        lines = table.render().splitlines()
        header_line = lines[2]
        separator = lines[3]
        assert len(header_line) == len(separator)

    def test_markdown_shape(self, table):
        markdown = table.to_markdown()
        assert markdown.startswith("### A test table")
        assert "| name | value |" in markdown
        assert "| alpha | 0.5 |" in markdown
        assert "- a note" in markdown

    def test_empty_table_renders(self):
        table = TableResult("e", "Empty", ["x"])
        assert "Empty" in table.render()
        assert "| x |" in table.to_markdown()
