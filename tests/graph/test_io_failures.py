"""npz failure modes: corrupt archives must raise a typed GraphError.

``load_npz(mmap=True)`` reads zip structure by hand, so a truncated or
garbage file used to surface as raw ``BadZipFile``/``ValueError``
noise (or worse, a confusing second failure from the copying
fallback).  These tests pin the contract: corruption → ``GraphError``
naming the path; only *mappability* gaps fall back silently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.builder import graph_from_edges
from repro.graph.io import load_npz, save_npz


def make_graph():
    return graph_from_edges(5, [(0, 1), (1, 2), (2, 0), (3, 4)])


@pytest.fixture(params=[True, False], ids=["mmap", "copy"])
def mmap(request):
    return request.param


class TestCorruptArchives:
    def test_garbage_bytes_raise_graph_error_naming_the_path(
        self, tmp_path, mmap
    ):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(GraphError, match="garbage.npz"):
            load_npz(path, mmap=mmap)

    def test_truncated_archive_raises_graph_error(self, tmp_path, mmap):
        path = tmp_path / "truncated.npz"
        save_npz(make_graph(), path, compressed=False)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(GraphError, match="truncated.npz"):
            load_npz(path, mmap=mmap)

    def test_corrupt_npy_member_raises_graph_error(self, tmp_path):
        # Valid zip structure, but a member's npy magic is smashed —
        # only the hand-rolled mmap reader ever sees this layer.
        path = tmp_path / "bad-member.npz"
        save_npz(make_graph(), path, compressed=False)
        raw = bytearray(path.read_bytes())
        magic_at = raw.find(b"\x93NUMPY")
        assert magic_at != -1
        raw[magic_at : magic_at + 6] = b"\x00GARBA"
        path.write_bytes(bytes(raw))
        with pytest.raises(GraphError, match="bad-member.npz"):
            load_npz(path, mmap=True)

    def test_valid_zip_without_csr_members_is_not_a_graph_archive(
        self, tmp_path, mmap
    ):
        path = tmp_path / "notgraph.npz"
        np.savez(path, unrelated=np.arange(4))
        with pytest.raises(GraphError, match="not a graph archive"):
            load_npz(path, mmap=mmap)

    def test_missing_file_raises_file_not_found(self, tmp_path, mmap):
        # Absence is not corruption: the standard error passes through
        # so callers can distinguish "no cache yet" from "cache rotted".
        with pytest.raises(FileNotFoundError):
            load_npz(tmp_path / "nope.npz", mmap=mmap)


class TestMappabilityFallback:
    def test_compressed_archive_still_loads_with_mmap_flag(self, tmp_path):
        # Deflated members cannot be mapped; the flag silently falls
        # back to the copying loader instead of erroring.
        path = tmp_path / "compressed.npz"
        graph = make_graph()
        save_npz(graph, path, compressed=True)
        loaded, __ = load_npz(path, mmap=True)
        assert np.array_equal(
            loaded.adjacency.toarray(), graph.adjacency.toarray()
        )
